//! # CaTDet — Cascaded Tracked Detection for Video
//!
//! A from-scratch Rust reproduction of *"CaTDet: Cascaded Tracked Detector
//! for Efficient Object Detection from Video"* (Mao, Kong & Dally,
//! MLSYS 2019). This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `catdet-geom` | boxes, IoU, NMS, Hungarian assignment, coverage grids |
//! | [`nn`] | `catdet-nn` | layer-level op-count models of every network in the paper |
//! | [`sim`] | `catdet-sim` | 3-D driving/street world simulator |
//! | [`data`] | `catdet-data` | KITTI-like / CityPersons-like synthetic datasets |
//! | [`detector`] | `catdet-detector` | simulated CNN detectors with calibrated accuracy |
//! | [`track`] | `catdet-track` | the CaTDet tracker (SORT-style, decay motion model) |
//! | [`metrics`] | `catdet-metrics` | mAP and the paper's mean-Delay metric |
//! | [`core`] | `catdet-core` | the three detection systems + ops/timing accounting |
//! | [`serve`] | `catdet-serve` | multi-stream serving: scheduler, micro-batching, backpressure |
//!
//! # Quickstart
//!
//! ```
//! use catdet::data::kitti_like;
//! use catdet::core::{CaTDetSystem, DetectionSystem};
//! use catdet::detector::zoo;
//!
//! // A small synthetic driving dataset (2 sequences, 60 frames each).
//! let dataset = kitti_like().sequences(2).frames_per_sequence(60).seed(7).build();
//!
//! // CaTDet-A: ResNet-10a proposal net + ResNet-50 refinement net + tracker.
//! let mut system = CaTDetSystem::catdet_a();
//! for seq in dataset.sequences() {
//!     system.reset();
//!     for frame in seq.frames() {
//!         let out = system.process_frame(frame);
//!         // `out.detections` are the refined detections for this frame,
//!         // `out.ops` the arithmetic cost actually spent.
//!         assert!(out.ops.total() > 0.0);
//!     }
//! }
//! ```

pub use catdet_core as core;
pub use catdet_data as data;
pub use catdet_detector as detector;
pub use catdet_geom as geom;
pub use catdet_metrics as metrics;
pub use catdet_nn as nn;
pub use catdet_serve as serve;
pub use catdet_sim as sim;
pub use catdet_track as track;

// Convenience re-exports of the most common entry points.
pub use catdet_core::{
    CaTDetSystem, CascadedSystem, DetectionSystem, ProposalWork, RefinementWork, SingleModelSystem,
    StageStep, StagedDetector, SystemFactory, SystemKind,
};
pub use catdet_data::kitti_like;
pub use catdet_geom::Box2;
pub use catdet_serve::{ServeConfig, ServeReport};
