//! Metric-layer integration tests on simulated data: oracle and degenerate
//! detectors must produce the exact metric values the definitions demand.

use catdet::data::{kitti_like, Difficulty};
use catdet::geom::Box2;
use catdet::metrics::{Detection, Evaluator};
use catdet::sim::ActorClass;

#[test]
fn oracle_detector_gets_perfect_scores() {
    let ds = kitti_like().sequences(2).frames_per_sequence(60).build();
    let mut ev = Evaluator::new(ds.classes.clone(), Difficulty::Hard);
    for seq in ds.sequences() {
        for frame in seq.frames() {
            let dets: Vec<Detection> = frame
                .ground_truth
                .iter()
                .map(|o| Detection {
                    bbox: o.bbox,
                    score: 0.95,
                    class: o.class,
                })
                .collect();
            ev.add_frame(
                seq.id,
                frame.index,
                &frame.ground_truth,
                &dets,
                frame.labeled,
            );
        }
    }
    // Greedy matching can mis-assign between heavily overlapping objects
    // (an ignored object's detection stealing a valid one), so "perfect"
    // is asymptotic rather than exact.
    assert!(ev.map() > 0.995, "oracle mAP {}", ev.map());
    let delay = ev
        .mean_delay_at_precision(0.8)
        .expect("precision reachable");
    assert!(delay.mean.abs() < 1e-9, "oracle delay {}", delay.mean);
}

#[test]
fn blind_detector_gets_zero() {
    let ds = kitti_like().sequences(1).frames_per_sequence(40).build();
    let mut ev = Evaluator::new(ds.classes.clone(), Difficulty::Hard);
    for seq in ds.sequences() {
        for frame in seq.frames() {
            ev.add_frame(seq.id, frame.index, &frame.ground_truth, &[], frame.labeled);
        }
    }
    assert_eq!(ev.map(), 0.0);
    // With no detections, no precision target is reachable.
    assert!(ev.mean_delay_at_precision(0.8).is_none());
}

#[test]
fn pure_noise_detector_has_zero_map_but_nonzero_fp_count() {
    let ds = kitti_like().sequences(1).frames_per_sequence(40).build();
    let mut ev = Evaluator::new(ds.classes.clone(), Difficulty::Hard);
    for seq in ds.sequences() {
        for frame in seq.frames() {
            // A detection far outside any plausible object location.
            let dets = [Detection {
                bbox: Box2::from_xywh(0.0, 0.0, 15.0, 10.0),
                score: 0.9,
                class: ActorClass::Car,
            }];
            ev.add_frame(
                seq.id,
                frame.index,
                &frame.ground_truth,
                &dets,
                frame.labeled,
            );
        }
    }
    assert!(ev.map() < 0.05, "noise mAP {}", ev.map());
}

#[test]
fn delayed_oracle_delay_matches_construction() {
    // Detect everything, but only from the 5th frame of each instance's
    // life: measured delay must be exactly 5 for instances that enter
    // after the video starts.
    let ds = kitti_like().sequences(2).frames_per_sequence(80).build();
    let mut ev = Evaluator::new(ds.classes.clone(), Difficulty::Hard);
    use std::collections::HashMap;
    for seq in ds.sequences() {
        let mut first_seen: HashMap<u64, usize> = HashMap::new();
        for frame in seq.frames() {
            for o in &frame.ground_truth {
                // Delay counts from the first *admitted* frame.
                if Difficulty::Hard.admits(o) {
                    first_seen.entry(o.track_id).or_insert(frame.index);
                }
            }
            let dets: Vec<Detection> = frame
                .ground_truth
                .iter()
                .filter(|o| {
                    first_seen
                        .get(&o.track_id)
                        .is_some_and(|&f| frame.index >= f + 5)
                })
                .map(|o| Detection {
                    bbox: o.bbox,
                    score: 0.95,
                    class: o.class,
                })
                .collect();
            ev.add_frame(
                seq.id,
                frame.index,
                &frame.ground_truth,
                &dets,
                frame.labeled,
            );
        }
    }
    let report = ev.mean_delay_at_precision(0.8).expect("reachable");
    // Every instance is detected exactly 5 frames after its admitted
    // entry; short-lived instances that exit within the gap count their
    // (shorter) lifetime instead, so the mean sits at or slightly below 5.
    assert!(
        (3.5..=5.5).contains(&report.mean),
        "constructed delay ~5, measured {:.2}",
        report.mean
    );
}

#[test]
fn score_ranking_drives_precision_matched_threshold() {
    // High-precision targets require discarding the low-scored junk; the
    // threshold must rise with beta.
    let ds = kitti_like().sequences(1).frames_per_sequence(60).build();
    let mut ev = Evaluator::new(ds.classes.clone(), Difficulty::Hard);
    for seq in ds.sequences() {
        for frame in seq.frames() {
            let mut dets: Vec<Detection> = frame
                .ground_truth
                .iter()
                .map(|o| Detection {
                    bbox: o.bbox,
                    score: 0.9,
                    class: o.class,
                })
                .collect();
            // Low-scored false positive every frame.
            dets.push(Detection {
                bbox: Box2::from_xywh(600.0, 300.0, 40.0, 30.0),
                score: 0.35,
                class: ActorClass::Car,
            });
            ev.add_frame(
                seq.id,
                frame.index,
                &frame.ground_truth,
                &dets,
                frame.labeled,
            );
        }
    }
    let t_low = ev.threshold_for_precision(0.6).unwrap();
    let t_high = ev.threshold_for_precision(0.95).unwrap();
    assert!(t_high >= t_low);
    assert!(t_high > 0.35, "high-precision threshold must cut the junk");
}
