//! Cross-crate integration tests: the paper's system-level invariants on
//! small (fast) datasets.

use catdet::core::{
    evaluate_collected, run_collect, CaTDetSystem, CascadedSystem, CollectedRun, DetectionSystem,
    SingleModelSystem, SystemConfig,
};
use catdet::data::{kitti_like, Difficulty, VideoDataset};
use catdet::detector::zoo;

fn small_kitti() -> VideoDataset {
    kitti_like().sequences(4).frames_per_sequence(120).build()
}

fn run(system: &mut dyn DetectionSystem, ds: &VideoDataset) -> CollectedRun {
    run_collect(system, ds)
}

#[test]
fn catdet_saves_most_of_the_single_model_ops() {
    let ds = small_kitti();
    let single = run(&mut SingleModelSystem::resnet50_kitti(), &ds);
    let catdet = run(&mut CaTDetSystem::catdet_a(), &ds);
    let ratio = single.mean_ops.total() / catdet.mean_ops.total();
    // Paper: 5.15x for CaTDet-A; leave slack for dataset variation.
    assert!(ratio > 4.0, "ops reduction only {ratio:.1}x");
}

#[test]
fn catdet_b_saves_even_more() {
    let ds = small_kitti();
    let a = run(&mut CaTDetSystem::catdet_a(), &ds);
    let b = run(&mut CaTDetSystem::catdet_b(), &ds);
    assert!(b.mean_ops.total() < a.mean_ops.total());
}

#[test]
fn cascade_is_cheaper_but_less_accurate_than_catdet() {
    let ds = small_kitti();
    let cascade = run(&mut CascadedSystem::cascade_b(), &ds);
    let catdet = run(&mut CaTDetSystem::catdet_b(), &ds);
    // The tracker costs extra refinement work...
    assert!(cascade.mean_ops.total() < catdet.mean_ops.total());
    // ...and buys accuracy.
    let map_cascade = evaluate_collected(&cascade, &ds, Difficulty::Moderate).map();
    let map_catdet = evaluate_collected(&catdet, &ds, Difficulty::Moderate).map();
    assert!(
        map_catdet > map_cascade,
        "CaTDet {map_catdet:.3} should beat cascade {map_cascade:.3}"
    );
}

#[test]
fn catdet_roughly_matches_single_model_accuracy() {
    let ds = small_kitti();
    let single = run(&mut SingleModelSystem::resnet50_kitti(), &ds);
    let catdet = run(&mut CaTDetSystem::catdet_a(), &ds);
    let map_single = evaluate_collected(&single, &ds, Difficulty::Moderate).map();
    let map_catdet = evaluate_collected(&catdet, &ds, Difficulty::Moderate).map();
    // On the full benchmark the gap is < 0.005 (see EXPERIMENTS.md); this
    // small 4-sequence dataset gives the tracker fewer frames to latch,
    // so allow a wider band while still excluding cascade-level drops.
    assert!(
        (map_single - map_catdet).abs() < 0.06,
        "single {map_single:.3} vs CaTDet {map_catdet:.3}"
    );
}

#[test]
fn table3_attribution_sums_exceed_actual() {
    // "Because of overlaps between these two sources, the two components
    // sum to more than the total number of operations."
    let ds = small_kitti();
    let catdet = run(&mut CaTDetSystem::catdet_a(), &ds);
    let ops = &catdet.mean_ops;
    assert!(ops.refinement_from_tracker > 0.0);
    assert!(ops.refinement_from_proposal > 0.0);
    assert!(
        ops.refinement_from_tracker + ops.refinement_from_proposal >= ops.refinement,
        "attribution sum below actual refinement cost"
    );
    assert!(ops.refinement_from_tracker < ops.refinement);
}

#[test]
fn raising_c_thresh_trades_ops_for_delay() {
    // Figure 6's mechanism: fewer proposals -> less refinement work but
    // slower first detections.
    let ds = small_kitti();
    let mut loose = CaTDetSystem::new(
        zoo::resnet10a(2),
        zoo::resnet50(2),
        ds.width,
        ds.height,
        SystemConfig::paper().with_c_thresh(0.02),
    );
    let mut tight = CaTDetSystem::new(
        zoo::resnet10a(2),
        zoo::resnet50(2),
        ds.width,
        ds.height,
        SystemConfig::paper().with_c_thresh(0.6),
    );
    let run_loose = run(&mut loose, &ds);
    let run_tight = run(&mut tight, &ds);
    assert!(run_tight.mean_ops.refinement < run_loose.mean_ops.refinement);
    let d_loose = evaluate_collected(&run_loose, &ds, Difficulty::Hard)
        .mean_delay_at_precision(0.8)
        .map(|d| d.mean);
    let d_tight = evaluate_collected(&run_tight, &ds, Difficulty::Hard)
        .mean_delay_at_precision(0.8)
        .map(|d| d.mean);
    if let (Some(dl), Some(dt)) = (d_loose, d_tight) {
        assert!(dt >= dl - 0.3, "tight {dt:.2} vs loose {dl:.2}");
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let ds = kitti_like().sequences(2).frames_per_sequence(60).build();
    let a = run(&mut CaTDetSystem::catdet_a(), &ds);
    let b = run(&mut CaTDetSystem::catdet_a(), &ds);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.mean_ops, b.mean_ops);
}

#[test]
fn moderate_is_never_harder_than_it_looks() {
    // Evaluating the same run at Moderate vs Hard: Hard admits a superset
    // of ground truth, so Hard mAP <= Moderate mAP for a fixed system.
    let ds = small_kitti();
    let single = run(&mut SingleModelSystem::resnet50_kitti(), &ds);
    let m = evaluate_collected(&single, &ds, Difficulty::Moderate).map();
    let h = evaluate_collected(&single, &ds, Difficulty::Hard).map();
    assert!(
        h <= m + 0.01,
        "Hard {h:.3} should not exceed Moderate {m:.3}"
    );
}
