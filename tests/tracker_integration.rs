//! Tracker ↔ simulator integration: the tracker must follow real simulated
//! motion well enough to serve as a region proposer.

use catdet::data::kitti_like;
use catdet::geom::Box2;
use catdet::sim::ActorClass;
use catdet::track::{MotionModelKind, TrackDetection, Tracker, TrackerConfig};
use std::collections::HashMap;

/// Feeds perfect detections from the simulator to the tracker and
/// measures one-frame-ahead prediction quality.
fn prediction_iou(motion: MotionModelKind) -> f64 {
    let ds = kitti_like().sequences(3).frames_per_sequence(120).build();
    let mut ious: Vec<f64> = Vec::new();
    for seq in ds.sequences() {
        let mut tracker: Tracker<ActorClass> =
            Tracker::new(TrackerConfig::paper().with_motion(motion));
        let mut last_pred: HashMap<u64, (Box2, Box2)> = HashMap::new(); // track -> (pred, matched gt)
        for frame in seq.frames() {
            // Evaluate last frame's predictions against this frame's GT.
            let preds = tracker.predictions(ds.width, ds.height);
            for p in &preds {
                // Match prediction to the nearest GT of the same class.
                if let Some(gt) = frame
                    .ground_truth
                    .iter()
                    .filter(|g| g.class == p.class)
                    .max_by(|a, b| {
                        p.bbox
                            .iou(&a.bbox)
                            .partial_cmp(&p.bbox.iou(&b.bbox))
                            .unwrap()
                    })
                {
                    let iou = p.bbox.iou(&gt.bbox);
                    if iou > 0.0 {
                        ious.push(iou as f64);
                    }
                    last_pred.insert(p.track_id, (p.bbox, gt.bbox));
                }
            }
            let dets: Vec<TrackDetection<ActorClass>> = frame
                .ground_truth
                .iter()
                .map(|o| TrackDetection {
                    bbox: o.bbox,
                    score: 0.9,
                    class: o.class,
                })
                .collect();
            tracker.update(&dets);
        }
    }
    assert!(ious.len() > 300, "too few matched predictions");
    ious.iter().sum::<f64>() / ious.len() as f64
}

#[test]
fn decay_model_predicts_simulated_motion_well() {
    let mean_iou = prediction_iou(MotionModelKind::Decay { eta: 0.7 });
    assert!(mean_iou > 0.6, "mean prediction IoU {mean_iou:.3}");
}

#[test]
fn decay_beats_static_prediction() {
    // The ablation the paper implies: motion prediction matters.
    let decay = prediction_iou(MotionModelKind::Decay { eta: 0.7 });
    let fixed = prediction_iou(MotionModelKind::Static);
    assert!(
        decay > fixed,
        "decay {decay:.3} should beat static {fixed:.3}"
    );
}

#[test]
fn kalman_is_competitive_with_decay() {
    // The paper replaced SORT's Kalman filter with decay for robustness,
    // not raw accuracy; both should track the simulator's motion.
    let kalman = prediction_iou(MotionModelKind::Kalman {
        process_noise: 0.05,
        measurement_noise: 1.0,
    });
    assert!(kalman > 0.5, "Kalman mean prediction IoU {kalman:.3}");
}

/// Runs a preset CaTDet pipeline over a dataset, feeding its per-frame
/// tracker inputs (refined detections above T-thresh, exactly what
/// `CaTDetSystem` hands its own tracker) to a reference tracker and to a
/// tracker that is export/import-migrated at `cut`. Both must stay
/// bit-identical on every frame after the migration.
fn assert_migrated_tracker_continues(
    kind: catdet::SystemKind,
    width: f32,
    height: f32,
    cut: usize,
) {
    use catdet::core::{PresetFactory, SystemFactory};
    let ds = if width > 1500.0 {
        catdet::data::citypersons_like()
            .sequences(1)
            .frames_per_sequence(40)
            .build()
    } else {
        kitti_like().sequences(1).frames_per_sequence(60).build()
    };
    let mut system = PresetFactory::new(kind, width, height).build();
    let mut reference: Tracker<ActorClass> =
        Tracker::new(TrackerConfig::paper().with_input_threshold(0.5));
    let mut migrated: Tracker<ActorClass> =
        Tracker::new(TrackerConfig::paper().with_input_threshold(0.5));
    for (i, frame) in ds.sequences()[0].frames().iter().enumerate() {
        if i == cut {
            // Simulate the fleet's live migration: serialize the tracker
            // state out of the "source shard" tracker and re-admit it into
            // a fresh one; from here on only the migrated copy is driven.
            let state = reference.export_state();
            let mut fresh: Tracker<ActorClass> =
                Tracker::new(TrackerConfig::paper().with_input_threshold(0.5));
            fresh.import_state(state);
            migrated = fresh;
        }
        let dets: Vec<TrackDetection<ActorClass>> = system
            .process_frame(frame)
            .detections
            .iter()
            .map(|d| TrackDetection {
                bbox: d.bbox,
                score: d.score,
                class: d.class,
            })
            .collect();
        reference.update(&dets);
        if i >= cut {
            migrated.update(&dets);
            assert_eq!(
                migrated.tracks(),
                reference.tracks(),
                "migrated tracker diverged at frame {i}"
            );
            assert_eq!(
                migrated.predictions(width, height),
                reference.predictions(width, height),
                "migrated predictions diverged at frame {i}"
            );
        }
    }
    assert!(
        !reference.tracks().is_empty(),
        "test must end with live tracks to be meaningful"
    );
}

#[test]
fn migrated_tracker_state_continues_bit_identically_on_kitti() {
    assert_migrated_tracker_continues(catdet::SystemKind::CatdetA, 1242.0, 375.0, 25);
}

#[test]
fn migrated_tracker_state_continues_bit_identically_on_citypersons() {
    assert_migrated_tracker_continues(catdet::SystemKind::CatdetB, 2048.0, 1024.0, 15);
}

#[test]
fn tracker_identity_follows_objects_through_sim() {
    // Track identities from detections must be stable over long windows.
    let ds = kitti_like().sequences(1).frames_per_sequence(150).build();
    let mut tracker: Tracker<ActorClass> = Tracker::new(TrackerConfig::paper());
    // map sim track -> tracker id at first association
    let mut seen: HashMap<u64, u64> = HashMap::new();
    let mut switches = 0usize;
    let mut matches = 0usize;
    for frame in ds.sequences()[0].frames() {
        let preds = tracker.predictions(ds.width, ds.height);
        for gt in &frame.ground_truth {
            if let Some(best) = preds.iter().filter(|p| p.class == gt.class).max_by(|a, b| {
                gt.bbox
                    .iou(&a.bbox)
                    .partial_cmp(&gt.bbox.iou(&b.bbox))
                    .unwrap()
            }) {
                if gt.bbox.iou(&best.bbox) > 0.5 {
                    matches += 1;
                    if let Some(&prev) = seen.get(&gt.track_id) {
                        if prev != best.track_id {
                            switches += 1;
                            seen.insert(gt.track_id, best.track_id);
                        }
                    } else {
                        seen.insert(gt.track_id, best.track_id);
                    }
                }
            }
        }
        let dets: Vec<TrackDetection<ActorClass>> = frame
            .ground_truth
            .iter()
            .map(|o| TrackDetection {
                bbox: o.bbox,
                score: 0.9,
                class: o.class,
            })
            .collect();
        tracker.update(&dets);
    }
    assert!(matches > 500);
    let switch_rate = switches as f64 / matches as f64;
    assert!(switch_rate < 0.05, "identity switch rate {switch_rate:.3}");
}
