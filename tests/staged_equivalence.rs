//! Golden equivalence suite for the staged-detector redesign.
//!
//! The three systems were reimplemented from monolithic `process_frame`
//! bodies onto the resumable stage protocol. These tests pin the redesign
//! to the pre-redesign behaviour: reference implementations below are
//! line-for-line ports of the *old* monolithic pipelines (built from the
//! same public pieces — simulated detectors, tracker, NMS, pricing), and
//! the staged systems must produce bit-identical [`FrameOutput`]s —
//! detections, ops attribution, region counts and coverage — across
//! simulated KITTI and CityPersons sequences, whether driven stage by
//! stage or through the `process_frame` blanket impl.
//!
//! A property test additionally interleaves `step()` calls across two
//! live staged instances in arbitrary orders: suspension is per-instance
//! state, so no schedule may ever change either instance's outputs.

use catdet::core::system::refinement_macs;
use catdet::core::{
    drive_frame, nms_per_class, CaTDetSystem, CascadedSystem, DetectionSystem, FrameOutput,
    OpsBreakdown, PolicedPipeline, PolicyConfig, PolicyDecision, SingleModelSystem, StageStep,
    StagedDetector, SystemConfig,
};
use catdet::data::{citypersons_like, kitti_like, Frame, VideoDataset};
use catdet::detector::{zoo, DetectorModel, SimulatedDetector};
use catdet::geom::coverage::masked_fraction;
use catdet::geom::Box2;
use catdet::metrics::Detection;
use catdet::sim::ActorClass;
use catdet::track::{TrackDetection, Tracker, TrackerConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Reference implementations: the pre-redesign monolithic pipelines.
// ---------------------------------------------------------------------

/// The old `CaTDetSystem::process_frame`, verbatim.
struct MonoCatdet {
    proposal: SimulatedDetector,
    refinement: SimulatedDetector,
    tracker: Tracker<ActorClass>,
    cfg: SystemConfig,
    width: f32,
    height: f32,
}

impl MonoCatdet {
    fn new(proposal: DetectorModel, refinement: DetectorModel, width: f32, height: f32) -> Self {
        let cfg = SystemConfig::paper();
        Self {
            proposal: SimulatedDetector::new(proposal, width, height),
            refinement: SimulatedDetector::new(refinement, width, height),
            tracker: Tracker::new(TrackerConfig::paper().with_input_threshold(cfg.t_thresh)),
            cfg,
            width,
            height,
        }
    }

    fn process_frame(&mut self, frame: &Frame) -> FrameOutput {
        let predictions = self.tracker.predictions(self.width, self.height);
        let tracker_regions: Vec<Box2> = predictions.iter().map(|p| p.bbox).collect();

        let raw_props =
            self.proposal
                .detect_full_frame(frame.sequence_id, frame.index, &frame.ground_truth);
        let props: Vec<Detection> = raw_props
            .into_iter()
            .filter(|d| d.score >= self.cfg.c_thresh)
            .collect();
        let props = nms_per_class(&props, self.cfg.nms_iou);
        let proposal_regions: Vec<Box2> = props.iter().map(|d| d.bbox).collect();

        let mut regions = tracker_regions.clone();
        regions.extend_from_slice(&proposal_regions);
        let refined = self.refinement.detect_regions(
            frame.sequence_id,
            frame.index,
            &frame.ground_truth,
            &regions,
            self.cfg.margin,
        );
        let detections = nms_per_class(&refined, self.cfg.nms_iou);

        let track_inputs: Vec<TrackDetection<ActorClass>> = detections
            .iter()
            .filter(|d| d.score >= self.cfg.t_thresh)
            .map(|d| TrackDetection {
                bbox: d.bbox,
                score: d.score,
                class: d.class,
            })
            .collect();
        self.tracker.update(&track_inputs);

        let proposal_macs = self
            .proposal
            .model()
            .ops
            .full_frame_macs(self.width as usize, self.height as usize);
        let spec = &self.refinement.model().ops;
        let refine_macs = refinement_macs(spec, self.width, self.height, &regions, self.cfg.margin);
        let from_tracker = refinement_macs(
            spec,
            self.width,
            self.height,
            &tracker_regions,
            self.cfg.margin,
        );
        let from_proposal = refinement_macs(
            spec,
            self.width,
            self.height,
            &proposal_regions,
            self.cfg.margin,
        );
        let coverage = masked_fraction(&regions, self.width, self.height, 16, self.cfg.margin);
        FrameOutput {
            detections,
            ops: OpsBreakdown {
                proposal: proposal_macs,
                refinement: refine_macs,
                refinement_from_tracker: from_tracker,
                refinement_from_proposal: from_proposal,
            },
            num_refinement_regions: regions.len(),
            refinement_coverage: coverage,
        }
    }
}

/// The old `CascadedSystem::process_frame`, verbatim.
struct MonoCascade {
    proposal: SimulatedDetector,
    refinement: SimulatedDetector,
    cfg: SystemConfig,
    width: f32,
    height: f32,
}

impl MonoCascade {
    fn new(proposal: DetectorModel, refinement: DetectorModel, width: f32, height: f32) -> Self {
        Self {
            proposal: SimulatedDetector::new(proposal, width, height),
            refinement: SimulatedDetector::new(refinement, width, height),
            cfg: SystemConfig::paper(),
            width,
            height,
        }
    }

    fn process_frame(&mut self, frame: &Frame) -> FrameOutput {
        let raw_props =
            self.proposal
                .detect_full_frame(frame.sequence_id, frame.index, &frame.ground_truth);
        let props: Vec<_> = raw_props
            .into_iter()
            .filter(|d| d.score >= self.cfg.c_thresh)
            .collect();
        let props = nms_per_class(&props, self.cfg.nms_iou);
        let regions: Vec<Box2> = props.iter().map(|d| d.bbox).collect();

        let refined = self.refinement.detect_regions(
            frame.sequence_id,
            frame.index,
            &frame.ground_truth,
            &regions,
            self.cfg.margin,
        );
        let detections = nms_per_class(&refined, self.cfg.nms_iou);

        let proposal_macs = self
            .proposal
            .model()
            .ops
            .full_frame_macs(self.width as usize, self.height as usize);
        let refine_macs = refinement_macs(
            &self.refinement.model().ops,
            self.width,
            self.height,
            &regions,
            self.cfg.margin,
        );
        let coverage = masked_fraction(&regions, self.width, self.height, 16, self.cfg.margin);
        FrameOutput {
            detections,
            ops: OpsBreakdown {
                proposal: proposal_macs,
                refinement: refine_macs,
                refinement_from_tracker: 0.0,
                refinement_from_proposal: refine_macs,
            },
            num_refinement_regions: regions.len(),
            refinement_coverage: coverage,
        }
    }
}

/// The old `SingleModelSystem::process_frame`, verbatim.
struct MonoSingle {
    detector: SimulatedDetector,
    width: f32,
    height: f32,
    nms_iou: f32,
}

impl MonoSingle {
    fn new(model: DetectorModel, width: f32, height: f32) -> Self {
        Self {
            detector: SimulatedDetector::new(model, width, height),
            width,
            height,
            nms_iou: SystemConfig::paper().nms_iou,
        }
    }

    fn process_frame(&mut self, frame: &Frame) -> FrameOutput {
        let raw =
            self.detector
                .detect_full_frame(frame.sequence_id, frame.index, &frame.ground_truth);
        let detections = nms_per_class(&raw, self.nms_iou);
        let macs = self
            .detector
            .model()
            .ops
            .full_frame_macs(self.width as usize, self.height as usize);
        FrameOutput {
            detections,
            ops: OpsBreakdown {
                proposal: 0.0,
                refinement: macs,
                refinement_from_tracker: 0.0,
                refinement_from_proposal: 0.0,
            },
            num_refinement_regions: 0,
            refinement_coverage: 1.0,
        }
    }
}

// ---------------------------------------------------------------------
// Golden equivalence: staged == pre-redesign monolith, bit for bit.
// ---------------------------------------------------------------------

fn datasets() -> Vec<(VideoDataset, f32, f32)> {
    vec![
        (
            kitti_like()
                .sequences(2)
                .frames_per_sequence(25)
                .seed(42)
                .build(),
            1242.0,
            375.0,
        ),
        (
            citypersons_like()
                .sequences(2)
                .frames_per_sequence(25)
                .seed(43)
                .build(),
            2048.0,
            1024.0,
        ),
    ]
}

/// Drives one staged frame manually (assert the exact boundary order) and
/// checks the priced work items against the final output.
fn step_through(
    system: &mut impl StagedDetector,
    frame: &Frame,
    has_proposal: bool,
) -> FrameOutput {
    system.begin_frame(frame);
    if has_proposal {
        let StageStep::NeedsProposal(prop) = system.step() else {
            panic!("expected the proposal boundary first");
        };
        let executed = system.complete_proposal(prop);
        assert_eq!(executed.macs, prop.macs, "native pricing is exact");
    }
    let StageStep::NeedsRefinement(refine) = system.step() else {
        panic!("expected the refinement boundary");
    };
    system.complete_refinement(refine);
    let StageStep::Done(out) = system.step() else {
        panic!("expected Done after refinement");
    };
    assert_eq!(out.ops.refinement, refine.macs);
    assert_eq!(out.num_refinement_regions, refine.num_regions);
    assert_eq!(out.refinement_coverage, refine.coverage);
    out
}

#[test]
fn staged_catdet_matches_monolithic_reference() {
    for (ds, w, h) in datasets() {
        for seq in ds.sequences() {
            let mut staged = CaTDetSystem::new(
                zoo::resnet10a(2),
                zoo::resnet50(2),
                w,
                h,
                SystemConfig::paper(),
            );
            let mut driven = CaTDetSystem::new(
                zoo::resnet10a(2),
                zoo::resnet50(2),
                w,
                h,
                SystemConfig::paper(),
            );
            let mut reference = MonoCatdet::new(zoo::resnet10a(2), zoo::resnet50(2), w, h);
            for frame in seq.frames() {
                let expect = reference.process_frame(frame);
                assert_eq!(
                    step_through(&mut staged, frame, true),
                    expect,
                    "stage-driven CaTDet diverged on {} seq {} frame {}",
                    ds.name,
                    seq.id,
                    frame.index
                );
                assert_eq!(
                    drive_frame(&mut driven, frame),
                    expect,
                    "process_frame CaTDet diverged on {} seq {} frame {}",
                    ds.name,
                    seq.id,
                    frame.index
                );
            }
        }
    }
}

#[test]
fn staged_cascade_matches_monolithic_reference() {
    for (ds, w, h) in datasets() {
        for seq in ds.sequences() {
            let mut staged = CascadedSystem::new(
                zoo::resnet10b(2),
                zoo::resnet50(2),
                w,
                h,
                SystemConfig::paper(),
            );
            let mut reference = MonoCascade::new(zoo::resnet10b(2), zoo::resnet50(2), w, h);
            for frame in seq.frames() {
                let expect = reference.process_frame(frame);
                assert_eq!(
                    step_through(&mut staged, frame, true),
                    expect,
                    "stage-driven cascade diverged on {} seq {} frame {}",
                    ds.name,
                    seq.id,
                    frame.index
                );
            }
        }
    }
}

#[test]
fn staged_single_model_matches_monolithic_reference() {
    for (ds, w, h) in datasets() {
        for seq in ds.sequences() {
            let mut staged = SingleModelSystem::new(zoo::resnet50(2), w, h);
            let mut reference = MonoSingle::new(zoo::resnet50(2), w, h);
            for frame in seq.frames() {
                let expect = reference.process_frame(frame);
                assert_eq!(
                    step_through(&mut staged, frame, false),
                    expect,
                    "stage-driven single model diverged on {} seq {} frame {}",
                    ds.name,
                    seq.id,
                    frame.index
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Frame-policy golden suite: an always-detect PolicedPipeline is the
// identity wrapper, bit for bit, on KITTI-like and CityPersons-like
// sequences; the other policies follow their decision contracts exactly.
// ---------------------------------------------------------------------

#[test]
fn policed_always_detect_matches_bare_pipeline() {
    for (ds, w, h) in datasets() {
        for seq in ds.sequences() {
            let mut bare = CaTDetSystem::new(
                zoo::resnet10a(2),
                zoo::resnet50(2),
                w,
                h,
                SystemConfig::paper(),
            );
            let mut policed = PolicedPipeline::new(
                Box::new(CaTDetSystem::new(
                    zoo::resnet10a(2),
                    zoo::resnet50(2),
                    w,
                    h,
                    SystemConfig::paper(),
                )),
                PolicyConfig::always_detect(),
            );
            assert_eq!(
                StagedDetector::name(&policed),
                StagedDetector::name(&bare),
                "the wrapper must be invisible"
            );
            for frame in seq.frames() {
                let expect = drive_frame(&mut bare, frame);
                assert_eq!(
                    drive_frame(&mut policed, frame),
                    expect,
                    "always-detect policy diverged on {} seq {} frame {}",
                    ds.name,
                    seq.id,
                    frame.index
                );
                assert_eq!(policed.policy_decision(), Some(PolicyDecision::Detect));
            }
        }
    }
}

#[test]
fn fixed_stride_detects_on_schedule_and_skips_between() {
    let ds = kitti_like()
        .sequences(1)
        .frames_per_sequence(20)
        .seed(9)
        .build();
    let stride = 4;
    let mut policed = PolicedPipeline::new(
        Box::new(CaTDetSystem::catdet_a()),
        PolicyConfig::fixed_stride(stride),
    );
    for (i, frame) in ds.sequences()[0].frames().iter().enumerate() {
        let out = drive_frame(&mut policed, frame);
        let decision = policed.policy_decision().expect("policied pipeline");
        if i % stride == 0 {
            assert_eq!(decision, PolicyDecision::Detect, "frame {i}");
            assert!(out.ops.total() > 0.0, "detect frames are priced");
        } else {
            assert_eq!(decision, PolicyDecision::Skip, "frame {i}");
            assert!(out.detections.is_empty(), "skipped frames output nothing");
            assert_eq!(out.ops.total(), 0.0, "skipped frames cost nothing");
        }
    }
}

proptest! {
    /// The confidence trigger's coast bound: no run of consecutive coasts
    /// ever exceeds `max_coast`, and the frame after a full coast run is
    /// always a detection — across random seeds, thresholds and bounds.
    #[test]
    fn confidence_trigger_bounds_every_coast_run(
        seed in 0u64..12,
        confidence in 0.0f64..2.5,
        max_coast in 1usize..6,
    ) {
        let ds = kitti_like()
            .sequences(1)
            .frames_per_sequence(30)
            .seed(seed)
            .build();
        let cfg = PolicyConfig::confidence_trigger(confidence).with_max_coast(max_coast);
        let mut policed =
            PolicedPipeline::new(Box::new(CaTDetSystem::catdet_a()), cfg);
        let mut streak = 0usize;
        let mut full_run = false;
        for frame in ds.sequences()[0].frames() {
            drive_frame(&mut policed, frame);
            let decision = policed.policy_decision().expect("policied pipeline");
            if full_run {
                prop_assert_eq!(
                    decision,
                    PolicyDecision::Detect,
                    "a full coast run must trigger a detection"
                );
            }
            match decision {
                PolicyDecision::Coast => streak += 1,
                _ => streak = 0,
            }
            prop_assert!(streak <= max_coast, "coast run exceeded max_coast");
            full_run = streak == max_coast;
        }
    }

    /// Migration invariance: exporting the policied state mid-sequence and
    /// importing it into a fresh pipeline (what a live migration does at a
    /// stage-boundary suspend point) changes neither the decisions nor the
    /// outputs of the remaining frames.
    #[test]
    fn confidence_trigger_decisions_survive_migration(
        seed in 0u64..8,
        split in 1usize..24,
    ) {
        let ds = kitti_like()
            .sequences(1)
            .frames_per_sequence(25)
            .seed(seed)
            .build();
        let frames = ds.sequences()[0].frames();
        let cfg = PolicyConfig::confidence_trigger(1.0);

        let mut reference =
            PolicedPipeline::new(Box::new(CaTDetSystem::catdet_a()), cfg);
        let expect: Vec<(FrameOutput, PolicyDecision)> = frames
            .iter()
            .map(|f| {
                let out = drive_frame(&mut reference, f);
                (out, reference.policy_decision().expect("policied"))
            })
            .collect();

        let mut before =
            PolicedPipeline::new(Box::new(CaTDetSystem::catdet_a()), cfg);
        let mut got = Vec::with_capacity(frames.len());
        for f in &frames[..split] {
            let out = drive_frame(&mut before, f);
            got.push((out, before.policy_decision().expect("policied")));
        }
        let state = before.export_state().expect("catdet state exports");
        let mut after =
            PolicedPipeline::new(Box::new(CaTDetSystem::catdet_a()), cfg);
        after.import_state(state);
        for f in &frames[split..] {
            let out = drive_frame(&mut after, f);
            got.push((out, after.policy_decision().expect("policied")));
        }
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// Interleaving property: suspension is per-instance state.
// ---------------------------------------------------------------------

/// One staged instance mid-drive: advances by exactly one protocol call
/// per `advance`.
struct Interleaved {
    system: CaTDetSystem,
    frames: Vec<Frame>,
    next: usize,
    in_flight: bool,
    outputs: Vec<FrameOutput>,
}

impl Interleaved {
    fn new(system: CaTDetSystem, frames: Vec<Frame>) -> Self {
        Self {
            system,
            frames,
            next: 0,
            in_flight: false,
            outputs: Vec::new(),
        }
    }

    fn finished(&self) -> bool {
        !self.in_flight && self.next >= self.frames.len()
    }

    fn advance(&mut self) {
        if !self.in_flight {
            self.system.begin_frame(&self.frames[self.next]);
            self.next += 1;
            self.in_flight = true;
            return;
        }
        match self.system.step() {
            StageStep::NeedsProposal(w) => {
                self.system.complete_proposal(w);
            }
            StageStep::NeedsRefinement(w) => {
                self.system.complete_refinement(w);
            }
            StageStep::Done(out) => {
                self.outputs.push(out);
                self.in_flight = false;
            }
        }
    }
}

proptest! {
    #[test]
    fn interleaving_steps_across_instances_changes_nothing(
        schedule in proptest::collection::vec(proptest::bool::ANY, 0..64),
        seed in 0u64..8,
    ) {
        let ds_a = kitti_like().sequences(1).frames_per_sequence(5).seed(seed).build();
        let ds_b = citypersons_like().sequences(1).frames_per_sequence(5).seed(seed + 1).build();
        let frames_a = ds_a.sequences()[0].frames().to_vec();
        let frames_b = ds_b.sequences()[0].frames().to_vec();

        // Reference: each instance driven alone, frame by frame.
        let mut ref_a = CaTDetSystem::catdet_a();
        let expect_a: Vec<FrameOutput> =
            frames_a.iter().map(|f| ref_a.process_frame(f)).collect();
        let mut ref_b = CaTDetSystem::new(
            zoo::resnet10a(2),
            zoo::resnet50(2),
            2048.0,
            1024.0,
            SystemConfig::paper(),
        );
        let expect_b: Vec<FrameOutput> =
            frames_b.iter().map(|f| ref_b.process_frame(f)).collect();

        // Interleave the two instances per the random schedule, then
        // drain whatever remains.
        let mut a = Interleaved::new(CaTDetSystem::catdet_a(), frames_a);
        let mut b = Interleaved::new(
            CaTDetSystem::new(
                zoo::resnet10a(2),
                zoo::resnet50(2),
                2048.0,
                1024.0,
                SystemConfig::paper(),
            ),
            frames_b,
        );
        for &pick_a in &schedule {
            let target = if pick_a { &mut a } else { &mut b };
            if !target.finished() {
                target.advance();
            }
        }
        while !a.finished() {
            a.advance();
        }
        while !b.finished() {
            b.advance();
        }

        prop_assert_eq!(a.outputs, expect_a);
        prop_assert_eq!(b.outputs, expect_b);
    }
}
