//! Plugging a custom detector into CaTDet: define your own backbone op
//! model and accuracy profile, then run it as a proposal network.
//!
//! ```text
//! cargo run --release --example custom_detector
//! ```

use catdet::core::{run_on_dataset, CaTDetSystem, SystemConfig};
use catdet::data::{kitti_like, Difficulty};
use catdet::detector::zoo;
use catdet::detector::{AccuracyProfile, DetectorModel, OpsSpec};
use catdet::nn::faster_rcnn::Backbone;
use catdet::nn::{BlockKind, FasterRcnnSpec, ResNetConfig};

fn main() {
    // A hypothetical "ResNet-14" proposal backbone: between the paper's
    // 10a and 18 — two blocks in the early stages, 10a-style widths.
    let backbone = ResNetConfig {
        name: "ResNet-14 (custom)".into(),
        conv1_channels: 48,
        stage_channels: [48, 96, 192, 512],
        blocks: [2, 2, 1, 1],
        kind: BlockKind::Basic,
    };
    let spec = FasterRcnnSpec {
        name: "ResNet-14 Faster R-CNN".into(),
        backbone: Backbone::ResNet(backbone),
        roi_pool: 7,
        rpn_hidden: 512,
        num_anchors: 12,
        num_classes: 2,
    };
    println!(
        "custom proposal net costs {:.1} Gops full-frame (10a: 20.7, 18: 138.3)",
        spec.full_frame_macs(1242, 375, 300).total() / 1e9
    );

    // Give it an accuracy profile between 10a and ResNet-18.
    let profile = AccuracyProfile {
        offset: 2.75,
        discrimination: 2.7,
        shared_heterogeneity: 1.0,
        own_heterogeneity: 0.9,
        temporal_corr: 0.94,
        temporal_sigma: 1.1,
        score_gain: 0.5,
        score_offset: 0.2,
        score_noise: 0.5,
        fp_rate: 2.5,
        fp_score_mean: -0.7,
        fp_score_sigma: 1.05,
        loc_sigma: 0.06,
        validation_boost: 0.3,
        occlusion_sensitivity: 0.7,
        fp_confirm_rate: 0.45,
    };
    let custom = DetectorModel {
        name: "ResNet-14".into(),
        profile,
        ops: OpsSpec::FasterRcnn(spec),
    };

    // Run it as the proposal network of a CaTDet system.
    let dataset = kitti_like().sequences(4).frames_per_sequence(150).build();
    let mut system = CaTDetSystem::new(
        custom,
        zoo::resnet50(2),
        dataset.width,
        dataset.height,
        SystemConfig::paper(),
    );
    let report = run_on_dataset(&mut system, &dataset, Difficulty::Hard);
    println!(
        "{}: {:.1} Gops/frame, mAP(Hard) {:.3}, mD@0.8 {:.2}",
        report.system_name,
        report.mean_gops(),
        report.evaluator.map(),
        report
            .evaluator
            .mean_delay_at_precision(0.8)
            .map(|d| d.mean)
            .unwrap_or(f64::NAN)
    );
}
