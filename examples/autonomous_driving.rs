//! Autonomous-driving scenario: compare all three system architectures on
//! a KITTI-like dataset with both metrics, exactly like the paper's
//! Table 2 (at reduced scale so it finishes in seconds).
//!
//! ```text
//! cargo run --release --example autonomous_driving
//! ```

use catdet::core::{
    evaluate_collected, run_collect, CaTDetSystem, CascadedSystem, DetectionSystem,
    SingleModelSystem,
};
use catdet::data::{kitti_like, Difficulty};

fn main() {
    let dataset = kitti_like().sequences(6).frames_per_sequence(200).build();
    println!(
        "dataset: {} sequences x {} frames, {} annotations\n",
        dataset.sequences().len(),
        dataset.sequences()[0].len(),
        dataset.labeled_annotations()
    );

    let mut systems: Vec<Box<dyn DetectionSystem>> = vec![
        Box::new(SingleModelSystem::resnet50_kitti()),
        Box::new(CascadedSystem::cascade_a()),
        Box::new(CaTDetSystem::catdet_a()),
        Box::new(CaTDetSystem::catdet_b()),
    ];

    println!(
        "{:32} {:>9} {:>9} {:>9} {:>10}",
        "system", "ops (G)", "mAP(M)", "mAP(H)", "mD@0.8(H)"
    );
    for system in systems.iter_mut() {
        let run = run_collect(system.as_mut(), &dataset);
        let moderate = evaluate_collected(&run, &dataset, Difficulty::Moderate);
        let hard = evaluate_collected(&run, &dataset, Difficulty::Hard);
        println!(
            "{:32} {:>9.1} {:>9.3} {:>9.3} {:>10.2}",
            run.system_name,
            run.mean_ops.total() / 1e9,
            moderate.map(),
            hard.map(),
            hard.mean_delay_at_precision(0.8)
                .map(|d| d.mean)
                .unwrap_or(f64::NAN),
        );
    }

    println!();
    println!(
        "The delay metric is the point: for a car entering your lane, what \
         matters is not average precision but how many frames pass before \
         the system first sees it."
    );
}
