//! The mean-Delay metric in isolation: why two detectors with similar mAP
//! can have very different response times (paper §5, Fig. 5).
//!
//! ```text
//! cargo run --release --example delay_metric
//! ```

use catdet::core::{evaluate_collected, run_collect, SingleModelSystem};
use catdet::data::{kitti_like, Difficulty};
use catdet::detector::zoo;
use catdet::sim::ActorClass;

fn main() {
    let dataset = kitti_like().sequences(8).frames_per_sequence(250).build();

    for model in [zoo::resnet50(2), zoo::resnet10a(2)] {
        let name = model.name.clone();
        let mut system = SingleModelSystem::new(model, dataset.width, dataset.height);
        let run = run_collect(&mut system, &dataset);
        let ev = evaluate_collected(&run, &dataset, Difficulty::Hard);

        println!("=== {name} ===");
        println!("mAP (Hard): {:.3}", ev.map());
        for beta in [0.7, 0.8, 0.9] {
            match ev.mean_delay_at_precision(beta) {
                Some(report) => {
                    println!(
                        "mD@{beta}: {:.2} frames (threshold {:.2}; per class: {})",
                        report.mean,
                        report.threshold,
                        report
                            .per_class
                            .iter()
                            .map(|(c, d)| format!("{c} {d:.2}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
                None => println!("mD@{beta}: precision {beta} not reachable"),
            }
        }
        // The Figure 7 view: recall and delay against precision.
        let curve = ev.operating_curve(ActorClass::Car, 8);
        println!("Car operating points (precision / recall / delay):");
        for p in curve.iter().filter(|p| p.precision >= 0.5) {
            println!(
                "  {:>5.2} / {:>5.2} / {:>6.2}",
                p.precision, p.recall, p.delay
            );
        }
        println!();
    }

    println!(
        "Note how the weak model's delay explodes much faster than its mAP \
         degrades — the paper's argument for treating delay as a first-class \
         metric in delay-critical systems."
    );
}
