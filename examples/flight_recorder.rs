//! Flight recorder: record a bursty sharded fleet into the chunked
//! columnar event store, answer telemetry queries from the recording,
//! time-travel replay a stream bit-exactly from a mid-run snapshot, and
//! watch a tight retention budget evict cold chunks.
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```

use catdet::serve::{
    bursty_workload, replay_stream, serve_fleet_with_recorder, BurstProfile, EventKind, Query,
    ServeConfig, ShardConfig, SharedRecorder, SystemKind,
};

fn main() {
    // A bursty fleet of 8 cameras on 4 shards with live rebalancing: the
    // kind of run where post-hoc questions ("which shard ate the burst?
    // what did stream 3 emit at t=2.1s?") are otherwise unanswerable.
    let streams = 8;
    let frames = 40;
    let workload = || {
        bursty_workload(
            streams,
            frames,
            42,
            SystemKind::CatdetA,
            BurstProfile::demo(),
        )
    };
    let cfg = ServeConfig::new()
        .with_workers(1)
        .with_max_batch(4)
        .with_queue_capacity(10_000)
        .with_shard(
            ShardConfig::sharded(4)
                .with_rebalance_interval_s(0.1)
                .with_migration_cost_frames(4),
        );

    // 1. Record the run. Chunks hold up to 256 events each; a snapshot of
    //    every stream's full pipeline state is captured every 8th
    //    completion, at a stage-boundary suspend point.
    let recorder = SharedRecorder::new(256, usize::MAX, 8);
    let report = serve_fleet_with_recorder(workload(), &cfg, &recorder);
    let stats = recorder.stats();
    println!("== recorded run ==\n");
    println!(
        "{} frames in {:.2} s | {} migrations | merged p99 {:.1} ms",
        report.frames_processed(),
        report.makespan_s(),
        report.migrations.len(),
        report.merged_latency().expect("frames served").p99_s * 1e3,
    );
    println!(
        "recorder: {} events in {} chunks ({} open), {} snapshots, {} encoded bytes",
        stats.events, stats.sealed_chunks, stats.open_chunks, stats.snapshots, stats.encoded_bytes,
    );

    // 2. Telemetry queries: tail latency per shard over the middle half of
    //    the run, straight from the recording. The nearest-rank math is
    //    the report's own, so full-window queries reproduce ServeReport
    //    percentiles exactly.
    let (t0, t1) = (report.makespan_s() * 0.25, report.makespan_s() * 0.75);
    println!("\n== p99 by shard, window {t0:.2}..{t1:.2} s ==\n");
    for shard in 0..4 {
        let q = Query::all()
            .kind(EventKind::Detection)
            .shard(shard)
            .between(t0, t1);
        let lat = recorder.latency_stats(&q);
        println!(
            "shard {shard}: {:3} completions | p50 {:6.1} ms | p99 {:6.1} ms | max {:6.1} ms",
            lat.samples,
            lat.p50_s * 1e3,
            lat.p99_s * 1e3,
            lat.max_s * 1e3,
        );
    }
    let full = recorder.latency_stats(&Query::all());
    println!(
        "\nfull window: p99 {:.4} ms (report says {:.4} ms — bit-identical)",
        full.p99_s * 1e3,
        report.merged_latency().expect("frames served").p99_s * 1e3,
    );

    // 3. Time-travel replay: re-drive stream 3 from the nearest snapshot
    //    before the run's midpoint. The snapshot carries the tracker
    //    population and the detectors' sequential stream caches, so the
    //    replayed detections hash-match the live run frame for frame.
    let mid = report.makespan_s() * 0.5;
    let spec = workload().remove(3);
    let replay = replay_stream(&recorder, &spec, mid).expect("replay");
    println!("\n== replay stream 3 from t={mid:.2} s ==\n");
    println!(
        "resumed after seq {} (snapshot at {:?} s), re-drove {} frames: {}",
        replay.resumed_after_seq,
        replay.snapshot_t_s,
        replay.frames.len(),
        if replay.verified() {
            "bit-identical to the live run"
        } else {
            "DIVERGED"
        },
    );

    // 4. Retention: the same run recorded into a store keeping at most 12
    //    sealed chunks of 64 events. Cold chunks fall off the LRU; replay
    //    across the evicted gap refuses with the exact fix instead of
    //    silently replaying a truncated prefix.
    let tight = SharedRecorder::new(64, 12, 8);
    serve_fleet_with_recorder(workload(), &cfg, &tight);
    let tstats = tight.stats();
    println!("\n== tight retention: 12 chunks of 64 events ==\n");
    println!(
        "kept {} events in {} chunks; evicted {} chunks ({} events)",
        tstats.events, tstats.sealed_chunks, tstats.chunks_evicted, tstats.events_evicted,
    );
    match replay_stream(&tight, &workload().remove(3), 0.0) {
        Ok(r) => println!("replay from t=0 still possible: {} frames", r.frames.len()),
        Err(e) => println!("replay from t=0 refused: {e}"),
    }
}
