//! Quickstart: run CaTDet on a small synthetic driving clip and see the
//! operation savings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use catdet::core::{CaTDetSystem, DetectionSystem, SingleModelSystem};
use catdet::data::kitti_like;

fn main() {
    // A 2-sequence synthetic driving dataset (KITTI-shaped frames).
    let dataset = kitti_like()
        .sequences(2)
        .frames_per_sequence(80)
        .seed(7)
        .build();

    // The paper's baseline (ResNet-50 Faster R-CNN on every frame) and
    // CaTDet-A (ResNet-10a proposal net + tracker + ResNet-50 refinement).
    let mut baseline = SingleModelSystem::resnet50_kitti();
    let mut catdet = CaTDetSystem::catdet_a();

    let mut base_ops = 0.0;
    let mut catdet_ops = 0.0;
    let mut frames = 0usize;

    for seq in dataset.sequences() {
        baseline.reset();
        catdet.reset();
        for frame in seq.frames() {
            let b = baseline.process_frame(frame);
            let c = catdet.process_frame(frame);
            base_ops += b.ops.total();
            catdet_ops += c.ops.total();
            frames += 1;
            if frame.index == 40 {
                println!(
                    "seq {} frame {}: {} objects in view; baseline found {}, CaTDet found {} \
                     using {} refinement regions ({:.0}% of the frame)",
                    seq.id,
                    frame.index,
                    frame.ground_truth.len(),
                    b.detections.iter().filter(|d| d.score > 0.5).count(),
                    c.detections.iter().filter(|d| d.score > 0.5).count(),
                    c.num_refinement_regions,
                    c.refinement_coverage * 100.0
                );
            }
        }
    }

    let base_g = base_ops / frames as f64 / 1e9;
    let catdet_g = catdet_ops / frames as f64 / 1e9;
    println!();
    println!("mean arithmetic cost per frame:");
    println!("  single-model ResNet-50 : {base_g:>7.1} Gops");
    println!("  CaTDet-A               : {catdet_g:>7.1} Gops");
    println!("  reduction              : {:>7.1}x", base_g / catdet_g);
}
