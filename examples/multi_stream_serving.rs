//! Multi-stream serving: a mixed camera fleet through the CaTDet serving
//! subsystem, comparing scheduling policies under overload.
//!
//! ```text
//! cargo run --release --example multi_stream_serving
//! ```

use catdet::serve::{
    bursty_workload, mixed_workload, serve, AutoscaleConfig, BurstProfile, DropPolicy,
    SchedulePolicy, ServeConfig, SystemKind,
};

fn main() {
    // A fleet of 12 cameras: driving scenes (10 fps) interleaved with
    // pedestrian street scenes (30 fps), every camera with its own
    // CaTDet-A pipeline.
    let streams = 12;
    let frames = 40;

    println!("== comfortable capacity: 8 workers, micro-batches of 8 ==\n");
    let cfg = ServeConfig::new()
        .with_workers(8)
        .with_max_batch(8)
        .with_queue_capacity(10_000);
    let report = serve(
        mixed_workload(streams, frames, 42, SystemKind::CatdetA),
        &cfg,
    );
    print!("{}", report.summary());

    // Starve the fleet: one worker and tiny queues. The two scheduling
    // policies shed load differently — round-robin spreads both service
    // and drops evenly, least-backlog keeps fresh cameras snappy and
    // concentrates drops on the backlogged ones.
    for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::LeastBacklog] {
        println!(
            "\n== overload: 1 worker, queue capacity 2, drop-oldest, {} ==\n",
            policy.name()
        );
        let cfg = ServeConfig::new()
            .with_workers(1)
            .with_max_batch(8)
            .with_queue_capacity(2)
            .with_drop_policy(DropPolicy::Oldest)
            .with_schedule(policy);
        let report = serve(
            mixed_workload(streams, frames, 42, SystemKind::CatdetA),
            &cfg,
        );
        print!("{}", report.summary());
        match report.worst_p99_s() {
            Some(p99) => println!(
                "dropped {:.1}% | worst p99 {:.2} s",
                100.0 * report.drop_rate(),
                p99
            ),
            None => println!(
                "dropped {:.1}% | no frames completed",
                100.0 * report.drop_rate()
            ),
        }
    }

    // Feedback-driven autoscaling on a bursty fleet: long calm phases
    // with 2-second stampedes. The hysteresis controller rides the
    // cycle — workers are provisioned only while drop-rate and tail
    // latency say they are needed — so it sheds strictly less than a
    // fixed fleet of the same mean size.
    println!("\n== bursty arrivals: fixed 3 workers vs hysteresis autoscale 1..8 ==\n");
    let profile = BurstProfile {
        quiet_fps: 1.0,
        burst_fps: 12.0,
        quiet_s: 4.0,
        burst_s: 2.0,
    };
    let burst = || bursty_workload(6, 56, 42, SystemKind::CatdetA, profile);
    let base = ServeConfig::new().with_max_batch(4).with_queue_capacity(8);
    let fixed = serve(burst(), &base.with_workers(3));
    let auto = serve(
        burst(),
        &base.with_workers(1).with_autoscale(
            AutoscaleConfig::hysteresis(1, 8)
                .with_cooldown_ticks(0)
                .with_scale_step(4)
                .with_control_interval_s(0.1),
        ),
    );
    println!(
        "fixed:      drop rate {:5.1}% | mean workers {:.2} | {:6.1} worker-seconds",
        100.0 * fixed.drop_rate(),
        fixed.mean_workers(),
        fixed.worker_seconds,
    );
    println!(
        "autoscaled: drop rate {:5.1}% | mean workers {:.2} | {:6.1} worker-seconds | {} scale events",
        100.0 * auto.drop_rate(),
        auto.mean_workers(),
        auto.worker_seconds,
        auto.scale_events.len()
    );
    print!("{}", auto.scale_timeline());
}
