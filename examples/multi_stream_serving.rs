//! Multi-stream serving: a mixed camera fleet through the CaTDet serving
//! subsystem, comparing scheduling policies under overload.
//!
//! ```text
//! cargo run --release --example multi_stream_serving
//! ```

use catdet::serve::{mixed_workload, serve, DropPolicy, SchedulePolicy, ServeConfig, SystemKind};

fn main() {
    // A fleet of 12 cameras: driving scenes (10 fps) interleaved with
    // pedestrian street scenes (30 fps), every camera with its own
    // CaTDet-A pipeline.
    let streams = 12;
    let frames = 40;

    println!("== comfortable capacity: 8 workers, micro-batches of 8 ==\n");
    let cfg = ServeConfig::new()
        .with_workers(8)
        .with_max_batch(8)
        .with_queue_capacity(10_000);
    let report = serve(
        mixed_workload(streams, frames, 42, SystemKind::CatdetA),
        &cfg,
    );
    print!("{}", report.summary());

    // Starve the fleet: one worker and tiny queues. The two scheduling
    // policies shed load differently — round-robin spreads both service
    // and drops evenly, least-backlog keeps fresh cameras snappy and
    // concentrates drops on the backlogged ones.
    for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::LeastBacklog] {
        println!(
            "\n== overload: 1 worker, queue capacity 2, drop-oldest, {} ==\n",
            policy.name()
        );
        let cfg = ServeConfig::new()
            .with_workers(1)
            .with_max_batch(8)
            .with_queue_capacity(2)
            .with_drop_policy(DropPolicy::Oldest)
            .with_policy(policy);
        let report = serve(
            mixed_workload(streams, frames, 42, SystemKind::CatdetA),
            &cfg,
        );
        print!("{}", report.summary());
        println!(
            "dropped {:.1}% | worst p99 {:.2} s",
            100.0 * report.drop_rate(),
            report.worst_p99_s()
        );
    }
}
