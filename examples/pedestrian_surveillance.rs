//! Pedestrian-street scenario (CityPersons-shaped): sparse annotation,
//! crowd occlusion, and the cascade's failure mode that the tracker fixes.
//!
//! ```text
//! cargo run --release --example pedestrian_surveillance
//! ```

use catdet::core::{
    evaluate_collected_with, run_collect, CaTDetSystem, CascadedSystem, DetectionSystem,
    SingleModelSystem, SystemConfig,
};
use catdet::data::{citypersons_like, Difficulty};
use catdet::detector::zoo;
use catdet::metrics::ApMethod;

fn main() {
    // 60 sequences of 30 frames; only frame 19 of each carries labels,
    // but every frame is processed — the tracker needs the video.
    let dataset = citypersons_like().sequences(60).build();
    println!(
        "dataset: {} frames total, {} labelled, {} Person annotations\n",
        dataset.total_frames(),
        dataset.labeled_frames(),
        dataset.labeled_annotations()
    );

    let cfg = SystemConfig::paper();
    let (w, h) = (dataset.width, dataset.height);
    let mut systems: Vec<Box<dyn DetectionSystem>> = vec![
        Box::new(SingleModelSystem::new(zoo::resnet50(1), w, h)),
        Box::new(CascadedSystem::new(
            zoo::resnet10a(1),
            zoo::resnet50(1),
            w,
            h,
            cfg,
        )),
        Box::new(CaTDetSystem::new(
            zoo::resnet10a(1),
            zoo::resnet50(1),
            w,
            h,
            cfg,
        )),
    ];

    println!("{:32} {:>9} {:>9}", "system", "ops (G)", "mAP");
    let mut maps = Vec::new();
    for system in systems.iter_mut() {
        let run = run_collect(system.as_mut(), &dataset);
        let ev = evaluate_collected_with(&run, &dataset, Difficulty::Hard, ApMethod::Continuous);
        maps.push(ev.map());
        println!(
            "{:32} {:>9.1} {:>9.3}",
            run.system_name,
            run.mean_ops.total() / 1e9,
            ev.map()
        );
    }

    println!();
    println!(
        "Crowded scenes are where the plain cascade breaks (−{:.1}% mAP here): \
         a proposal miss in a crowd has no second chance. The tracker's \
         per-object predictions recover {:.1} of those {:.1} points.",
        (maps[0] - maps[1]) * 100.0,
        (maps[2] - maps[1]) * 100.0,
        (maps[0] - maps[1]) * 100.0,
    );
}
