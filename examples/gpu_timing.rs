//! The Appendix I GPU model: region merging and the `T = αW + b` estimate.
//!
//! ```text
//! cargo run --release --example gpu_timing
//! ```

use catdet::core::{CaTDetSystem, DetectionSystem, GpuTimingModel};
use catdet::data::kitti_like;
use catdet::geom::Box2;
use catdet::nn::presets;

fn main() {
    let model = GpuTimingModel::titan_x_maxwell();
    let refine = presets::frcnn_resnet50(2);

    // Single-model reference.
    let single_macs = refine.full_frame_macs(1242, 375, 300).total();
    let single = model.single_model_frame(single_macs);
    println!(
        "single ResNet-50: {:.1} Gops -> {:.3} s GPU, {:.3} s total",
        single_macs / 1e9,
        single.gpu_s,
        single.total_s
    );

    // Show merging on one real CaTDet frame.
    let ds = kitti_like().sequences(1).frames_per_sequence(60).build();
    let mut catdet = CaTDetSystem::catdet_a();
    let mut last_regions: Vec<Box2> = Vec::new();
    for frame in ds.sequences()[0].frames() {
        let out = catdet.process_frame(frame);
        last_regions = out.detections.iter().map(|d| d.bbox).collect();
    }

    let trunk = refine.trunk_macs(1242, 375);
    let per_px = trunk / (1242.0 * 375.0);
    let (merged, workload, gpu_time) =
        model.merge_regions(per_px, 1242.0, 375.0, &last_regions, 30.0);
    println!();
    println!(
        "refinement frame: {} regions merged into {} launches",
        last_regions.len(),
        merged.len()
    );
    println!(
        "merged trunk workload {:.1} Gops, estimated GPU time {:.1} ms",
        workload / 1e9,
        gpu_time * 1e3
    );

    let prop_macs = presets::frcnn_resnet10a(2)
        .full_frame_macs(1242, 375, 300)
        .total();
    let frame = model.catdet_frame(prop_macs, &refine, 1242.0, 375.0, &last_regions, 30.0);
    println!(
        "full CaTDet frame estimate: {:.3} s GPU, {:.3} s total  \
         ({:.1}x / {:.1}x faster than the single model)",
        frame.gpu_s,
        frame.total_s,
        single.gpu_s / frame.gpu_s,
        single.total_s / frame.total_s
    );
}
