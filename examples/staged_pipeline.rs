//! The resumable stage protocol, hands-on: drive a CaTDet frame through
//! its suspend points manually, then let the serving scheduler exploit
//! the same boundaries to fuse refinement launches across streams.
//!
//! ```text
//! cargo run --release --example staged_pipeline
//! ```

use catdet::core::{CaTDetSystem, StageStep, StagedDetector};
use catdet::data::kitti_like;
use catdet::serve::{mixed_workload, serve, ServeConfig, SystemKind};

fn main() {
    // ------------------------------------------------------------------
    // Part 1: one frame, stage by stage.
    // ------------------------------------------------------------------
    let ds = kitti_like()
        .sequences(1)
        .frames_per_sequence(5)
        .seed(7)
        .build();
    let mut system = CaTDetSystem::catdet_a();

    println!("== stepping one pipeline through its suspend points ==\n");
    for frame in ds.sequences()[0].frames() {
        system.begin_frame(frame);
        loop {
            match system.step() {
                StageStep::NeedsProposal(work) => {
                    println!(
                        "frame {:>2}: suspended at PROPOSAL   ({:>6.1} G pending)",
                        frame.index,
                        work.macs / 1e9
                    );
                    // A scheduler would price (and possibly batch) the
                    // dispatch here; we just resume.
                    system.complete_proposal(work);
                }
                StageStep::NeedsRefinement(work) => {
                    println!(
                        "frame {:>2}: suspended at REFINEMENT ({:>6.1} G pending, \
                         {} regions, {:.0}% coverage)",
                        frame.index,
                        work.macs / 1e9,
                        work.num_regions,
                        100.0 * work.coverage
                    );
                    system.complete_refinement(work);
                }
                StageStep::Done(out) => {
                    println!(
                        "frame {:>2}: done — {} detections, {:.1} G spent\n",
                        frame.index,
                        out.detections.len(),
                        out.ops.total() / 1e9
                    );
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Part 2: the serving layer fusing refinement across streams.
    // ------------------------------------------------------------------
    let base = ServeConfig::new()
        .with_workers(2)
        .with_max_batch(8)
        .with_queue_capacity(10_000);

    println!("== 8-camera fleet, refinement fusion off ==\n");
    let unfused = serve(mixed_workload(8, 30, 21, SystemKind::CatdetA), &base);
    print!("{}", unfused.summary());

    println!("\n== same fleet, --fuse-refinement --refine-batch-window-ms 4 ==\n");
    let fused = serve(
        mixed_workload(8, 30, 21, SystemKind::CatdetA),
        &base
            .with_fuse_refinement(true)
            .with_refine_batch_window_s(0.004),
    );
    print!("{}", fused.summary());

    println!(
        "\nfusion shaved {:.1}% off the priced GPU dispatch time \
         ({:.3} s -> {:.3} s) by sharing {} launches",
        100.0 * (1.0 - fused.gpu_dispatch_s / unfused.gpu_dispatch_s),
        unfused.gpu_dispatch_s,
        fused.gpu_dispatch_s,
        fused.batch.refinement_launches_saved,
    );
}
