//! Sharded serving fleet: partition a camera fleet across independent
//! scheduler shards, rebalance live under skewed load, and keep
//! cross-stream refinement fusion working across shard boundaries.
//!
//! ```text
//! cargo run --release --example sharded_fleet
//! ```

use catdet::serve::{
    bursty_workload, mixed_workload, serve_fleet, BurstProfile, PartitionKind, ServeConfig,
    ShardConfig, SystemKind,
};

fn main() {
    // A fleet of 16 cameras, each with its own CaTDet-A pipeline. Streams
    // are the unit of sharding: all heavy state (tracker, detector noise,
    // frame scratch) is per-stream, so any stream can live on any shard.
    let streams = 16;
    let frames = 30;

    // 1. Scaling out: the same workload on 1, 2 and 4 shards. Each shard
    //    brings its own worker pool, so the fleet's service capacity
    //    scales with the shard count.
    println!("== scale-out: 2 workers per shard, 1 -> 4 shards ==\n");
    for shards in [1, 2, 4] {
        let cfg = ServeConfig::new()
            .with_workers(2)
            .with_max_batch(4)
            .with_queue_capacity(10_000)
            .with_shard(ShardConfig::sharded(shards));
        let report = serve_fleet(
            mixed_workload(streams, frames, 42, SystemKind::CatdetA),
            &cfg,
        );
        let latency = report.merged_latency().expect("frames served");
        println!(
            "{shards} shard(s): {:6.2} frames/s | merged p99 {:6.1} ms | makespan {:5.2} s",
            report.throughput_fps(),
            latency.p99_s * 1e3,
            report.makespan_s(),
        );
    }

    // 2. Live rebalancing: a bursty fleet partitioned by static hash ends
    //    up with hot and cool shards. The rebalancer migrates a stream at
    //    a stage-boundary suspend point whenever the backlog imbalance
    //    exceeds the migration cost — tracker state travels with it, and
    //    no frame is ever lost or duplicated.
    println!("\n== live rebalancing: bursty fleet, 4 shards, 1 worker each ==\n");
    let burst = || {
        bursty_workload(
            streams,
            frames,
            42,
            SystemKind::CatdetA,
            BurstProfile::demo(),
        )
    };
    let base = ServeConfig::new()
        .with_workers(1)
        .with_max_batch(4)
        .with_queue_capacity(10_000);
    let frozen = serve_fleet(burst(), &base.with_shard(ShardConfig::sharded(4)));
    let rebalanced = serve_fleet(
        burst(),
        &base.with_shard(
            ShardConfig::sharded(4)
                .with_rebalance_interval_s(0.1)
                .with_migration_cost_frames(4),
        ),
    );
    println!(
        "frozen:     merged p99 {:7.1} ms | makespan {:5.2} s",
        frozen.merged_latency().expect("frames served").p99_s * 1e3,
        frozen.makespan_s(),
    );
    println!(
        "rebalanced: merged p99 {:7.1} ms | makespan {:5.2} s | {} migrations",
        rebalanced.merged_latency().expect("frames served").p99_s * 1e3,
        rebalanced.makespan_s(),
        rebalanced.migrations.len(),
    );
    print!("{}", rebalanced.migration_timeline());

    // 3. Cross-shard refinement fusion: with --fuse-refinement, frames
    //    suspended at their refinement boundary pool their priced work
    //    items. Fleet-wide pooling lets streams on different shards share
    //    one GPU dispatch, preserving the amortisation sharding would
    //    otherwise fracture.
    println!("\n== refinement fusion across 4 shards ==\n");
    let fused_base = ServeConfig::new()
        .with_workers(2)
        .with_max_batch(8)
        .with_queue_capacity(10_000)
        .with_fuse_refinement(true)
        .with_refine_batch_window_s(0.004);
    let unfused = serve_fleet(
        mixed_workload(streams, frames, 42, SystemKind::CatdetA),
        &fused_base
            .with_fuse_refinement(false)
            .with_shard(ShardConfig::sharded(4)),
    );
    let per_shard = serve_fleet(
        mixed_workload(streams, frames, 42, SystemKind::CatdetA),
        &fused_base.with_shard(ShardConfig::sharded(4).with_fuse_across_shards(false)),
    );
    let fleet_wide = serve_fleet(
        mixed_workload(streams, frames, 42, SystemKind::CatdetA),
        &fused_base.with_shard(ShardConfig::sharded(4).with_fuse_across_shards(true)),
    );
    println!(
        "no fusion:         mean refine batch {:4.2} | gpu dispatch {:6.3} s",
        unfused.merged_batch().mean_refine_batch(),
        unfused.gpu_dispatch_s(),
    );
    println!(
        "per-shard fusion:  mean refine batch {:4.2} | gpu dispatch {:6.3} s",
        per_shard.merged_batch().mean_refine_batch(),
        per_shard.gpu_dispatch_s(),
    );
    println!(
        "fleet-wide fusion: mean refine batch {:4.2} | gpu dispatch {:6.3} s | {} cross-shard dispatches",
        fleet_wide.merged_batch().mean_refine_batch(),
        fleet_wide.gpu_dispatch_s(),
        fleet_wide.fused_refinements.len(),
    );

    // 4. Partition policies at a glance.
    println!("\n== partition policies, 4 shards ==\n");
    for partition in [
        PartitionKind::StaticHash,
        PartitionKind::LeastLoaded,
        PartitionKind::ConsistentHash,
    ] {
        let report = serve_fleet(
            mixed_workload(streams, frames, 42, SystemKind::CatdetA),
            &ServeConfig::new()
                .with_workers(2)
                .with_queue_capacity(10_000)
                .with_shard(ShardConfig::sharded(4).with_partition(partition)),
        );
        let per_shard: Vec<usize> = report.shards.iter().map(|s| s.frames_processed).collect();
        println!(
            "{:>15}: frames per shard {:?} | makespan {:5.2} s",
            partition.name(),
            per_shard,
            report.makespan_s(),
        );
    }
}
