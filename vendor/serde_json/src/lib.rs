//! Offline stand-in for `serde_json`.
//!
//! Renders the stand-in [`serde::Value`] data model as real JSON text.
//! Only the APIs this workspace uses are provided (`to_string`,
//! `to_string_pretty`).

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error (non-finite floats are the only failure mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialises a value as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} cannot be serialised")));
            }
            // Match serde_json: floats always carry a decimal point or exponent.
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                out.push_str(&s);
            } else {
                out.push_str(&s);
                out.push_str(".0");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_array() {
        assert_eq!(to_string(&vec![1usize, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn pretty_object_shape() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            ("b".to_string(), Value::Float(2.5)),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Wrap(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": 2.5\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn nan_is_an_error() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }
}
