//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the stand-in `rand` traits.
//!
//! The workspace only needs deterministic, well-mixed, seedable streams —
//! it does not depend on bit-compatibility with the real `rand_chacha`
//! crate — but the core is the actual ChaCha permutation (8 rounds), so
//! stream quality and seed separation match the real thing.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unconsumed word in `buffer` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Double round: 4 column + 4 diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_separate_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3);
    }

    #[test]
    fn keystream_is_balanced() {
        // Crude sanity check on bit balance over 64k bits.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| r.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let x: f32 = r.gen();
        assert!((0.0..1.0).contains(&x));
        let n = r.gen_range(0usize..10);
        assert!(n < 10);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
