//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access and no registry cache, so
//! the real serde cannot be used. This crate implements `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` against the sibling stand-in `serde` crate,
//! whose `Serialize` trait is value-based (`fn to_value(&self) -> Value`).
//!
//! The parser is deliberately minimal — no `syn`, no `quote` — and supports
//! exactly the shapes this workspace derives on: non-generic named structs,
//! tuple structs, and enums with unit / tuple / struct variants. Anything
//! else panics with a clear message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity).
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips attribute pairs (`#` followed by a bracket group) and returns the
/// next significant token.
fn next_significant(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Option<TokenTree> {
    while let Some(tt) = iter.next() {
        if let TokenTree::Punct(p) = &tt {
            if p.as_char() == '#' {
                // Swallow the following [...] (or ![...]) group.
                if let Some(TokenTree::Punct(bang)) = iter.peek() {
                    if bang.as_char() == '!' {
                        iter.next();
                    }
                }
                iter.next();
                continue;
            }
        }
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "pub" {
                // Swallow a possible restriction group: pub(crate) etc.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
                continue;
            }
        }
        return Some(tt);
    }
    None
}

/// Parses the field names of a named-fields brace group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        let name = match next_significant(&mut iter) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde stand-in derive: unexpected token in fields: {other}"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde stand-in derive: expected `:` after field `{name}`, got {other:?}")
            }
        }
        names.push(name);
        // Consume the type up to the next top-level comma.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

/// Counts the fields of a tuple group (top-level comma count).
fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut saw_token = false;
    for tt in group {
        saw_token = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
            _ => {}
        }
    }
    if saw_token {
        arity + 1
    } else {
        0
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let kind = loop {
        match next_significant(&mut iter) {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // e.g. `union` or stray idents — keep scanning.
            }
            Some(_) => {}
            None => panic!("serde stand-in derive: no struct/enum found"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde stand-in derive: generic type `{name}` is not supported");
        }
    }
    if kind == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(parse_tuple_arity(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde stand-in derive: malformed struct `{name}`: {other:?}"),
        }
    } else {
        let body = match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde stand-in derive: malformed enum `{name}`: {other:?}"),
        };
        let mut variants = Vec::new();
        let mut viter = body.into_iter().peekable();
        loop {
            let vname = match next_significant(&mut viter) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                Some(other) => {
                    panic!("serde stand-in derive: unexpected token in enum `{name}`: {other}")
                }
                None => break,
            };
            let fields = match viter.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = parse_tuple_arity(g.stream());
                    viter.next();
                    Fields::Tuple(arity)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let names = parse_named_fields(g.stream());
                    viter.next();
                    Fields::Named(names)
                }
                _ => Fields::Unit,
            };
            // Consume an optional discriminant and the trailing comma.
            let mut depth = 0i32;
            while let Some(tt) = viter.peek() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                        viter.next();
                        break;
                    }
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    _ => {}
                }
                viter.next();
            }
            variants.push(Variant {
                name: vname,
                fields,
            });
        }
        Item::Enum { name, variants }
    }
}

/// `#[derive(Serialize)]`: implements the stand-in `serde::Serialize`
/// (`fn to_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(names) => {
                let entries: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Object(::std::vec![{}])\n}}\n}}",
                    entries.join(", ")
                )
            }
            Fields::Tuple(n) => {
                let entries: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Array(::std::vec![{}])\n}}\n}}",
                    entries.join(", ")
                )
            }
            Fields::Unit => format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
            ),
        },
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\"))"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let vals: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", vals.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})])",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n}}\n}}",
                arms.join(",\n")
            )
        }
    };
    src.parse()
        .expect("serde stand-in derive: generated impl failed to parse")
}

/// `#[derive(Deserialize)]`: the stand-in `serde::Deserialize` is a marker
/// trait (nothing in this workspace actually deserialises), so the derive
/// just emits the marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stand-in derive: generated impl failed to parse")
}
