//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real serde cannot be
//! fetched. This crate keeps the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations and `serde_json::to_string_pretty` calls working with a much
//! simpler model:
//!
//! * [`Serialize`] converts a value into a self-describing [`Value`] tree
//!   (`fn to_value`). The derive macro (from the sibling `serde_derive`
//!   stand-in) implements it structurally for structs and enums.
//! * [`Deserialize`] is a marker trait — nothing in this workspace
//!   deserialises, it only annotates types for future use.
//!
//! The stand-in `serde_json` crate renders [`Value`] as real JSON.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key-value map (field order preserved).
    Object(Vec<(String, Value)>),
}

/// Serialisation into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for serde's `Deserialize`.
pub trait Deserialize<'de> {}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl<'de> Deserialize<'de> for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_into_values() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1usize, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.0)])])
        );
        assert_eq!(Option::<usize>::None.to_value(), Value::Null);
    }
}
