//! Offline stand-in for `rand` (0.8-style API surface).
//!
//! Implements exactly what this workspace uses: [`RngCore`], [`SeedableRng`],
//! and the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`.
//! Numeric streams are deterministic for a given generator implementation
//! and seed, which is all the simulation needs (the workspace never relies
//! on bit-compatibility with the real `rand` crate).

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable uniformly from the generator's raw bits (the stand-in
/// for `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

/// Types with uniform sampling over an interval (the stand-in for
/// `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges sampleable uniformly (the stand-in for `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak mixing, fine for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let v = r.gen_range(-5.0f32..5.0);
            assert!((-5.0..5.0).contains(&v));
            let n = r.gen_range(1usize..4);
            assert!((1..4).contains(&n));
            let m = r.gen_range(2i32..=4);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = Counter(1);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
