//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! `name in strategy` bindings, range strategies over numeric types, tuple
//! strategies, [`collection::vec`], [`bool::ANY`], and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Differences from the real crate: a fixed number of cases
//! ([`CASES`]) per property, no shrinking (a failing case panics with the
//! assertion message directly), and a deterministic per-test seed derived
//! from the property name, so failures are reproducible run-to-run.

use rand_chacha::ChaCha8Rng;

pub use rand::Rng as _;

/// Number of random cases run per property.
pub const CASES: usize = 128;

/// Deterministic generator for a named property test.
pub fn test_rng(name: &str) -> ChaCha8Rng {
    // FNV-1a over the property name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    rand::SeedableRng::seed_from_u64(h)
}

pub mod strategy {
    //! The [`Strategy`] trait and its implementations.

    use rand::{RngCore, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value;

        /// Maps generated values through `f` (the real crate's
        /// `Strategy::prop_map`, minus shrinking).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate<R: RngCore>(&self, rng: &mut R) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate<R: RngCore>(&self, rng: &mut R) -> $t {
                    self.clone().sample_range(rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate<R: RngCore>(&self, rng: &mut R) -> $t {
                    self.clone().sample_range(rng)
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

pub mod bool {
    //! Boolean strategies.

    use rand::RngCore;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate<R: RngCore>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::{RngCore, SampleRange};
    use std::ops::Range;

    /// Size specification for [`vec()`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// A length drawn uniformly from the range.
        Between(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Between(r)
        }
    }

    /// Strategy yielding vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// follows `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
            let len = match &self.size {
                SizeRange::Exact(n) => *n,
                SizeRange::Between(r) if r.is_empty() => 0,
                SizeRange::Between(r) => r.clone().sample_range(rng),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests.
    pub use crate::bool::ANY as ANY_BOOL;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy) { … } }`.
///
/// Each property runs [`CASES`] random cases from a deterministic,
/// name-derived seed. There is no shrinking: the first failing case panics.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut proptest_rng = $crate::test_rng(stringify!($name));
            for _ in 0..$crate::CASES {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut proptest_rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {

    use crate::strategy::Strategy;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_of_tuples_has_requested_len(
            items in crate::collection::vec((0.0f32..1.0, 0usize..5), 4),
        ) {
            prop_assert_eq!(items.len(), 4);
            for (f, n) in items {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!(n < 5);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies_function(
            n in (0usize..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(n % 2 == 0 && n < 20);
        }
    }

    #[test]
    fn bool_any_hits_both_values() {
        let mut rng = crate::test_rng("bool_any");
        let draws: Vec<bool> = (0..64)
            .map(|_| crate::bool::ANY.generate(&mut rng))
            .collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn ranged_vec_len_varies_within_bounds() {
        let mut rng = crate::test_rng("vec_len");
        let strat = crate::collection::vec(0.0f64..1.0, 0..7);
        let lens: Vec<usize> = (0..64).map(|_| strat.generate(&mut rng).len()).collect();
        assert!(lens.iter().all(|&l| l < 7));
        assert!(lens.iter().collect::<std::collections::HashSet<_>>().len() > 2);
    }
}
