//! Offline stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `iter`/`iter_batched`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop (fixed warm-up, then timed iterations) and
//! plain-text reporting. No statistics, plots, or baselines.
//!
//! Setting `CATDET_BENCH_QUICK=1` switches to smoke mode (one warm-up
//! iteration, ~20 ms of measurement per benchmark): numbers become noisy
//! but every bench body still executes, so CI can cheaply catch panics
//! and gross regressions in bench-only code paths.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized in [`Bencher::iter_batched`]; accepted for
/// API compatibility, measurement ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work performed per iteration, reported as a rate next to the time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (used inside a named group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives the measurement of one benchmark.
pub struct Bencher<'a> {
    /// Mean time per iteration, filled in by `iter*`.
    mean: &'a mut Duration,
}

const MAX_ITERS: u64 = 100_000;

/// Smoke mode: minimal warm-up and measurement so CI can run every bench
/// body without paying for statistical quality.
fn quick_mode() -> bool {
    std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn warmup_iters() -> u64 {
    if quick_mode() {
        1
    } else {
        3
    }
}

fn target_time() -> Duration {
    if quick_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(200)
    }
}

impl Bencher<'_> {
    /// Times `routine` over repeated calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..warmup_iters() {
            black_box(routine());
        }
        let target = target_time();
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < target && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        *self.mean = start.elapsed() / iters.max(1) as u32;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..warmup_iters() {
            let input = setup();
            black_box(routine(input));
        }
        let target = target_time();
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        while busy < target && iters < MAX_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            busy += t.elapsed();
            iters += 1;
        }
        *self.mean = busy / iters.max(1) as u32;
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, mean: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<50} time: {:>12}", human_time(mean));
    if let Some(t) = throughput {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                let _ = write!(line, "   thrpt: {:>12.1} elem/s", n as f64 / secs);
            }
            Throughput::Bytes(n) => {
                let _ = write!(line, "   thrpt: {:>12.1} B/s", n as f64 / secs);
            }
        }
    }
    println!("{line}");
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut mean = Duration::ZERO;
        f(&mut Bencher { mean: &mut mean });
        report(&id.id, mean, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut mean = Duration::ZERO;
        f(&mut Bencher { mean: &mut mean });
        report(&format!("{}/{}", self.name, id.id), mean, self.throughput);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut mean = Duration::ZERO;
        f(&mut Bencher { mean: &mut mean }, input);
        report(&format!("{}/{}", self.name, id.id), mean, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // stand-in has no filtering, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        // Must not panic and must complete quickly.
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_with_input(BenchmarkId::new("param", 2), &2usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(Duration::from_nanos(10)).contains("ns"));
        assert!(human_time(Duration::from_micros(10)).contains("µs"));
        assert!(human_time(Duration::from_millis(10)).contains("ms"));
    }
}
