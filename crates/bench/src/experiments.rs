//! One function per table/figure of the paper.
//!
//! Each function runs the relevant systems at the given [`Scale`] and
//! returns structured rows carrying both the measured value and the
//! paper's reported value, so binaries (and integration tests) can print
//! or assert on them.

use crate::scale::Scale;
use catdet_core::{
    evaluate_collected, evaluate_collected_with, run_collect, CaTDetSystem, CascadedSystem,
    CollectedRun, DetectionSystem, GpuTimingModel, SingleModelSystem, SystemConfig,
};
use catdet_data::{Difficulty, VideoDataset};
use catdet_detector::{zoo, DetectorModel};
use catdet_metrics::ApMethod;
use catdet_metrics::OperatingPoint;
use catdet_nn::{gops, presets};
use catdet_sim::ActorClass;
use serde::Serialize;

/// KITTI frame dimensions.
const KITTI_W: f32 = 1242.0;
const KITTI_H: f32 = 375.0;
/// CityPersons frame dimensions.
const CP_W: f32 = 2048.0;
const CP_H: f32 = 1024.0;

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One proposal-network spec row (Table 1).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Measured Faster R-CNN Gops at 1242×375 with 300 proposals.
    pub gops: f64,
    /// The paper's value.
    pub paper_gops: f64,
}

/// Regenerates Table 1: operation counts of the proposal backbones
/// (plus the ResNet-50/VGG-16 reference rows from Tables 2/5).
pub fn table1() -> Vec<Table1Row> {
    [
        (presets::frcnn_resnet18(2), 138.3),
        (presets::frcnn_resnet10a(2), 20.7),
        (presets::frcnn_resnet10b(2), 7.5),
        (presets::frcnn_resnet10c(2), 4.5),
        (presets::frcnn_resnet50(2), 254.3),
        (presets::frcnn_vgg16(2), 179.0),
    ]
    .into_iter()
    .map(|(spec, paper)| Table1Row {
        model: spec.name.clone(),
        gops: gops(spec.full_frame_macs(1242, 375, 300).total()),
        paper_gops: paper,
    })
    .collect()
}

// ---------------------------------------------------------------------
// Shared runners
// ---------------------------------------------------------------------

/// Which system shape to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Single-model detector (Fig. 1a).
    Single,
    /// Cascade without tracker (Fig. 1b).
    Cascaded,
    /// Full CaTDet (Fig. 1c).
    CaTDet,
}

/// Builds a system over arbitrary models/dims.
pub fn build_system(
    kind: SystemKind,
    proposal: Option<DetectorModel>,
    refinement: DetectorModel,
    width: f32,
    height: f32,
    cfg: SystemConfig,
) -> Box<dyn DetectionSystem> {
    match kind {
        SystemKind::Single => Box::new(SingleModelSystem::new(refinement, width, height)),
        SystemKind::Cascaded => Box::new(CascadedSystem::new(
            proposal.expect("cascade needs a proposal model"),
            refinement,
            width,
            height,
            cfg,
        )),
        SystemKind::CaTDet => Box::new(CaTDetSystem::new(
            proposal.expect("CaTDet needs a proposal model"),
            refinement,
            width,
            height,
            cfg,
        )),
    }
}

fn run(system: &mut dyn DetectionSystem, ds: &VideoDataset) -> CollectedRun {
    run_collect(system, ds)
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// One KITTI main-results row (Table 2).
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// System description.
    pub system: String,
    /// Mean Gops per frame.
    pub gops: f64,
    /// mAP at Moderate difficulty.
    pub map_moderate: f64,
    /// mAP at Hard difficulty.
    pub map_hard: f64,
    /// mD@0.8 at Moderate difficulty (frames).
    pub md08_moderate: Option<f64>,
    /// mD@0.8 at Hard difficulty (frames).
    pub md08_hard: Option<f64>,
    /// Paper values `(ops, mAP mod, mAP hard, mD mod, mD hard)`.
    pub paper: (f64, f64, f64, f64, f64),
}

fn table2_row(
    system: &mut dyn DetectionSystem,
    ds: &VideoDataset,
    paper: (f64, f64, f64, f64, f64),
) -> Table2Row {
    let run = run(system, ds);
    let moderate = evaluate_collected(&run, ds, Difficulty::Moderate);
    let hard = evaluate_collected(&run, ds, Difficulty::Hard);
    Table2Row {
        system: run.system_name.clone(),
        gops: run.mean_ops.total() / 1e9,
        map_moderate: moderate.map(),
        map_hard: hard.map(),
        md08_moderate: moderate.mean_delay_at_precision(0.8).map(|d| d.mean),
        md08_hard: hard.mean_delay_at_precision(0.8).map(|d| d.mean),
        paper,
    }
}

/// Regenerates Table 2: the KITTI main results.
pub fn table2(scale: Scale) -> Vec<Table2Row> {
    let ds = scale.kitti();
    vec![
        table2_row(
            &mut SingleModelSystem::resnet50_kitti(),
            &ds,
            (254.3, 0.812, 0.740, 2.6, 3.3),
        ),
        table2_row(
            &mut CascadedSystem::cascade_a(),
            &ds,
            (43.2, 0.807, 0.733, 3.2, 3.8),
        ),
        table2_row(
            &mut CaTDetSystem::catdet_a(),
            &ds,
            (49.3, 0.814, 0.740, 2.9, 3.7),
        ),
        table2_row(
            &mut CascadedSystem::cascade_b(),
            &ds,
            (23.5, 0.787, 0.730, 4.7, 5.7),
        ),
        table2_row(
            &mut CaTDetSystem::catdet_b(),
            &ds,
            (29.3, 0.815, 0.741, 3.3, 4.1),
        ),
    ]
}

// ---------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------

/// Operation break-down row (Table 3), in Gops.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// System description.
    pub system: String,
    /// Mean total Gops.
    pub total: f64,
    /// Proposal-network share.
    pub proposal: f64,
    /// Refinement-network share.
    pub refinement: f64,
    /// Refinement cost attributable to tracker regions alone.
    pub from_tracker: Option<f64>,
    /// Refinement cost attributable to proposal regions alone.
    pub from_proposal: Option<f64>,
    /// Paper values `(total, proposal, refinement, from_tracker, from_proposal)`.
    pub paper: (f64, f64, f64, Option<f64>, Option<f64>),
}

/// Paper reference values of one Table 3 row:
/// `(total, proposal, refinement, from_tracker, from_proposal)`.
type Table3Paper = (f64, f64, f64, Option<f64>, Option<f64>);

/// Regenerates Table 3: where the operations go.
pub fn table3(scale: Scale) -> Vec<Table3Row> {
    let ds = scale.kitti();
    let mut rows = Vec::new();
    let cases: Vec<(Box<dyn DetectionSystem>, Table3Paper)> = vec![
        (
            Box::new(CascadedSystem::cascade_a()),
            (43.2, 20.7, 22.5, None, None),
        ),
        (
            Box::new(CaTDetSystem::catdet_a()),
            (49.3, 20.7, 28.6, Some(11.9), Some(22.5)),
        ),
        (
            Box::new(CascadedSystem::cascade_b()),
            (23.5, 7.5, 16.0, None, None),
        ),
        (
            Box::new(CaTDetSystem::catdet_b()),
            (29.1, 7.5, 21.8, Some(11.4), Some(16.0)),
        ),
    ];
    for (mut system, paper) in cases {
        let r = run(system.as_mut(), &ds);
        let is_catdet = paper.3.is_some();
        rows.push(Table3Row {
            system: r.system_name.clone(),
            total: r.mean_ops.total() / 1e9,
            proposal: r.mean_ops.proposal / 1e9,
            refinement: r.mean_ops.refinement / 1e9,
            from_tracker: is_catdet.then_some(r.mean_ops.refinement_from_tracker / 1e9),
            from_proposal: is_catdet.then_some(r.mean_ops.refinement_from_proposal / 1e9),
            paper,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Tables 4 & 5
// ---------------------------------------------------------------------

/// A single-model-vs-CaTDet comparison row (Tables 4 and 5).
#[derive(Debug, Clone, Serialize)]
pub struct RoleRow {
    /// Varied model.
    pub model: String,
    /// `"FR-CNN"` (single) or `"CaTDet(P)"` / `"CaTDet(R)"`.
    pub setting: String,
    /// mAP at Hard difficulty.
    pub map_hard: f64,
    /// mD@0.8 at Hard difficulty.
    pub md08_hard: Option<f64>,
    /// Mean Gops.
    pub gops: f64,
    /// Paper values `(mAP, mD, ops)`.
    pub paper: (f64, f64, f64),
}

fn role_row(
    model_name: &str,
    setting: &str,
    system: &mut dyn DetectionSystem,
    ds: &VideoDataset,
    paper: (f64, f64, f64),
) -> RoleRow {
    let run = run(system, ds);
    let hard = evaluate_collected(&run, ds, Difficulty::Hard);
    RoleRow {
        model: model_name.to_string(),
        setting: setting.to_string(),
        map_hard: hard.map(),
        md08_hard: hard.mean_delay_at_precision(0.8).map(|d| d.mean),
        gops: run.mean_ops.total() / 1e9,
        paper,
    }
}

/// Regenerates Table 4: the proposal network's role. Each candidate is
/// measured as (a) a single-model detector, (b) the proposal net of a
/// One Table 4/5 case: the swept model plus the paper's
/// `(mAP, delay, Gops)` for it alone and inside CaTDet.
type RoleCase = (DetectorModel, (f64, f64, f64), (f64, f64, f64));

/// CaTDet with ResNet-50 refinement.
pub fn table4(scale: Scale) -> Vec<RoleRow> {
    let ds = scale.kitti();
    let cases: Vec<RoleCase> = vec![
        (zoo::resnet18(2), (0.687, 5.9, 138.0), (0.742, 3.5, 163.0)),
        (zoo::resnet10a(2), (0.606, 10.9, 20.7), (0.740, 3.7, 49.3)),
        (zoo::resnet10b(2), (0.564, 13.4, 7.5), (0.741, 4.0, 29.3)),
        (zoo::resnet10c(2), (0.542, 15.4, 4.5), (0.741, 4.1, 27.3)),
    ];
    let mut rows = Vec::new();
    for (model, paper_single, paper_catdet) in cases {
        let name = model.name.clone();
        let mut single = SingleModelSystem::new(model.clone(), KITTI_W, KITTI_H);
        rows.push(role_row(&name, "FR-CNN", &mut single, &ds, paper_single));
        let mut catdet = CaTDetSystem::new(
            model,
            zoo::resnet50(2),
            KITTI_W,
            KITTI_H,
            SystemConfig::paper(),
        );
        rows.push(role_row(&name, "CaTDet(P)", &mut catdet, &ds, paper_catdet));
    }
    rows
}

/// Regenerates Table 5: the refinement network's role. Each candidate is
/// measured as (a) a single-model detector, (b) the refinement net of a
/// CaTDet with ResNet-10b proposals.
pub fn table5(scale: Scale) -> Vec<RoleRow> {
    let ds = scale.kitti();
    let cases: Vec<RoleCase> = vec![
        (zoo::resnet18(2), (0.687, 5.9, 138.0), (0.696, 6.0, 24.4)),
        (zoo::resnet50(2), (0.740, 3.3, 254.0), (0.741, 4.0, 39.8)),
        (zoo::vgg16(2), (0.742, 4.2, 179.0), (0.743, 4.4, 63.9)),
    ];
    let mut rows = Vec::new();
    for (model, paper_single, paper_catdet) in cases {
        let name = model.name.clone();
        let mut single = SingleModelSystem::new(model.clone(), KITTI_W, KITTI_H);
        rows.push(role_row(&name, "FR-CNN", &mut single, &ds, paper_single));
        let mut catdet = CaTDetSystem::new(
            zoo::resnet10b(2),
            model,
            KITTI_W,
            KITTI_H,
            SystemConfig::paper(),
        );
        rows.push(role_row(&name, "CaTDet(R)", &mut catdet, &ds, paper_catdet));
    }
    rows
}

// ---------------------------------------------------------------------
// Table 6
// ---------------------------------------------------------------------

/// CityPersons row (Table 6).
#[derive(Debug, Clone, Serialize)]
pub struct Table6Row {
    /// System description.
    pub system: String,
    /// mAP (Person class, Pascal-VOC protocol).
    pub map: f64,
    /// Mean Gops per frame.
    pub gops: f64,
    /// Paper values `(mAP, ops)`.
    pub paper: (f64, f64),
}

/// Regenerates Table 6: CityPersons, same hyper-parameters as KITTI.
pub fn table6(scale: Scale) -> Vec<Table6Row> {
    let ds = scale.citypersons();
    let cfg = SystemConfig::paper();
    let cases: Vec<(Box<dyn DetectionSystem>, (f64, f64))> = vec![
        (
            Box::new(SingleModelSystem::new(zoo::resnet50(1), CP_W, CP_H)),
            (0.674, 597.0),
        ),
        (
            Box::new(CascadedSystem::new(
                zoo::resnet10a(1),
                zoo::resnet50(1),
                CP_W,
                CP_H,
                cfg,
            )),
            (0.611, 79.5),
        ),
        (
            Box::new(CaTDetSystem::new(
                zoo::resnet10a(1),
                zoo::resnet50(1),
                CP_W,
                CP_H,
                cfg,
            )),
            (0.662, 87.4),
        ),
        (
            Box::new(CascadedSystem::new(
                zoo::resnet10b(1),
                zoo::resnet50(1),
                CP_W,
                CP_H,
                cfg,
            )),
            (0.607, 39.0),
        ),
        (
            Box::new(CaTDetSystem::new(
                zoo::resnet10b(1),
                zoo::resnet50(1),
                CP_W,
                CP_H,
                cfg,
            )),
            (0.666, 46.0),
        ),
    ];
    let mut rows = Vec::new();
    for (mut system, paper) in cases {
        let r = run(system.as_mut(), &ds);
        // Paper §7.1: Pascal-VOC protocol for the Person class.
        let ev = evaluate_collected_with(&r, &ds, Difficulty::Hard, ApMethod::Continuous);
        rows.push(Table6Row {
            system: r.system_name.clone(),
            map: ev.map(),
            gops: r.mean_ops.total() / 1e9,
            paper,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Table 7
// ---------------------------------------------------------------------

/// GPU timing row (Appendix I, Table 7).
#[derive(Debug, Clone, Serialize)]
pub struct Table7Row {
    /// System description.
    pub system: String,
    /// Mean end-to-end frame time (s).
    pub total_s: f64,
    /// Mean GPU kernel time (s).
    pub gpu_s: f64,
    /// Paper values `(total, gpu)`.
    pub paper: (f64, f64),
}

/// Regenerates Table 7: estimated execution time on the Titan X model,
/// with greedy region merging for the CaTDet refinement pass.
pub fn table7(scale: Scale) -> Vec<Table7Row> {
    let ds = scale.kitti();
    let model = GpuTimingModel::titan_x_maxwell();

    // Single-model ResNet-50.
    let single_macs = presets::frcnn_resnet50(2)
        .full_frame_macs(1242, 375, 300)
        .total();
    let single = model.single_model_frame(single_macs);

    // CaTDet-A: timing depends on the per-frame regions; replay the run.
    let refine_spec = presets::frcnn_resnet50(2);
    let prop_macs = presets::frcnn_resnet10a(2)
        .full_frame_macs(1242, 375, 300)
        .total();
    let mut system = CaTDetSystem::catdet_a();
    let mut gpu_sum = 0.0;
    let mut total_sum = 0.0;
    let mut frames = 0usize;
    for seq in ds.sequences() {
        system.reset();
        for frame in seq.frames() {
            let out = system.process_frame(frame);
            let regions: Vec<catdet_geom::Box2> = out.detections.iter().map(|d| d.bbox).collect();
            // Regions for timing = what refinement actually processed;
            // approximate with the frame's refinement inputs by re-deriving
            // from coverage is lossy, so use the union count recorded.
            let _ = regions;
            let t = model.catdet_frame(
                prop_macs,
                &refine_spec,
                KITTI_W,
                KITTI_H,
                &region_proxy(&out),
                system.config().margin,
            );
            gpu_sum += t.gpu_s;
            total_sum += t.total_s;
            frames += 1;
        }
    }
    vec![
        Table7Row {
            system: "Res50 Faster R-CNN".into(),
            total_s: single.total_s,
            gpu_s: single.gpu_s,
            paper: (0.193, 0.159),
        },
        Table7Row {
            system: "Res10a-Res50 CaTDet".into(),
            total_s: total_sum / frames.max(1) as f64,
            gpu_s: gpu_sum / frames.max(1) as f64,
            paper: (0.094, 0.042),
        },
    ]
}

/// Reconstructs a plausible region set for timing from a frame output:
/// the final detections plus padding boxes to reach the recorded region
/// count (undetected proposals still cost GPU time).
fn region_proxy(out: &catdet_core::FrameOutput) -> Vec<catdet_geom::Box2> {
    let mut regions: Vec<catdet_geom::Box2> = out.detections.iter().map(|d| d.bbox).collect();
    let missing = out.num_refinement_regions.saturating_sub(regions.len());
    // Missing regions (proposals that refined to nothing) are modelled as
    // median-sized boxes tiled along the road band of the frame.
    for i in 0..missing {
        let x = 40.0 + (i as f32 * 97.0) % 1100.0;
        regions.push(catdet_geom::Box2::from_xywh(x, 160.0, 80.0, 60.0));
    }
    regions
}

// ---------------------------------------------------------------------
// Table 8
// ---------------------------------------------------------------------

/// RetinaNet comparison row (Appendix II, Table 8).
#[derive(Debug, Clone, Serialize)]
pub struct Table8Row {
    /// System description.
    pub system: String,
    /// Mean Gops per frame.
    pub gops: f64,
    /// mAP at Moderate difficulty.
    pub map_moderate: f64,
    /// mD@0.8 at Moderate difficulty.
    pub md08_moderate: Option<f64>,
    /// Paper values `(ops, mAP, mD)`.
    pub paper: (f64, f64, f64),
}

/// One Table 8 case: a system plus the paper's `(ops, mAP, mD)`.
type Table8Case = (Box<dyn DetectionSystem>, (f64, f64, f64));

/// Regenerates Table 8: RetinaNet as the refinement network.
pub fn table8(scale: Scale) -> Vec<Table8Row> {
    let ds = scale.kitti();
    let cases: Vec<Table8Case> = vec![
        (
            Box::new(SingleModelSystem::retinanet_kitti()),
            (96.7, 0.773, 6.53),
        ),
        (
            Box::new(CaTDetSystem::catdet_retinanet()),
            (30.8, 0.775, 6.33),
        ),
    ];
    let mut rows = Vec::new();
    for (mut system, paper) in cases {
        let r = run(system.as_mut(), &ds);
        let ev = evaluate_collected(&r, &ds, Difficulty::Moderate);
        rows.push(Table8Row {
            system: r.system_name.clone(),
            gops: r.mean_ops.total() / 1e9,
            map_moderate: ev.map(),
            md08_moderate: ev.mean_delay_at_precision(0.8).map(|d| d.mean),
            paper,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figures 6 & 7
// ---------------------------------------------------------------------

/// One point of the Figure 6 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Point {
    /// Proposal model name.
    pub model: String,
    /// Whether the tracker is present (CaTDet vs. plain cascade).
    pub tracker: bool,
    /// Proposal output threshold.
    pub c_thresh: f32,
    /// mAP at Hard difficulty.
    pub map_hard: f64,
    /// mD@0.8 at Hard difficulty.
    pub md08_hard: Option<f64>,
    /// Mean Gops per frame.
    pub gops: f64,
}

/// The paper's C-thresh sweep values.
pub const C_THRESH_SWEEP: [f32; 7] = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6];

/// Regenerates Figure 6: mAP and mD@0.8 (Hard) as functions of the
/// proposal network's output threshold, with and without the tracker.
pub fn fig6(scale: Scale) -> Vec<Fig6Point> {
    let ds = scale.kitti();
    let mut points = Vec::new();
    let models: Vec<fn(usize) -> DetectorModel> =
        vec![zoo::resnet10a, zoo::resnet10c, zoo::resnet18];
    for make_model in models {
        for &tracker in &[true, false] {
            for &c in C_THRESH_SWEEP.iter() {
                let cfg = SystemConfig::paper().with_c_thresh(c);
                let model = make_model(2);
                let name = model.name.clone();
                let mut system: Box<dyn DetectionSystem> = if tracker {
                    Box::new(CaTDetSystem::new(
                        model,
                        zoo::resnet50(2),
                        KITTI_W,
                        KITTI_H,
                        cfg,
                    ))
                } else {
                    Box::new(CascadedSystem::new(
                        model,
                        zoo::resnet50(2),
                        KITTI_W,
                        KITTI_H,
                        cfg,
                    ))
                };
                let r = run(system.as_mut(), &ds);
                let ev = evaluate_collected(&r, &ds, Difficulty::Hard);
                points.push(Fig6Point {
                    model: name,
                    tracker,
                    c_thresh: c,
                    map_hard: ev.map(),
                    md08_hard: ev.mean_delay_at_precision(0.8).map(|d| d.mean),
                    gops: r.mean_ops.total() / 1e9,
                });
            }
        }
    }
    points
}

/// Figure 7 output: per-class recall/delay-vs-precision curves.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Curves {
    /// Curve for the Car class.
    pub car: Vec<OperatingPoint>,
    /// Curve for the Pedestrian class.
    pub pedestrian: Vec<OperatingPoint>,
}

/// Regenerates Figure 7: how recall and delay correlate with precision,
/// for CaTDet-A on KITTI (Hard difficulty).
pub fn fig7(scale: Scale) -> Fig7Curves {
    let ds = scale.kitti();
    let mut system = CaTDetSystem::catdet_a();
    let r = run(&mut system, &ds);
    let ev = evaluate_collected(&r, &ds, Difficulty::Hard);
    Fig7Curves {
        car: ev.operating_curve(ActorClass::Car, 60),
        pedestrian: ev.operating_curve(ActorClass::Pedestrian, 60),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_within_tolerance() {
        for row in table1() {
            let rel = (row.gops - row.paper_gops).abs() / row.paper_gops;
            assert!(
                rel < 0.15,
                "{}: {} vs {}",
                row.model,
                row.gops,
                row.paper_gops
            );
        }
    }

    #[test]
    fn build_system_covers_all_kinds() {
        let cfg = SystemConfig::paper();
        let s = build_system(
            SystemKind::Single,
            None,
            zoo::resnet50(2),
            KITTI_W,
            KITTI_H,
            cfg,
        );
        assert!(s.name().contains("single"));
        let c = build_system(
            SystemKind::Cascaded,
            Some(zoo::resnet10a(2)),
            zoo::resnet50(2),
            KITTI_W,
            KITTI_H,
            cfg,
        );
        assert!(c.name().contains("Cascaded"));
        let t = build_system(
            SystemKind::CaTDet,
            Some(zoo::resnet10a(2)),
            zoo::resnet50(2),
            KITTI_W,
            KITTI_H,
            cfg,
        );
        assert!(t.name().contains("CaTDet"));
    }
}
