//! Regenerates Table 8 (Appendix II): RetinaNet-based CaTDet.

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading(
        "Table 8",
        "RetinaNet single model vs RetinaNet CaTDet (Moderate)",
    );
    println!(
        "{:32} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "system", "ops (G)", "paper", "mAP", "paper", "mD@0.8", "paper"
    );
    let rows = experiments::table8(scale);
    for r in &rows {
        println!(
            "{:32} {:>8.1} {:>8.1} | {:>8.3} {:>8.3} | {:>8.2} {:>8.2}",
            r.system,
            r.gops,
            r.paper.0,
            r.map_moderate,
            r.paper.1,
            r.md08_moderate.unwrap_or(f64::NAN),
            r.paper.2
        );
    }
    tables::save_json("table8", &rows);
}
