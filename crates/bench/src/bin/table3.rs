//! Regenerates Table 3: operation break-down.

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading("Table 3", "operation break-down (Gops; sources overlap)");
    println!(
        "{:28} {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>8} {:>8} | {:>8} {:>8}",
        "system",
        "total",
        "paper",
        "prop",
        "paper",
        "refine",
        "paper",
        "from-trk",
        "paper",
        "from-prop",
        "paper"
    );
    let rows = experiments::table3(scale);
    for r in &rows {
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:>8.1}"))
                .unwrap_or_else(|| format!("{:>8}", "/"))
        };
        println!(
            "{:28} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} | {:>7.1} {:>7.1} | {} {} | {} {}",
            r.system,
            r.total,
            r.paper.0,
            r.proposal,
            r.paper.1,
            r.refinement,
            r.paper.2,
            fmt_opt(r.from_tracker),
            fmt_opt(r.paper.3),
            fmt_opt(r.from_proposal),
            fmt_opt(r.paper.4),
        );
    }
    tables::save_json("table3", &rows);
}
