//! Regenerates Table 5: importance of the refinement network.

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading(
        "Table 5",
        "each model as (a) single FR-CNN, (b) CaTDet refinement net (Hard)",
    );
    println!(
        "{:12} {:10} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "model", "setting", "mAP", "paper", "mD@0.8", "paper", "ops (G)", "paper"
    );
    let rows = experiments::table5(scale);
    for r in &rows {
        println!(
            "{:12} {:10} {:>8.3} {:>8.3} | {:>8.2} {:>8.2} | {:>8.1} {:>8.1}",
            r.model,
            r.setting,
            r.map_hard,
            r.paper.0,
            r.md08_hard.unwrap_or(f64::NAN),
            r.paper.1,
            r.gops,
            r.paper.2
        );
    }
    tables::save_json("table5", &rows);
}
