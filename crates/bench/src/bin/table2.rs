//! Regenerates Table 2: the KITTI main results.

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading("Table 2", "KITTI main results (Moderate and Hard)");
    println!(
        "{:28} {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>8} {:>8} | {:>8} {:>8}",
        "system",
        "ops",
        "paper",
        "mAP(M)",
        "paper",
        "mAP(H)",
        "paper",
        "mD.8(M)",
        "paper",
        "mD.8(H)",
        "paper"
    );
    let rows = experiments::table2(scale);
    for r in &rows {
        println!(
            "{:28} {:>7.1} {:>7.1} | {:>7.3} {:>7.3} | {:>7.3} {:>7.3} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
            r.system,
            r.gops,
            r.paper.0,
            r.map_moderate,
            r.paper.1,
            r.map_hard,
            r.paper.2,
            r.md08_moderate.unwrap_or(f64::NAN),
            r.paper.3,
            r.md08_hard.unwrap_or(f64::NAN),
            r.paper.4,
        );
    }
    tables::save_json("table2", &rows);
}
