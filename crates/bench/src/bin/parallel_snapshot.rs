//! Real-thread fleet + SIMD geometry snapshot, written to
//! `BENCH_PR7.json` at the repo root.
//!
//! ```text
//! cargo run --release -p catdet-bench --bin parallel_snapshot           # measure + write
//! cargo run --release -p catdet-bench --bin parallel_snapshot -- \
//!     --check BENCH_PR7.json                                            # measure + regression-gate
//! CATDET_BENCH_QUICK=1 ... parallel_snapshot                            # CI smoke sizes
//! ```
//!
//! Three claims, three sections:
//!
//! * **determinism** — an 8-shard fleet advanced by a thread pool is
//!   **bit-identical** to the sequential loop (report equality over
//!   outputs, latencies, batch logs, timelines). Machine-independent;
//!   gated unconditionally.
//! * **speedup / realtime** — wall-clock figures: threaded-vs-sequential
//!   wall speedup at 8 shards, and a 64-shard × 1000-stream fleet's
//!   virtual-seconds-per-wall-second factor. Both depend on
//!   `host_cpus`, which the snapshot records; `--check` applies wall
//!   gates **only when the current host has at least the parallelism the
//!   baseline was captured on** (a 1-core container cannot 3× an 8-shard
//!   fleet, and silently passing a vacuous gate would be worse than
//!   skipping it loudly).
//! * **geom** — batch-IoU over 8-wide lanes agrees bit-for-bit with the
//!   pinned scalar reference (gated unconditionally) and its wall
//!   speedup is reported.

use catdet_geom::{Box2, LaneBoxes};
use catdet_serve::{
    bursty_workload, serve_fleet, BurstProfile, FleetReport, ServeConfig, ShardConfig, StreamSpec,
    SystemKind,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct DeterminismSection {
    shards: usize,
    /// Thread counts compared against the sequential run (0 = auto).
    threads_compared: Vec<usize>,
    /// Every threaded report equalled the sequential one bit for bit.
    identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct SpeedupSection {
    shards: usize,
    threads: usize,
    wall_sequential_s: f64,
    wall_threaded_s: f64,
    /// `wall_sequential_s / wall_threaded_s` — only meaningful when
    /// `host_cpus` offers real parallelism.
    wall_speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct RealtimeSection {
    shards: usize,
    streams: usize,
    frames_processed: usize,
    /// Virtual seconds the fleet simulated.
    virtual_makespan_s: f64,
    wall_s: f64,
    /// Virtual seconds simulated per wall second; > 1 means the fleet
    /// runs faster than real time.
    realtime_factor: f64,
}

#[derive(Debug, Clone, Serialize)]
struct GeomSection {
    boxes: usize,
    queries: usize,
    scalar_wall_s: f64,
    simd_wall_s: f64,
    simd_wall_speedup: f64,
    /// Lane kernels matched the scalar reference bit for bit.
    bit_equal: bool,
}

#[derive(Debug, Clone, Serialize)]
struct ParallelSnapshot {
    schema: String,
    quick: bool,
    /// `std::thread::available_parallelism()` on the capture host — the
    /// context every wall figure must be read in.
    host_cpus: usize,
    determinism: DeterminismSection,
    speedup: SpeedupSection,
    realtime: RealtimeSection,
    geom: GeomSection,
}

fn quick_mode() -> bool {
    std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The 8-shard workload for the determinism and speedup sections: a
/// bursty fleet with live rebalancing, real CaTDet pipelines.
fn eight_shard_workload(quick: bool) -> (impl Fn() -> Vec<StreamSpec>, ServeConfig) {
    let (streams, frames) = if quick { (16, 12) } else { (32, 40) };
    let build = move || {
        bursty_workload(
            streams,
            frames,
            2019,
            SystemKind::CatdetA,
            BurstProfile::demo(),
        )
    };
    let cfg = ServeConfig::new()
        .with_workers(1)
        .with_max_batch(4)
        .with_queue_capacity(64)
        .with_shard(
            ShardConfig::sharded(8)
                .with_rebalance_interval_s(0.1)
                .with_migration_cost_frames(4),
        );
    (build, cfg)
}

fn timed_fleet(build: &impl Fn() -> Vec<StreamSpec>, cfg: &ServeConfig) -> (FleetReport, f64) {
    let streams = build();
    let t0 = Instant::now();
    let report = serve_fleet(streams, cfg);
    (report, t0.elapsed().as_secs_f64())
}

fn measure_determinism_and_speedup(quick: bool) -> (DeterminismSection, SpeedupSection) {
    let (build, cfg) = eight_shard_workload(quick);
    let (sequential, wall_seq) = timed_fleet(&build, &cfg.with_shard(cfg.shard.with_threads(1)));
    let threads_compared = vec![2, 0];
    let mut identical = true;
    let mut wall_threaded = f64::INFINITY;
    for &threads in &threads_compared {
        let (threaded, wall) =
            timed_fleet(&build, &cfg.with_shard(cfg.shard.with_threads(threads)));
        identical &= threaded == sequential;
        // `0` resolves to every host core — that run is the speedup probe.
        if threads == 0 {
            wall_threaded = wall;
        }
    }
    println!(
        "[determinism] 8 shards, threads {threads_compared:?} vs sequential: {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    let speedup = SpeedupSection {
        shards: 8,
        threads: host_cpus().min(8),
        wall_sequential_s: wall_seq,
        wall_threaded_s: wall_threaded,
        wall_speedup: wall_seq / wall_threaded.max(1e-12),
    };
    println!(
        "[speedup] sequential {:.3}s vs threaded {:.3}s -> {:.2}x on {} cpu(s)",
        speedup.wall_sequential_s,
        speedup.wall_threaded_s,
        speedup.wall_speedup,
        host_cpus()
    );
    (
        DeterminismSection {
            shards: 8,
            threads_compared,
            identical,
        },
        speedup,
    )
}

/// The headline: a 64-shard, 1000-stream city-scale fleet, simulated
/// end to end. Low camera rates (the quiet/burst profile of a parking
/// or surveillance deployment) stretch virtual time, which is exactly
/// the regime the virtual-time engine exists for: the simulation covers
/// minutes of fleet time in seconds of wall time.
fn measure_realtime(quick: bool) -> RealtimeSection {
    let (shards, streams, frames) = if quick { (16, 128, 6) } else { (64, 1000, 12) };
    let profile = BurstProfile {
        quiet_fps: 0.5,
        burst_fps: 4.0,
        ..BurstProfile::demo()
    };
    let cfg = ServeConfig::new()
        .with_workers(1)
        .with_max_batch(4)
        .with_queue_capacity(64)
        .with_shard(
            ShardConfig::sharded(shards)
                .with_rebalance_interval_s(0.5)
                .with_migration_cost_frames(4)
                .with_threads(0),
        );
    let specs = bursty_workload(streams, frames, 2019, SystemKind::CatdetA, profile);
    let t0 = Instant::now();
    let report = serve_fleet(specs, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    let makespan = report.makespan_s();
    let section = RealtimeSection {
        shards,
        streams,
        frames_processed: report.frames_processed(),
        virtual_makespan_s: makespan,
        wall_s: wall,
        realtime_factor: makespan / wall.max(1e-12),
    };
    println!(
        "[realtime] {shards} shards x {streams} streams: {:.1} virtual s in {:.2} wall s -> {:.1}x real time",
        section.virtual_makespan_s, section.wall_s, section.realtime_factor
    );
    section
}

/// Deterministic pseudo-random boxes without any RNG dependency.
fn synthetic_boxes(n: usize) -> Vec<Box2> {
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / 16777216.0 // [0, 1)
    };
    (0..n)
        .map(|_| {
            let x = next() * 1200.0;
            let y = next() * 370.0;
            Box2::from_xywh(x, y, 4.0 + next() * 120.0, 4.0 + next() * 60.0)
        })
        .collect()
}

fn measure_geom(quick: bool) -> GeomSection {
    let (boxes, queries, reps) = if quick { (512, 64, 8) } else { (4096, 256, 24) };
    let set = synthetic_boxes(boxes);
    let mut lanes = LaneBoxes::new();
    lanes.build(set.len(), |i| set[i]);
    let qset = synthetic_boxes(queries);
    let mut out = Vec::new();
    let mut reference = Vec::new();

    let mut bit_equal = true;
    let mut scalar_wall = 0.0;
    let mut simd_wall = 0.0;
    let mut sink = 0.0f32;
    for _ in 0..reps {
        for q in &qset {
            let t0 = Instant::now();
            lanes.iou_into_scalar(q, &mut reference);
            scalar_wall += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            lanes.iou_into(q, &mut out);
            simd_wall += t0.elapsed().as_secs_f64();
            bit_equal &= out.len() == reference.len()
                && out
                    .iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            sink += out.last().copied().unwrap_or(0.0);
        }
    }
    std::hint::black_box(sink);
    let section = GeomSection {
        boxes,
        queries: queries * reps,
        scalar_wall_s: scalar_wall,
        simd_wall_s: simd_wall,
        simd_wall_speedup: scalar_wall / simd_wall.max(1e-12),
        bit_equal,
    };
    println!(
        "[geom] batch IoU over {} boxes x {} queries: scalar {:.4}s vs lanes {:.4}s -> {:.2}x, {}",
        section.boxes,
        section.queries,
        section.scalar_wall_s,
        section.simd_wall_s,
        section.simd_wall_speedup,
        if section.bit_equal {
            "bit-equal"
        } else {
            "DIVERGED"
        }
    );
    section
}

/// Pulls `"field": <number>` scoped to the first occurrence after
/// `section` (the vendored serde stack has no deserializer; the format
/// is ours and stable).
fn extract_number(json: &str, section: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let f = tail.find(&format!("\"{field}\""))?;
    let tail = &tail[f..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_bool(json: &str, section: &str, field: &str) -> Option<bool> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let f = tail.find(&format!("\"{field}\""))?;
    let tail = &tail[f..];
    let colon = tail.find(':')?;
    Some(tail[colon + 1..].trim_start().starts_with("true"))
}

fn check_against(path: &str, snap: &ParallelSnapshot) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    // Bit-equality gates are machine-independent: they hold everywhere,
    // always, and a capture that ever recorded a divergence is itself a
    // broken baseline.
    if !snap.determinism.identical {
        return Err("threaded fleet diverged from the sequential reference".into());
    }
    if extract_bool(&text, "determinism", "identical") != Some(true) {
        return Err("baseline recorded a non-identical threaded fleet — reject it".into());
    }
    if !snap.geom.bit_equal {
        return Err("SIMD batch IoU diverged from the scalar reference".into());
    }
    if extract_bool(&text, "geom", "bit_equal") != Some(true) {
        return Err("baseline recorded non-bit-equal SIMD kernels — reject it".into());
    }

    // Wall-clock gates only bind when this host has at least the
    // parallelism the baseline was captured with; anything else compares
    // a 1-core container to a many-core capture host.
    let base_cpus = extract_number(&text, "schema", "host_cpus").unwrap_or(1.0) as usize;
    let cpus = host_cpus();
    let prev_quick = text.contains("\"quick\": true");
    let same_mode = prev_quick == snap.quick;
    if cpus < base_cpus || !same_mode {
        println!(
            "[check] wall gates skipped: host_cpus {cpus} vs baseline {base_cpus}, \
             same_mode={same_mode} (bit-equality gates still applied)"
        );
        return Ok(());
    }
    // The speedup section needs real parallelism to mean anything at all:
    // on one core the threaded and sequential runs race the same core and
    // the ratio is measurement noise around 1.0.
    if cpus >= 2 {
        let prev_speedup = extract_number(&text, "speedup", "wall_speedup")
            .ok_or("baseline JSON lacks speedup.wall_speedup")?;
        if snap.speedup.wall_speedup < 0.8 * prev_speedup {
            return Err(format!(
                "8-shard wall speedup regressed: {:.2}x now vs {:.2}x in baseline",
                snap.speedup.wall_speedup, prev_speedup
            ));
        }
    } else {
        println!("[check] wall-speedup gate skipped on a 1-cpu host (ratio is noise)");
    }
    let prev_rt = extract_number(&text, "realtime", "realtime_factor")
        .ok_or("baseline JSON lacks realtime.realtime_factor")?;
    if snap.realtime.realtime_factor < 1.0 {
        return Err(format!(
            "64-shard fleet fell below real time: {:.2}x",
            snap.realtime.realtime_factor
        ));
    }
    if snap.realtime.realtime_factor < 0.5 * prev_rt {
        return Err(format!(
            "realtime factor collapsed: {:.1}x now vs {:.1}x in baseline",
            snap.realtime.realtime_factor, prev_rt
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());

    let quick = quick_mode();
    println!(
        "parallel_snapshot ({} mode) on {} cpu(s)",
        if quick { "quick" } else { "full" },
        host_cpus()
    );

    let (determinism, speedup) = measure_determinism_and_speedup(quick);
    let realtime = measure_realtime(quick);
    let geom = measure_geom(quick);

    let snapshot = ParallelSnapshot {
        schema: "catdet-parallel-snapshot/v1".to_string(),
        quick,
        host_cpus: host_cpus(),
        determinism,
        speedup,
        realtime,
        geom,
    };
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot");
            println!("[saved {out_path}]");
        }
        Err(e) => {
            eprintln!("error: cannot serialize snapshot: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = check_path {
        match check_against(&path, &snapshot) {
            Ok(()) => println!("[check] OK — no regression vs {path}"),
            Err(msg) => {
                eprintln!("[check] FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
