//! Regenerates Table 7 (Appendix I): measured execution time on the
//! Titan X timing model with greedy region merging.

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading("Table 7", "GPU-platform timing (linear model + merging)");
    println!(
        "{:28} {:>9} {:>9} | {:>9} {:>9}",
        "system", "total (s)", "paper", "GPU (s)", "paper"
    );
    let rows = experiments::table7(scale);
    for r in &rows {
        println!(
            "{:28} {:>9.3} {:>9.3} | {:>9.3} {:>9.3}",
            r.system, r.total_s, r.paper.0, r.gpu_s, r.paper.1
        );
    }
    tables::save_json("table7", &rows);
}
