//! Calibration dashboard: single-model accuracy/delay vs. paper targets.
//!
//! Run while tuning `catdet_detector::zoo` constants:
//!
//! ```text
//! CATDET_QUICK=1 cargo run --release -p catdet-bench --bin calibrate
//! ```

use catdet_bench::Scale;
use catdet_core::{evaluate_collected, run_collect, SingleModelSystem};
use catdet_data::Difficulty;
use catdet_detector::zoo;

fn main() {
    let scale = Scale::from_env();
    let ds = scale.kitti();
    println!(
        "KITTI-like: {} sequences x {} frames, {} annotations",
        ds.sequences().len(),
        ds.sequences()[0].len(),
        ds.labeled_annotations()
    );
    println!(
        "{:12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "mAP(M)", "tgt", "mAP(H)", "tgt", "mD@.8(H)", "tgt"
    );
    let targets: Vec<(catdet_detector::DetectorModel, f64, f64, f64)> = vec![
        (zoo::resnet50(2), 0.812, 0.740, 3.3),
        (zoo::vgg16(2), f64::NAN, 0.742, 4.2),
        (zoo::resnet18(2), f64::NAN, 0.687, 5.9),
        (zoo::resnet10a(2), f64::NAN, 0.606, 10.9),
        (zoo::resnet10b(2), f64::NAN, 0.564, 13.4),
        (zoo::resnet10c(2), f64::NAN, 0.542, 15.4),
        (zoo::retinanet_resnet50(2), 0.773, f64::NAN, f64::NAN),
    ];
    for (model, tgt_m, tgt_h, tgt_d) in targets {
        let name = model.name.clone();
        let mut sys = SingleModelSystem::new(model, 1242.0, 375.0);
        let r = run_collect(&mut sys, &ds);
        let moderate = evaluate_collected(&r, &ds, Difficulty::Moderate);
        let hard = evaluate_collected(&r, &ds, Difficulty::Hard);
        let d_hard = hard
            .mean_delay_at_precision(0.8)
            .map(|d| d.mean)
            .unwrap_or(f64::NAN);
        println!(
            "{:12} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.2} {:>9.2}",
            name,
            moderate.map(),
            tgt_m,
            hard.map(),
            tgt_h,
            d_hard,
            tgt_d
        );
    }
}
