//! Regenerates Figure 7: recall and delay as functions of precision for
//! the Car and Pedestrian classes (CaTDet-A, KITTI, Hard).

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading("Figure 7", "recall/delay vs precision per class");
    let curves = experiments::fig7(scale);
    for (name, curve) in [("Car", &curves.car), ("Pedestrian", &curves.pedestrian)] {
        println!("--- {name} ---");
        println!(
            "{:>10} {:>10} {:>10} {:>10}",
            "precision", "recall", "delay", "threshold"
        );
        for p in curve.iter().filter(|p| p.precision >= 0.5) {
            println!(
                "{:>10.3} {:>10.3} {:>10.2} {:>10.3}",
                p.precision, p.recall, p.delay, p.threshold
            );
        }
    }
    tables::save_json("fig7", &curves);
}
