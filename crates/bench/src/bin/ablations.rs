//! Design-choice ablations beyond the paper's tables:
//!
//! * motion model — the paper's exponential decay vs. SORT's Kalman
//!   filter vs. no motion at all (§4.1's design decision),
//! * refinement margin — the 30 px context margin vs. a sweep (§4.3),
//! * track lifetime — adaptive confidence vs. a fixed single-miss budget,
//! * region merging — Appendix I's greedy merging vs. per-region launches.

use catdet_bench::{tables, Scale};
use catdet_core::{
    evaluate_collected, run_collect, CaTDetSystem, DetectionSystem, GpuTimingModel, SystemConfig,
};
use catdet_data::Difficulty;
use catdet_detector::zoo;
use catdet_geom::Box2;
use catdet_nn::presets;
use catdet_track::{MotionModelKind, TrackerConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationRow {
    variant: String,
    gops: f64,
    map_hard: f64,
    md08_hard: Option<f64>,
}

fn measure(system: &mut dyn DetectionSystem, ds: &catdet_data::VideoDataset) -> AblationRow {
    let run = run_collect(system, ds);
    let hard = evaluate_collected(&run, ds, Difficulty::Hard);
    AblationRow {
        variant: run.system_name.clone(),
        gops: run.mean_ops.total() / 1e9,
        map_hard: hard.map(),
        md08_hard: hard.mean_delay_at_precision(0.8).map(|d| d.mean),
    }
}

fn print_rows(label: &str, rows: &[(String, AblationRow)]) {
    println!("--- {label} ---");
    println!(
        "{:34} {:>9} {:>9} {:>10}",
        "variant", "ops (G)", "mAP(H)", "mD@0.8(H)"
    );
    for (name, r) in rows {
        println!(
            "{:34} {:>9.1} {:>9.3} {:>10.2}",
            name,
            r.gops,
            r.map_hard,
            r.md08_hard.unwrap_or(f64::NAN)
        );
    }
    println!();
}

fn main() {
    let scale = Scale::from_env();
    let ds = scale.kitti();
    tables::heading("Ablations", "design choices called out in DESIGN.md");
    let mut all: Vec<(String, AblationRow)> = Vec::new();

    // 1. Motion model.
    let mut rows = Vec::new();
    for (name, motion) in [
        ("decay eta=0.7 (paper)", MotionModelKind::Decay { eta: 0.7 }),
        ("decay eta=0.3", MotionModelKind::Decay { eta: 0.3 }),
        (
            "Kalman (SORT)",
            MotionModelKind::Kalman {
                process_noise: 0.05,
                measurement_noise: 1.0,
            },
        ),
        ("static (no motion)", MotionModelKind::Static),
    ] {
        let tracker_cfg = TrackerConfig::paper().with_motion(motion);
        let mut system = CaTDetSystem::with_tracker(
            zoo::resnet10a(2),
            zoo::resnet50(2),
            1242.0,
            375.0,
            SystemConfig::paper(),
            tracker_cfg,
        );
        rows.push((name.to_string(), measure(&mut system, &ds)));
    }
    print_rows("tracker motion model (CaTDet-A)", &rows);
    all.extend(rows);

    // 2. Refinement margin.
    let mut rows = Vec::new();
    for margin in [0.0f32, 10.0, 30.0, 60.0] {
        let mut cfg = SystemConfig::paper();
        cfg.margin = margin;
        let mut system = CaTDetSystem::new(zoo::resnet10a(2), zoo::resnet50(2), 1242.0, 375.0, cfg);
        rows.push((format!("margin {margin} px"), measure(&mut system, &ds)));
    }
    print_rows("refinement context margin (paper: 30 px)", &rows);
    all.extend(rows);

    // 3. Track lifetime: adaptive confidence (paper) vs. one-strike.
    let mut rows = Vec::new();
    for (name, max_conf, initial) in [
        ("adaptive, cap 4 (paper)", 4, 1),
        ("one-strike", 0, 0),
        ("long memory, cap 12", 12, 1),
    ] {
        let mut tracker_cfg = TrackerConfig::paper();
        tracker_cfg.max_confidence = max_conf;
        tracker_cfg.initial_confidence = initial;
        let mut system = CaTDetSystem::with_tracker(
            zoo::resnet10a(2),
            zoo::resnet50(2),
            1242.0,
            375.0,
            SystemConfig::paper(),
            tracker_cfg,
        );
        rows.push((name.to_string(), measure(&mut system, &ds)));
    }
    print_rows("track lifetime policy", &rows);
    all.extend(rows);

    // 4. Region merging (timing model): merged vs. per-region launches.
    let model = GpuTimingModel::titan_x_maxwell();
    let refine = presets::frcnn_resnet50(2);
    let trunk = refine.trunk_macs(1242, 375);
    let per_px = trunk / (1242.0 * 375.0);
    let regions: Vec<Box2> = (0..18)
        .map(|i| Box2::from_xywh(40.0 + (i * 63) as f32, 150.0, 75.0, 55.0))
        .collect();
    let (merged, workload, merged_time) =
        model.merge_regions(per_px, 1242.0, 375.0, &regions, 30.0);
    let unmerged_time: f64 = regions
        .iter()
        .map(|r| model.launch_time(per_px * r.dilate(30.0).clip(1242.0, 375.0).area() as f64))
        .sum();
    println!("--- greedy region merging (Appendix I) ---");
    println!(
        "{} regions -> {} launches; workload {:.1} G; time {:.1} ms merged vs {:.1} ms unmerged",
        regions.len(),
        merged.len(),
        workload / 1e9,
        merged_time * 1e3,
        unmerged_time * 1e3
    );

    tables::save_json("ablations", &all.iter().map(|(_, r)| r).collect::<Vec<_>>());
}
