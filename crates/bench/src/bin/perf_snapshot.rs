//! Perf snapshot: frames/s, ns/frame by stage, and allocs/frame for the
//! per-frame hot path, written to `BENCH_PR4.json` at the repo root.
//!
//! ```text
//! cargo run --release -p catdet-bench --bin perf_snapshot            # measure + write
//! cargo run --release -p catdet-bench --bin perf_snapshot -- \
//!     --check BENCH_PR4.json                                         # measure + regression-gate
//! CATDET_BENCH_QUICK=1 ... perf_snapshot                             # CI smoke sizes
//! ```
//!
//! Each pipeline scenario runs the **baseline** (the seed's monolithic
//! loop over the library's kept reference implementations: naive NMS,
//! dense tracker association, quadratic region gating, per-call pricing
//! allocations) and the **optimized** hot path (grid-indexed candidates,
//! flat Hungarian buffers, per-stream `FrameScratch`), asserts their
//! outputs are bit-identical frame by frame, and reports both. A
//! counting global allocator measures steady-state allocations per frame.
//!
//! `--check <baseline.json>`: after measuring, compare against a previous
//! snapshot — fail (exit 1) if dense-scene frames/s regressed more than
//! 20%, or if the dense speedup collapsed below 80% of the recorded one.
//! Absolute frames/s and the recorded ratio are only compared when the
//! two snapshots ran in the same mode (quick vs full); across modes only
//! a conservative machine-normalized collapse floor (1.4× dense speedup)
//! is gated, since quick mode's thinner crowd measures a structurally
//! lower ratio.

use catdet_bench::perf::{
    assert_pipelines_identical, citypersons_dataset, dense_crowd, kitti_dataset,
    mean_objects_per_frame, measure_baseline, measure_staged, AllocProbe, BaselineCatdet,
    PipelineScenario, ServeScenario, Snapshot, SnapshotScale,
};
use catdet_core::{CaTDetSystem, PresetFactory, SystemConfig, SystemKind};
use catdet_data::{StreamSource, VideoDataset};
use catdet_detector::zoo;
use catdet_serve::{serve, ServeConfig, StreamSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counting allocator: every `alloc`/`realloc` bumps the counters. The
/// numbers are process-wide (worker threads included), which is exactly
/// what "allocs per frame" should mean for a serving system.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn probe() -> AllocProbe {
    fn sample() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
    AllocProbe { sample }
}

fn catdet_for(ds: &VideoDataset) -> CaTDetSystem {
    CaTDetSystem::new(
        zoo::resnet10a(2),
        zoo::resnet50(2),
        ds.width,
        ds.height,
        SystemConfig::paper(),
    )
}

fn pipeline_scenario(name: &str, ds: &VideoDataset) -> PipelineScenario {
    println!("[{name}] verifying baseline == optimized ...");
    assert_pipelines_identical(ds, ds.width, ds.height);
    println!("[{name}] measuring baseline ...");
    let mut baseline_sys =
        BaselineCatdet::new(zoo::resnet10a(2), zoo::resnet50(2), ds.width, ds.height);
    let baseline = measure_baseline(ds, &mut baseline_sys, probe());
    println!("[{name}] measuring optimized ...");
    let mut optimized_sys = catdet_for(ds);
    let optimized = measure_staged(ds, &mut optimized_sys, probe());
    let scenario = PipelineScenario {
        mean_objects_per_frame: mean_objects_per_frame(ds),
        baseline,
        optimized,
        speedup: optimized.frames_per_s / baseline.frames_per_s.max(1e-12),
        alloc_reduction: baseline.allocs_per_frame / optimized.allocs_per_frame.max(1e-12),
    };
    println!(
        "[{name}] {:.1} obj/frame | baseline {:.1} fps, {:.0} allocs/frame | optimized {:.1} fps, {:.0} allocs/frame | speedup {:.2}x, allocs {:.1}x down",
        scenario.mean_objects_per_frame,
        baseline.frames_per_s,
        baseline.allocs_per_frame,
        optimized.frames_per_s,
        optimized.allocs_per_frame,
        scenario.speedup,
        scenario.alloc_reduction,
    );
    scenario
}

fn serve_scenario(scale: SnapshotScale) -> ServeScenario {
    let (n_streams, frames) = scale.serve;
    println!("[serve_fleet] {n_streams} streams x {frames} frames ...");
    let ds = catdet_data::kitti_like()
        .sequences(n_streams)
        .frames_per_sequence(frames)
        .build();
    let factory = Arc::new(PresetFactory::new(SystemKind::CatdetA, ds.width, ds.height));
    let streams: Vec<StreamSpec> = StreamSource::from_dataset(&ds, 0.013)
        .into_iter()
        .map(|source| StreamSpec::new(source, factory.clone()))
        .collect();
    let cfg = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let (a0, _) = (probe().sample)();
    let t0 = Instant::now();
    let report = serve(streams, &cfg);
    let wall = t0.elapsed();
    let (a1, _) = (probe().sample)();
    let processed = report.frames_processed;
    ServeScenario {
        streams: n_streams,
        frames_processed: processed,
        wall_frames_per_s: processed as f64 / wall.as_secs_f64().max(1e-12),
        virtual_throughput_fps: report.throughput_fps,
        gpu_dispatch_s: report.gpu_dispatch_s,
        allocs_per_frame: (a1 - a0) as f64 / processed.max(1) as f64,
    }
}

/// Pulls `"field": <number>` out of our own snapshot JSON (the vendored
/// serde stack has no deserializer; the format is ours and stable).
fn extract_number(json: &str, section: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let f = tail.find(&format!("\"{field}\""))?;
    let tail = &tail[f..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_bool(json: &str, field: &str) -> Option<bool> {
    let f = json.find(&format!("\"{field}\""))?;
    let tail = &json[f..];
    let colon = tail.find(':')?;
    Some(tail[colon + 1..].trim_start().starts_with("true"))
}

fn check_against(baseline_path: &str, current: &Snapshot) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let prev_quick = extract_bool(&text, "quick").unwrap_or(false);
    let prev_speedup = extract_number(&text, "dense_pipeline", "speedup")
        .ok_or("baseline JSON lacks dense_pipeline.speedup")?;
    let cur = &current.dense_pipeline;
    // Across modes the scenario sizes differ (quick mode runs a thinner
    // crowd, where the measured speedup is structurally lower and shared
    // CI runners add noise), so only a conservative collapse floor is
    // gated: losing the grid/decomposition paths drops the ratio to ~1x,
    // well below 1.4. Same-mode runs gate against the recorded ratio.
    let speedup_floor = if prev_quick == current.quick {
        0.8 * prev_speedup
    } else {
        1.4
    };
    if cur.speedup < speedup_floor {
        return Err(format!(
            "dense speedup regressed: {:.2}x now vs floor {:.2}x (baseline recorded {:.2}x)",
            cur.speedup, speedup_floor, prev_speedup
        ));
    }
    if prev_quick == current.quick {
        // `dense_pipeline` is serialized first, so the file's first
        // "optimized" object is the dense scenario's.
        let prev_opt_fps = extract_number(&text, "optimized", "frames_per_s");
        if let Some(prev_opt_fps) = prev_opt_fps {
            if cur.optimized.frames_per_s < 0.8 * prev_opt_fps {
                return Err(format!(
                    "dense optimized frames/s regressed: {:.1} now vs {:.1} in baseline (>20% drop)",
                    cur.optimized.frames_per_s, prev_opt_fps
                ));
            }
        }
    } else {
        println!(
            "[check] baseline mode (quick={prev_quick}) differs from current (quick={}); \
             gating on speedup ratio only",
            current.quick
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let scale = SnapshotScale::from_env();
    let quick = std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
    println!(
        "perf_snapshot ({} mode)",
        if quick { "quick" } else { "full" }
    );

    let dense = dense_crowd(scale.dense.0, scale.dense.1, scale.dense.2);
    let kitti = kitti_dataset(scale);
    let citypersons = citypersons_dataset(scale);

    let snapshot = Snapshot {
        schema: "catdet-perf-snapshot/v1".to_string(),
        quick,
        dense_pipeline: pipeline_scenario("dense_pipeline", &dense),
        kitti_pipeline: pipeline_scenario("kitti_pipeline", &kitti),
        citypersons_pipeline: pipeline_scenario("citypersons_pipeline", &citypersons),
        serve_fleet: serve_scenario(scale),
    };

    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot");
            println!("[saved {out_path}]");
        }
        Err(e) => {
            eprintln!("error: cannot serialize snapshot: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = check_path {
        match check_against(&path, &snapshot) {
            Ok(()) => println!("[check] OK — no regression vs {path}"),
            Err(msg) => {
                eprintln!("[check] FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
