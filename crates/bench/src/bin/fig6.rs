//! Regenerates Figure 6: mAP and mD@0.8 (Hard) vs. the proposal network's
//! output threshold, with and without the tracker.

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading(
        "Figure 6",
        "C-thresh sweep x {Res10a, Res10c, Res18} x {with, without tracker}",
    );
    let points = experiments::fig6(scale);
    println!(
        "{:12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "model", "tracker", "C-thresh", "mAP(H)", "mD@0.8(H)", "ops (G)"
    );
    for p in &points {
        println!(
            "{:12} {:>9} {:>9.2} {:>9.3} {:>9.2} {:>9.1}",
            p.model,
            if p.tracker { "with" } else { "without" },
            p.c_thresh,
            p.map_hard,
            p.md08_hard.unwrap_or(f64::NAN),
            p.gops
        );
    }
    // The paper's qualitative claims, checked on the spot:
    let with: Vec<_> = points.iter().filter(|p| p.tracker).collect();
    let without: Vec<_> = points.iter().filter(|p| !p.tracker).collect();
    let spread = |pts: &[&experiments::Fig6Point]| {
        let maps: Vec<f64> = pts.iter().map(|p| p.map_hard).collect();
        maps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - maps.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    println!();
    println!(
        "mAP spread across sweep: with tracker {:.3}, without {:.3} (paper: flat vs sensitive)",
        spread(&with),
        spread(&without)
    );
    tables::save_json("fig6", &points);
}
