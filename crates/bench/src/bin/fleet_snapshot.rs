//! Fleet scaling snapshot: the 1→8 shard scaling curve of the sharded
//! serving fleet on the step and bursty workloads, written to
//! `BENCH_PR5.json` at the repo root.
//!
//! ```text
//! cargo run --release -p catdet-bench --bin fleet_snapshot            # measure + write
//! cargo run --release -p catdet-bench --bin fleet_snapshot -- \
//!     --check BENCH_PR5.json                                          # measure + regression-gate
//! CATDET_BENCH_QUICK=1 ... fleet_snapshot                             # CI smoke sizes
//! ```
//!
//! Every figure except `wall_s` is **virtual-time** and therefore
//! machine-independent and bit-deterministic for a given mode: the same
//! binary produces the same curve on any host, so the `--check` gate can
//! be tight. Each point serves the same workload on a fleet of
//! 1/2/4/8 shards (one worker per shard, live rebalancing on), so the
//! curve isolates what the partition layer adds over a single scheduler.
//!
//! `--check <baseline.json>`: after measuring, fail (exit 1) if the
//! 8-vs-1-shard throughput ratio on either workload collapsed below 80%
//! of the recorded one, or — same-mode only — if any per-point virtual
//! throughput regressed more than 20%.

use catdet_serve::{
    bursty_workload, serve_fleet, step_workload, BurstProfile, ServeConfig, ShardConfig,
    StreamSpec, SystemKind,
};
use serde::Serialize;
use std::time::Instant;

/// One measured fleet configuration.
#[derive(Debug, Clone, Copy, Serialize)]
struct FleetPoint {
    /// Scheduler shards (one worker each).
    shards: usize,
    /// Frames processed across the fleet.
    frames_processed: usize,
    /// Fleet drop rate over arrived frames.
    drop_rate: f64,
    /// Virtual-time throughput (frames / fleet makespan).
    virtual_throughput_fps: f64,
    /// Fleet makespan in virtual seconds.
    makespan_s: f64,
    /// Merged (pooled nearest-rank) p99 latency, virtual seconds.
    merged_p99_s: f64,
    /// Provisioned worker-seconds summed over shards.
    worker_seconds: f64,
    /// Live migrations performed by the rebalancer.
    migrations: usize,
    /// Real wall-clock seconds for the run (machine-dependent).
    wall_s: f64,
}

/// One workload's 1→8 shard scaling curve.
#[derive(Debug, Clone, Serialize)]
struct ScalingCurve {
    workload: String,
    points: Vec<FleetPoint>,
    /// `virtual_throughput(8 shards) / virtual_throughput(1 shard)` — the
    /// headline scaling figure the CI gate watches.
    speedup_8v1: f64,
}

#[derive(Debug, Clone, Serialize)]
struct FleetSnapshot {
    schema: String,
    quick: bool,
    step: ScalingCurve,
    bursty: ScalingCurve,
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn scale() -> (usize, usize) {
    if quick_mode() {
        (8, 24)
    } else {
        (16, 60)
    }
}

fn quick_mode() -> bool {
    std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn curve(name: &str, build: impl Fn() -> Vec<StreamSpec>) -> ScalingCurve {
    let mut points = Vec::new();
    for shards in SHARD_COUNTS {
        // One worker per shard: the curve measures the partition layer,
        // not intra-shard parallelism. Bounded queues keep overload
        // honest; rebalancing is on so skewed placements self-correct.
        let cfg = ServeConfig::new()
            .with_workers(1)
            .with_max_batch(4)
            .with_queue_capacity(32)
            .with_shard(
                ShardConfig::sharded(shards)
                    .with_rebalance_interval_s(0.1)
                    .with_migration_cost_frames(4),
            );
        let t0 = Instant::now();
        let report = serve_fleet(build(), &cfg);
        let wall = t0.elapsed().as_secs_f64();
        let point = FleetPoint {
            shards,
            frames_processed: report.frames_processed(),
            drop_rate: report.drop_rate(),
            virtual_throughput_fps: report.throughput_fps(),
            makespan_s: report.makespan_s(),
            merged_p99_s: report.merged_latency().map_or(0.0, |l| l.p99_s),
            worker_seconds: report.worker_seconds(),
            migrations: report.migrations.len(),
            wall_s: wall,
        };
        println!(
            "[{name}] {shards} shard(s): {:.2} virtual fps | drop {:.1}% | p99 {:.0} ms | {} migrations",
            point.virtual_throughput_fps,
            100.0 * point.drop_rate,
            point.merged_p99_s * 1e3,
            point.migrations,
        );
        points.push(point);
    }
    let speedup_8v1 =
        points.last().unwrap().virtual_throughput_fps / points[0].virtual_throughput_fps.max(1e-12);
    println!("[{name}] 8-vs-1-shard speedup: {speedup_8v1:.2}x");
    ScalingCurve {
        workload: name.to_string(),
        points,
        speedup_8v1,
    }
}

/// Pulls `"field": <number>` out of our own snapshot JSON, scoped to the
/// first occurrence after `section` (the vendored serde stack has no
/// deserializer; the format is ours and stable).
fn extract_number(json: &str, section: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let f = tail.find(&format!("\"{field}\""))?;
    let tail = &tail[f..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_bool(json: &str, field: &str) -> Option<bool> {
    let f = json.find(&format!("\"{field}\""))?;
    let tail = &json[f..];
    let colon = tail.find(':')?;
    Some(tail[colon + 1..].trim_start().starts_with("true"))
}

/// Collects up to `count` successive `field` values after `section` — the
/// per-point sweep of one curve (points serialize in shard order, and
/// each curve carries exactly `SHARD_COUNTS.len()` of them before the
/// next section begins).
fn extract_numbers(json: &str, section: &str, field: &str, count: usize) -> Vec<f64> {
    let Some(sec) = json.find(&format!("\"{section}\"")) else {
        return Vec::new();
    };
    let mut tail = &json[sec..];
    let mut out = Vec::new();
    while out.len() < count {
        let Some(f) = tail.find(&format!("\"{field}\"")) else {
            break;
        };
        let rest = &tail[f..];
        let Some(colon) = rest.find(':') else { break };
        let rest = &rest[colon + 1..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| {
                !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
            })
            .unwrap_or(trimmed.len());
        match trimmed[..end].parse() {
            Ok(v) => out.push(v),
            Err(_) => break,
        }
        tail = rest;
    }
    out
}

fn check_curve(text: &str, same_mode: bool, current: &ScalingCurve) -> Result<(), String> {
    let prev_speedup = extract_number(text, &current.workload, "speedup_8v1")
        .ok_or_else(|| format!("baseline JSON lacks {}.speedup_8v1", current.workload))?;
    // Same-mode runs gate against the recorded ratio; across modes the
    // workload sizes differ (quick mode's 8 streams cap what 8 shards can
    // do), so only a conservative collapse floor is gated — losing the
    // partition layer drops the ratio to ~1x, far below 2.
    let floor = if same_mode { 0.8 * prev_speedup } else { 2.0 };
    if current.speedup_8v1 < floor {
        return Err(format!(
            "{} scaling collapsed: {:.2}x now vs {:.2}x recorded (floor {:.2}x)",
            current.workload, current.speedup_8v1, prev_speedup, floor
        ));
    }
    if same_mode {
        // Virtual throughput is machine-independent, so same-mode runs
        // gate every point of the curve directly (20% slack covers
        // legitimate scheduler changes).
        let prev = extract_numbers(
            text,
            &current.workload,
            "virtual_throughput_fps",
            current.points.len(),
        );
        if prev.len() != current.points.len() {
            // A truncated or schema-drifted baseline must fail loudly, not
            // silently gate fewer points.
            return Err(format!(
                "baseline JSON has {} {} per-point virtual_throughput_fps values, expected {}",
                prev.len(),
                current.workload,
                current.points.len()
            ));
        }
        for (point, &prev_fps) in current.points.iter().zip(&prev) {
            if point.virtual_throughput_fps < 0.8 * prev_fps {
                return Err(format!(
                    "{} {}-shard virtual throughput regressed: {:.2} now vs {:.2} in baseline (>20% drop)",
                    current.workload, point.shards, point.virtual_throughput_fps, prev_fps
                ));
            }
        }
    }
    Ok(())
}

fn check_against(path: &str, snapshot: &FleetSnapshot) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let prev_quick = extract_bool(&text, "quick").unwrap_or(false);
    let same_mode = prev_quick == snapshot.quick;
    if !same_mode {
        println!(
            "[check] baseline mode (quick={prev_quick}) differs from current (quick={}); \
             gating on scaling ratios only",
            snapshot.quick
        );
    }
    check_curve(&text, same_mode, &snapshot.step)?;
    check_curve(&text, same_mode, &snapshot.bursty)?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    let quick = quick_mode();
    let (streams, frames) = scale();
    println!(
        "fleet_snapshot ({} mode): {streams} streams x {frames} frames",
        if quick { "quick" } else { "full" }
    );

    // The step workload: the fleet idles, then every camera jumps to its
    // burst rate and stays there — sustained overload that a bigger fleet
    // absorbs. The bursty workload cycles quiet/stampede phases.
    let step = curve("step", || {
        step_workload(
            streams,
            frames,
            2019,
            SystemKind::CatdetA,
            BurstProfile::demo(),
            1.0,
        )
    });
    let bursty = curve("bursty", || {
        bursty_workload(
            streams,
            frames,
            2019,
            SystemKind::CatdetA,
            BurstProfile::demo(),
        )
    });

    let snapshot = FleetSnapshot {
        schema: "catdet-fleet-snapshot/v1".to_string(),
        quick,
        step,
        bursty,
    };
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot");
            println!("[saved {out_path}]");
        }
        Err(e) => {
            eprintln!("error: cannot serialize snapshot: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = check_path {
        match check_against(&path, &snapshot) {
            Ok(()) => println!("[check] OK — no regression vs {path}"),
            Err(msg) => {
                eprintln!("[check] FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
