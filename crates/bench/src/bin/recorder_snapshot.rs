//! Recorder overhead snapshot: wall-clock cost of flight recording on a
//! sharded fleet run, written to `BENCH_PR6.json` at the repo root.
//!
//! ```text
//! cargo run --release -p catdet-bench --bin recorder_snapshot          # measure + write
//! cargo run --release -p catdet-bench --bin recorder_snapshot -- \
//!     --check BENCH_PR6.json                                           # measure + regression-gate
//! CATDET_BENCH_QUICK=1 ... recorder_snapshot                           # CI smoke sizes
//! ```
//!
//! The recorder's contract is two-sided: it must not *perturb* the run
//! (recorded and unrecorded reports are bit-identical — asserted here on
//! every measurement), and it must not meaningfully *slow* it. Wall time
//! is machine-dependent, so each arm takes the minimum over many short
//! interleaved repetitions (run until both minima stop improving), and
//! gated invocations re-measure up to twice before failing; the
//! virtual-time figures and the store's encoded size are deterministic.
//!
//! `--check <baseline.json>`: after measuring, fail (exit 1) if recording
//! overhead exceeds the 5% budget, or if the store's encoded bytes per
//! event grew more than 50% over the recorded baseline (a codec
//! regression; the figure is deterministic per mode).

use catdet_serve::{
    bursty_workload, serve_fleet, serve_fleet_with_recorder, BurstProfile, ServeConfig,
    ShardConfig, SharedRecorder, StreamSpec, SystemKind,
};
use serde::Serialize;
use std::time::Instant;

/// The overhead budget recording must stay within, in percent.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

#[derive(Debug, Clone, Serialize)]
struct RecorderSnapshot {
    schema: String,
    quick: bool,
    streams: usize,
    frames_per_stream: usize,
    repetitions: usize,
    /// Fastest unrecorded run, wall seconds (machine-dependent).
    unrecorded_wall_s: f64,
    /// Fastest fully-recorded run (snapshots included), wall seconds.
    recorded_wall_s: f64,
    /// `(recorded_wall_s / unrecorded_wall_s - 1) * 100` over the two
    /// arms' fastest runs — the figure the CI gate watches. External noise
    /// only ever slows a run down, so the minimum over many short
    /// alternating runs estimates each arm's true floor and their ratio
    /// the true overhead.
    overhead_pct: f64,
    /// Whether every recorded run's report was bit-identical to the
    /// unrecorded reference (must be true).
    reports_identical: bool,
    /// Events booked by one recorded run (deterministic per mode).
    events: usize,
    /// Snapshots captured by one recorded run.
    snapshots: usize,
    /// Encoded store size of one recorded run, bytes.
    encoded_bytes: usize,
    /// `encoded_bytes / events` — the codec-efficiency figure the gate
    /// watches against the baseline.
    bytes_per_event: f64,
}

fn quick_mode() -> bool {
    std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn scale() -> (usize, usize, usize, usize) {
    // (streams, frames per stream, min reps, max reps per arm). Many short
    // runs beat few long ones on shared hosts: a short run is far more
    // likely to land wholly inside a quiet slice, so each arm's minimum
    // converges to its true noise-free floor. The rep count is adaptive —
    // see STABLE_REPS. Quick mode keeps the run shape (shrinking a run
    // stops amortizing per-run recorder setup and inflates the relative
    // overhead) and economizes on repetitions instead.
    if quick_mode() {
        (16, 120, 9, 48)
    } else {
        (16, 120, 15, 80)
    }
}

/// Stop once neither arm's minimum has improved (by more than 0.5%) for
/// this many consecutive repetitions — the floors have converged. A noise
/// burst covering a whole fixed-size rep budget would otherwise inflate
/// one arm's minimum; running until convergence rides the burst out.
const STABLE_REPS: usize = 8;

fn workload(streams: usize, frames: usize) -> Vec<StreamSpec> {
    bursty_workload(
        streams,
        frames,
        2019,
        SystemKind::CatdetA,
        BurstProfile::demo(),
    )
}

fn config() -> ServeConfig {
    ServeConfig::new()
        .with_workers(1)
        .with_max_batch(4)
        .with_queue_capacity(10_000)
        .with_shard(
            ShardConfig::sharded(4)
                .with_rebalance_interval_s(0.1)
                .with_migration_cost_frames(4),
        )
}

/// Pulls `"field": <number>` out of our own snapshot JSON (the vendored
/// serde stack has no deserializer; the format is ours and stable).
fn extract_number(json: &str, field: &str) -> Option<f64> {
    let f = json.find(&format!("\"{field}\""))?;
    let tail = &json[f..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_bool(json: &str, field: &str) -> Option<bool> {
    let f = json.find(&format!("\"{field}\""))?;
    let tail = &json[f..];
    let colon = tail.find(':')?;
    Some(tail[colon + 1..].trim_start().starts_with("true"))
}

fn check_against(path: &str, snapshot: &RecorderSnapshot) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !snapshot.reports_identical {
        return Err("recording perturbed the run: recorded report != unrecorded report".into());
    }
    if snapshot.overhead_pct > OVERHEAD_BUDGET_PCT {
        return Err(format!(
            "recording overhead {:.2}% exceeds the {OVERHEAD_BUDGET_PCT:.0}% budget \
             (unrecorded {:.3} s, recorded {:.3} s)",
            snapshot.overhead_pct, snapshot.unrecorded_wall_s, snapshot.recorded_wall_s
        ));
    }
    // Encoded size per event is deterministic for a given mode; gate it
    // against the baseline only when modes match.
    let prev_quick = extract_bool(&text, "quick").unwrap_or(false);
    if prev_quick == snapshot.quick {
        let prev_bpe = extract_number(&text, "bytes_per_event")
            .ok_or_else(|| "baseline JSON lacks bytes_per_event".to_string())?;
        if snapshot.bytes_per_event > 1.5 * prev_bpe {
            return Err(format!(
                "encoded bytes per event grew {:.2} -> {:.2} (>50%): codec regression",
                prev_bpe, snapshot.bytes_per_event
            ));
        }
    } else {
        println!(
            "[check] baseline mode (quick={prev_quick}) differs from current (quick={}); \
             gating overhead budget only",
            snapshot.quick
        );
    }
    Ok(())
}

/// One full measurement: both arms to convergence, minima compared.
///
/// Wall-clock discipline: one untimed warm-up of each arm (first runs
/// pay page faults and allocator growth), then timed reps with the arm
/// order alternating so frequency/thermal drift hits both arms
/// equally. The fastest run of each arm is its noise floor — the only
/// statistic a bursty shared host cannot inflate.
fn measure() -> RecorderSnapshot {
    let quick = quick_mode();
    let (streams, frames, min_reps, max_reps) = scale();
    println!(
        "recorder_snapshot ({} mode): {streams} streams x {frames} frames, \
         {min_reps}..{max_reps} reps per arm (stop after {STABLE_REPS} stable)",
        if quick { "quick" } else { "full" }
    );

    let cfg = config();
    let mut unrecorded_wall = f64::INFINITY;
    let mut recorded_wall = f64::INFINITY;
    let mut reports_identical = true;
    let mut events = 0;
    let mut snapshots = 0;
    let mut encoded_bytes = 0;
    let warmup_recorder = SharedRecorder::new(512, usize::MAX, 8);
    serve_fleet(workload(streams, frames), &cfg);
    serve_fleet_with_recorder(workload(streams, frames), &cfg, &warmup_recorder);
    let mut rep = 0;
    let mut stable = 0;
    while rep < min_reps || (stable < STABLE_REPS && rep < max_reps) {
        let run_plain = || {
            let t0 = Instant::now();
            let plain = serve_fleet(workload(streams, frames), &cfg);
            (plain, t0.elapsed().as_secs_f64())
        };
        // Full recording: every event kind, periodic snapshots, unbounded
        // retention — the most expensive configuration.
        let run_recorded = || {
            let recorder = SharedRecorder::new(512, usize::MAX, 8);
            let t0 = Instant::now();
            let recorded = serve_fleet_with_recorder(workload(streams, frames), &cfg, &recorder);
            (recorded, t0.elapsed().as_secs_f64(), recorder.stats())
        };
        let ((plain, plain_s), (recorded, recorded_s, stats)) = if rep % 2 == 0 {
            let p = run_plain();
            (p, run_recorded())
        } else {
            let r = run_recorded();
            (run_plain(), r)
        };
        let improved = plain_s < unrecorded_wall * 0.995 || recorded_s < recorded_wall * 0.995;
        unrecorded_wall = unrecorded_wall.min(plain_s);
        recorded_wall = recorded_wall.min(recorded_s);
        stable = if improved { 0 } else { stable + 1 };
        reports_identical &= recorded == plain;
        events = stats.events;
        snapshots = stats.snapshots;
        encoded_bytes = stats.encoded_bytes;
        rep += 1;
    }
    let reps = rep;

    let overhead_pct = (recorded_wall / unrecorded_wall - 1.0) * 100.0;
    let snapshot = RecorderSnapshot {
        schema: "catdet-recorder-snapshot/v1".to_string(),
        quick,
        streams,
        frames_per_stream: frames,
        repetitions: reps,
        unrecorded_wall_s: unrecorded_wall,
        recorded_wall_s: recorded_wall,
        overhead_pct,
        reports_identical,
        events,
        snapshots,
        encoded_bytes,
        bytes_per_event: encoded_bytes as f64 / events.max(1) as f64,
    };
    println!(
        "unrecorded {:.3} s | recorded {:.3} s | overhead {overhead_pct:+.2}% \
         (budget {OVERHEAD_BUDGET_PCT:.0}%)",
        unrecorded_wall, recorded_wall
    );
    println!(
        "store: {events} events, {snapshots} snapshots, {encoded_bytes} bytes \
         ({:.2} bytes/event) | reports identical: {reports_identical}",
        snapshot.bytes_per_event
    );
    snapshot
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());

    // A noise burst can span one whole measurement and inflate both arms'
    // "converged" minima. A real overhead regression survives every
    // attempt; a burst does not — so when gating, re-measure before
    // failing, and keep the attempt with the least noise inflation.
    let attempts = if check_path.is_some() { 3 } else { 1 };
    let mut snapshot = measure();
    for attempt in 2..=attempts {
        if snapshot.overhead_pct <= OVERHEAD_BUDGET_PCT {
            break;
        }
        println!(
            "[retry] overhead {:+.2}% over budget — re-measuring (attempt {attempt}/{attempts})",
            snapshot.overhead_pct
        );
        let again = measure();
        let identical = snapshot.reports_identical && again.reports_identical;
        if again.overhead_pct < snapshot.overhead_pct {
            snapshot = again;
        }
        snapshot.reports_identical = identical;
    }

    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot");
            println!("[saved {out_path}]");
        }
        Err(e) => {
            eprintln!("error: cannot serialize snapshot: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = check_path {
        match check_against(&path, &snapshot) {
            Ok(()) => println!("[check] OK — within budget vs {path}"),
            Err(msg) => {
                eprintln!("[check] FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
