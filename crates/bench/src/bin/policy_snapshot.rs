//! Frame-policy snapshot: the detect-or-track trade-off frontier of the
//! adaptive policy layer on KITTI-like video, written to `BENCH_PR9.json`
//! at the repo root.
//!
//! ```text
//! cargo run --release -p catdet-bench --bin policy_snapshot            # measure + write
//! cargo run --release -p catdet-bench --bin policy_snapshot -- \
//!     --check BENCH_PR9.json                                           # measure + regression-gate
//! CATDET_BENCH_QUICK=1 ... policy_snapshot                             # CI smoke sizes
//! ```
//!
//! Two parts, both in modelled units and therefore machine-independent
//! and bit-deterministic for a given mode:
//!
//! * **kitti** — each policy (always-detect, fixed-stride 3,
//!   confidence-trigger at the CLI default) drives a policied CaTDet-A
//!   pipeline over the same KITTI-like sequences. Measured: mean modelled
//!   MACs per frame (every branch priced end-to-end — coast frames pay
//!   the cheap-model validate pass, stride skips pay nothing), the
//!   detect/coast/skip split, and the mean detection-delay (Car, Hard,
//!   score ≥ 0.5) so the compute saving is priced against responsiveness.
//! * **fleet** — the same policies on the sharded serving fleet
//!   (mixed KITTI/CityPersons workload), confirming the saving survives
//!   scheduling, micro-batching and live migration.
//!
//! `--check <baseline.json>` enforces the PR's headline claim directly:
//! the confidence trigger must cut modelled MACs/frame by **at least 30%**
//! vs always-detect while regressing mean delay by **at most 3 frames**
//! (the always-detect baseline sits near 8 frames at these sizes), and —
//! same-mode only — neither the core nor the fleet reduction may collapse
//! below the recorded figure minus 5 points.

use catdet_core::{
    drive_frame, CaTDetSystem, PolicedPipeline, PolicyConfig, PolicyDecision, StagedDetector,
};
use catdet_data::{kitti_like, Difficulty, VideoDataset};
use catdet_metrics::DelayAccumulator;
use catdet_serve::{mixed_workload, serve_fleet, ServeConfig, ShardConfig, SystemKind};
use catdet_sim::ActorClass;
use serde::Serialize;
use std::time::Instant;

/// Delay is evaluated for this class/difficulty at this score threshold.
const DELAY_CLASS: ActorClass = ActorClass::Car;
const DELAY_SCORE: f32 = 0.5;

/// The `--check` gate: minimum confidence-trigger MACs reduction and
/// maximum tolerated mean-delay regression (frames) vs always-detect.
const MIN_CT_REDUCTION: f64 = 0.30;
const MAX_DELAY_REGRESSION_FRAMES: f64 = 3.0;

/// One policy measured on the core pipeline.
#[derive(Debug, Clone, Serialize)]
struct PolicyPoint {
    policy: String,
    frames: usize,
    detected: usize,
    coasted: usize,
    skipped: usize,
    /// Mean modelled MACs per frame (all branches priced).
    mean_macs_per_frame: f64,
    /// `1 - mean_macs / always_detect_mean_macs` (0 for the baseline row).
    macs_reduction_vs_always: f64,
    /// Mean detection delay, frames (Car, Hard, score ≥ 0.5).
    mean_delay_frames: f64,
    /// `mean_delay - always_detect_mean_delay` (0 for the baseline row).
    delay_regression_frames: f64,
    /// Real wall-clock seconds (machine-dependent, not gated).
    wall_s: f64,
}

/// One policy measured on the sharded serving fleet.
#[derive(Debug, Clone, Serialize)]
struct FleetPolicyPoint {
    policy: String,
    frames_processed: usize,
    detected: usize,
    coasted: usize,
    skipped: usize,
    /// Summed modelled MACs over every processed frame.
    total_macs: f64,
    /// `1 - total_macs / always_detect_total_macs` (0 for the baseline).
    macs_reduction_vs_always: f64,
    /// Virtual-time throughput (frames / fleet makespan).
    virtual_throughput_fps: f64,
    wall_s: f64,
}

/// The headline figures the CI gate watches.
#[derive(Debug, Clone, Serialize)]
struct Headline {
    /// Confidence-trigger MACs/frame reduction on the core KITTI run.
    reduction: f64,
    /// Confidence-trigger mean-delay regression (frames) on the same run.
    delay_regression_frames: f64,
    /// Confidence-trigger MACs reduction on the serving fleet.
    fleet_reduction: f64,
}

#[derive(Debug, Clone, Serialize)]
struct PolicySnapshot {
    schema: String,
    quick: bool,
    kitti: Vec<PolicyPoint>,
    fleet: Vec<FleetPolicyPoint>,
    headline: Headline,
}

fn quick_mode() -> bool {
    std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The swept policies, in baseline-first order. The confidence trigger
/// runs at the CLI defaults so the snapshot prices exactly what
/// `--policy confidence-trigger` ships.
fn policies() -> Vec<(&'static str, PolicyConfig)> {
    vec![
        ("always-detect", PolicyConfig::always_detect()),
        ("fixed-stride-3", PolicyConfig::fixed_stride(3)),
        ("confidence-trigger", PolicyConfig::confidence_trigger(1.0)),
    ]
}

fn kitti_dataset() -> VideoDataset {
    let (sequences, frames) = if quick_mode() { (4, 80) } else { (10, 240) };
    kitti_like()
        .sequences(sequences)
        .frames_per_sequence(frames)
        .seed(2019)
        .build()
}

/// Drives one policied CaTDet-A pipeline over the dataset, pricing every
/// branch and accumulating delay statistics.
fn measure_policy(name: &str, cfg: PolicyConfig, ds: &VideoDataset) -> PolicyPoint {
    let t0 = Instant::now();
    let mut total_macs = 0.0;
    let mut frames = 0usize;
    let (mut detected, mut coasted, mut skipped) = (0usize, 0usize, 0usize);
    let mut delay = DelayAccumulator::new();
    for seq in ds.sequences() {
        // A fresh pipeline per sequence: policy counters and tracker state
        // never leak across videos.
        let mut system = PolicedPipeline::new(Box::new(CaTDetSystem::catdet_a()), cfg);
        for frame in seq.frames() {
            let out = drive_frame(&mut system, frame);
            total_macs += out.ops.total();
            frames += 1;
            match system.policy_decision() {
                Some(PolicyDecision::Coast) => coasted += 1,
                Some(PolicyDecision::Skip) => skipped += 1,
                _ => detected += 1,
            }
            delay.add_frame(
                seq.id,
                frame.index,
                &frame.ground_truth,
                &out.detections,
                Difficulty::Hard,
            );
        }
    }
    let mean_delay = delay
        .mean_delay_at(DELAY_CLASS, DELAY_SCORE)
        .expect("KITTI-like video always has evaluable cars");
    let point = PolicyPoint {
        policy: name.to_string(),
        frames,
        detected,
        coasted,
        skipped,
        mean_macs_per_frame: total_macs / frames.max(1) as f64,
        macs_reduction_vs_always: 0.0, // filled in against the baseline row
        mean_delay_frames: mean_delay,
        delay_regression_frames: 0.0, // filled in against the baseline row
        wall_s: t0.elapsed().as_secs_f64(),
    };
    println!(
        "[kitti] {name}: {:.1} modelled MMACs/frame | {} detect / {} coast / {} skip | mD {:.2} frames",
        point.mean_macs_per_frame / 1e6,
        point.detected,
        point.coasted,
        point.skipped,
        point.mean_delay_frames,
    );
    point
}

/// Runs one policy on the sharded fleet and sums the priced ops.
fn measure_fleet_policy(name: &str, policy: PolicyConfig) -> FleetPolicyPoint {
    let (streams, frames) = if quick_mode() { (6, 16) } else { (12, 40) };
    let cfg = ServeConfig::new()
        .with_workers(2)
        .with_max_batch(4)
        .with_queue_capacity(100_000)
        .with_shard(ShardConfig::sharded(3).with_rebalance_interval_s(0.05))
        .with_policy(policy);
    let t0 = Instant::now();
    let report = serve_fleet(
        mixed_workload(streams, frames, 2019, SystemKind::CatdetA),
        &cfg,
    );
    let total_macs: f64 = report
        .streams()
        .iter()
        .map(|s| s.mean_ops.total() * s.processed as f64)
        .sum();
    let point = FleetPolicyPoint {
        policy: name.to_string(),
        frames_processed: report.frames_processed(),
        detected: report.frames_detected(),
        coasted: report.frames_coasted(),
        skipped: report.frames_skipped(),
        total_macs,
        macs_reduction_vs_always: 0.0, // filled in against the baseline row
        virtual_throughput_fps: report.throughput_fps(),
        wall_s: t0.elapsed().as_secs_f64(),
    };
    println!(
        "[fleet] {name}: {} frames ({} detect / {} coast / {} skip) | {:.1} modelled GMACs total",
        point.frames_processed,
        point.detected,
        point.coasted,
        point.skipped,
        point.total_macs / 1e9,
    );
    point
}

/// Pulls `"field": <number>` out of our own snapshot JSON, scoped to the
/// first occurrence after `section` (the vendored serde stack has no
/// deserializer; the format is ours and stable).
fn extract_number(json: &str, section: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let f = tail.find(&format!("\"{field}\""))?;
    let tail = &tail[f..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_bool(json: &str, field: &str) -> Option<bool> {
    let f = json.find(&format!("\"{field}\""))?;
    let tail = &json[f..];
    let colon = tail.find(':')?;
    Some(tail[colon + 1..].trim_start().starts_with("true"))
}

fn check_against(path: &str, snapshot: &PolicySnapshot) -> Result<(), String> {
    // The absolute gate first — the PR's claim, independent of any
    // baseline drift.
    let h = &snapshot.headline;
    if h.reduction < MIN_CT_REDUCTION {
        return Err(format!(
            "confidence-trigger MACs/frame reduction is {:.1}% — below the {:.0}% gate",
            100.0 * h.reduction,
            100.0 * MIN_CT_REDUCTION
        ));
    }
    if h.delay_regression_frames > MAX_DELAY_REGRESSION_FRAMES {
        return Err(format!(
            "confidence-trigger mean delay regressed {:.2} frames — above the {:.1}-frame bound",
            h.delay_regression_frames, MAX_DELAY_REGRESSION_FRAMES
        ));
    }
    // Then the baseline comparison: same-mode runs must hold the recorded
    // saving to within 5 points (across modes the workload sizes differ,
    // so only the absolute gate applies).
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let prev_quick = extract_bool(&text, "quick").unwrap_or(false);
    if prev_quick != snapshot.quick {
        println!(
            "[check] baseline mode (quick={prev_quick}) differs from current (quick={}); \
             gating on the absolute thresholds only",
            snapshot.quick
        );
        return Ok(());
    }
    for (field, now) in [
        ("reduction", h.reduction),
        ("fleet_reduction", h.fleet_reduction),
    ] {
        let prev = extract_number(&text, "headline", field)
            .ok_or_else(|| format!("baseline JSON lacks headline.{field}"))?;
        if now < prev - 0.05 {
            return Err(format!(
                "headline {field} collapsed: {:.1}% now vs {:.1}% recorded (>5 point drop)",
                100.0 * now,
                100.0 * prev
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    let quick = quick_mode();
    println!(
        "policy_snapshot ({} mode)",
        if quick { "quick" } else { "full" }
    );

    let ds = kitti_dataset();
    let mut kitti: Vec<PolicyPoint> = policies()
        .into_iter()
        .map(|(name, cfg)| measure_policy(name, cfg, &ds))
        .collect();
    let base_macs = kitti[0].mean_macs_per_frame;
    let base_delay = kitti[0].mean_delay_frames;
    for p in kitti.iter_mut().skip(1) {
        p.macs_reduction_vs_always = 1.0 - p.mean_macs_per_frame / base_macs;
        p.delay_regression_frames = p.mean_delay_frames - base_delay;
    }

    let mut fleet: Vec<FleetPolicyPoint> = policies()
        .into_iter()
        .map(|(name, cfg)| measure_fleet_policy(name, cfg))
        .collect();
    let fleet_base = fleet[0].total_macs;
    for p in fleet.iter_mut().skip(1) {
        p.macs_reduction_vs_always = 1.0 - p.total_macs / fleet_base;
    }

    let ct = kitti.last().unwrap();
    let headline = Headline {
        reduction: ct.macs_reduction_vs_always,
        delay_regression_frames: ct.delay_regression_frames,
        fleet_reduction: fleet.last().unwrap().macs_reduction_vs_always,
    };
    println!(
        "[headline] confidence-trigger: {:.1}% MACs/frame saved (fleet {:.1}%) at {:+.2} frames delay",
        100.0 * headline.reduction,
        100.0 * headline.fleet_reduction,
        headline.delay_regression_frames,
    );

    let snapshot = PolicySnapshot {
        schema: "catdet-policy-snapshot/v1".to_string(),
        quick,
        kitti,
        fleet,
        headline,
    };
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot");
            println!("[saved {out_path}]");
        }
        Err(e) => {
            eprintln!("error: cannot serialize snapshot: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = check_path {
        match check_against(&path, &snapshot) {
            Ok(()) => println!("[check] OK — no regression vs {path}"),
            Err(msg) => {
                eprintln!("[check] FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
