//! Regenerates Table 1: proposal-network specifications and op counts.

use catdet_bench::{experiments, tables};

fn main() {
    tables::heading("Table 1", "model specifications and operation counts");
    println!(
        "{:28} {:>12} {:>12} {:>8}",
        "model", "ops (G)", "paper (G)", "rel err"
    );
    let rows = experiments::table1();
    for r in &rows {
        println!(
            "{:28} {:>12.1} {:>12.1} {:>7.1}%",
            r.model,
            r.gops,
            r.paper_gops,
            (r.gops - r.paper_gops).abs() / r.paper_gops * 100.0
        );
    }
    tables::save_json("table1", &rows);
}
