//! Predictive-control-plane snapshot: the forecast-driven autoscaler and
//! predicted-load rebalancer duelling the reactive (hysteresis + backlog)
//! control plane on the step and bursty workloads, written to
//! `BENCH_PR10.json` at the repo root.
//!
//! ```text
//! cargo run --release -p catdet-bench --bin forecast_snapshot          # measure + write
//! cargo run --release -p catdet-bench --bin forecast_snapshot -- \
//!     --check BENCH_PR10.json                                          # measure + gate
//! CATDET_BENCH_QUICK=1 ... forecast_snapshot                           # CI smoke sizes
//! ```
//!
//! Both arms serve the *same* workload on the *same* two-shard fleet with
//! the same worker bounds; the only difference is the control plane:
//!
//! * **reactive** — hysteresis autoscaling (scale after the window shows
//!   shed or tail-latency damage) and backlog-driven rebalancing (move
//!   streams after a shard's queue is already long);
//! * **predictive** — [`PredictiveScale`](catdet_serve::PredictiveScale)
//!   targeting the forecast arrival rate ahead of the step, and
//!   predicted-load rebalancing (queue + forecast arrivals over the
//!   horizon, priced against the migration cost).
//!
//! Every gated figure is **virtual-time** and bit-deterministic per mode.
//! The `--check` gate enforces the claim itself, not just
//! non-regression: on *both* workloads the predictive arm must beat the
//! reactive arm on merged p99 *and* drop rate while spending equal
//! (±5%) worker-seconds — the win must come from timing, not from
//! burning extra capacity — and the predictive arm must be
//! bit-deterministic across fleet thread counts (reports *and* encoded
//! recorder bytes identical at 1 vs 4 threads, migrations included).
//! Same-mode baselines additionally gate the improvement margins.

use catdet_recorder::encode;
use catdet_serve::{
    bursty_workload, serve_fleet, serve_fleet_with_recorder, step_workload, AutoscaleConfig,
    BurstProfile, FleetReport, RebalanceSignal, ScalePolicyKind, ServeConfig, ShardConfig,
    SharedRecorder, StreamSpec, SystemKind,
};
use serde::Serialize;
use std::time::Instant;

/// One control plane's showing on one workload.
#[derive(Debug, Clone, Serialize)]
struct Arm {
    /// Autoscale policy name (`hysteresis` or `predictive`).
    policy: String,
    /// Frames processed across the fleet.
    frames_processed: usize,
    /// Fleet drop rate over arrived frames.
    drop_rate: f64,
    /// Merged (pooled nearest-rank) p99 latency, virtual seconds.
    merged_p99_s: f64,
    /// Provisioned worker-seconds summed over shards.
    worker_seconds: f64,
    /// Live migrations performed by the rebalancer.
    migrations: usize,
    /// Real wall-clock seconds for the run (machine-dependent).
    wall_s: f64,
}

/// Reactive vs predictive on one workload.
#[derive(Debug, Clone, Serialize)]
struct Duel {
    workload: String,
    reactive: Arm,
    predictive: Arm,
    /// `(1 - predictive_p99 / reactive_p99) * 100` — positive means the
    /// predictive arm's tail is shorter.
    p99_improvement_pct: f64,
    /// `reactive_drop - predictive_drop` in percentage points of arrived
    /// frames — positive means the predictive arm dropped less.
    drop_rate_improvement_pp: f64,
    /// `predictive_worker_seconds / reactive_worker_seconds` — the
    /// fairness figure, gated to `1 ± 0.05`.
    worker_seconds_ratio: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ForecastSnapshot {
    schema: String,
    quick: bool,
    step: Duel,
    bursty: Duel,
    /// Whether the predictive fleet was bit-identical at 1 vs 4 fleet
    /// threads: merged report equal and encoded recorder stores
    /// byte-equal (migrations and forecast events included).
    deterministic: bool,
}

/// Worker-seconds parity slack: the predictive arm may spend at most
/// this fraction more or less than the reactive arm.
const WORKER_SECONDS_SLACK: f64 = 0.05;

/// Measured per-frame virtual service time of the CatdetA preset on this
/// fleet shape (batching included) — the predictive controller's
/// capacity model.
const SERVICE_S_PER_FRAME: f64 = 0.065;

/// The duel's arrival regime: quiet trickle, 10 fps stampedes. Sized so
/// the post-step / in-burst load sits just under the fleet's max-worker
/// capacity — the regime where *when* capacity arrives (not how much)
/// decides the tail and the drops.
fn duel_profile() -> BurstProfile {
    BurstProfile {
        quiet_fps: 2.0,
        burst_fps: 10.0,
        quiet_s: 2.0,
        burst_s: 2.0,
    }
}

fn quick_mode() -> bool {
    std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn scale() -> (usize, usize) {
    // Quick mode keeps the full stream count (the per-shard load, and
    // with it the capacity math, is the point) and shortens the streams.
    if quick_mode() {
        (16, 70)
    } else {
        (16, 120)
    }
}

/// The shared fleet shape: two shards, bounded queues, live rebalancing.
/// Only the control plane (autoscale policy + rebalance signal) differs
/// between arms.
fn fleet_cfg(policy: ScalePolicyKind, threads: usize) -> ServeConfig {
    let (min_w, max_w) = (1, 6);
    let mut autoscale = match policy {
        ScalePolicyKind::Hysteresis => AutoscaleConfig::hysteresis(min_w, max_w),
        ScalePolicyKind::Predictive => AutoscaleConfig::predictive(min_w, max_w),
        _ => unreachable!("bench arms are hysteresis and predictive"),
    };
    // The predictive target is `ceil(forecast_fps * service_s_per_frame)`:
    // feed it the measured per-frame virtual service time of the CatdetA
    // preset on this fleet shape so "needed workers" means what it says.
    autoscale.service_s_per_frame = SERVICE_S_PER_FRAME;
    // Both arms get the same reachable scale-down threshold. The stock
    // 0.15 s sits below this preset's batched service latency, which
    // would leave the hysteresis arm pinned at its breach-time overshoot
    // forever — an unfairly expensive baseline, not a reactive one.
    autoscale.down_p99_s = 0.35;
    let signal = match policy {
        ScalePolicyKind::Predictive => RebalanceSignal::Predicted,
        _ => RebalanceSignal::Backlog,
    };
    ServeConfig::new()
        .with_workers(min_w)
        .with_max_batch(4)
        .with_queue_capacity(12)
        .with_autoscale(autoscale)
        .with_shard(
            ShardConfig::sharded(2)
                .with_rebalance_interval_s(0.25)
                .with_migration_cost_frames(4)
                .with_rebalance_signal(signal)
                .with_threads(threads),
        )
}

fn arm(policy: ScalePolicyKind, build: &dyn Fn() -> Vec<StreamSpec>) -> (Arm, FleetReport) {
    let cfg = fleet_cfg(policy, 1);
    let t0 = Instant::now();
    let report = serve_fleet(build(), &cfg);
    let wall = t0.elapsed().as_secs_f64();
    let arm = Arm {
        policy: match policy {
            ScalePolicyKind::Predictive => "predictive",
            _ => "hysteresis",
        }
        .to_string(),
        frames_processed: report.frames_processed(),
        drop_rate: report.drop_rate(),
        merged_p99_s: report.merged_latency().map_or(0.0, |l| l.p99_s),
        worker_seconds: report.worker_seconds(),
        migrations: report.migrations.len(),
        wall_s: wall,
    };
    (arm, report)
}

fn duel(name: &str, build: &dyn Fn() -> Vec<StreamSpec>) -> Duel {
    let (reactive, _) = arm(ScalePolicyKind::Hysteresis, build);
    let (predictive, _) = arm(ScalePolicyKind::Predictive, build);
    let p99_improvement_pct =
        (1.0 - predictive.merged_p99_s / reactive.merged_p99_s.max(1e-12)) * 100.0;
    let drop_rate_improvement_pp = (reactive.drop_rate - predictive.drop_rate) * 100.0;
    let worker_seconds_ratio = predictive.worker_seconds / reactive.worker_seconds.max(1e-12);
    for a in [&reactive, &predictive] {
        println!(
            "[{name}] {:>10}: p99 {:>6.0} ms | drop {:>5.2}% | {:>8.1} worker-s | {} migrations",
            a.policy,
            a.merged_p99_s * 1e3,
            100.0 * a.drop_rate,
            a.worker_seconds,
            a.migrations,
        );
    }
    println!(
        "[{name}] predictive vs reactive: p99 {p99_improvement_pct:+.1}% | \
         drops {drop_rate_improvement_pp:+.2} pp | worker-seconds ratio {worker_seconds_ratio:.3}"
    );
    Duel {
        workload: name.to_string(),
        reactive,
        predictive,
        p99_improvement_pct,
        drop_rate_improvement_pp,
        worker_seconds_ratio,
    }
}

/// The determinism half of the claim: the predictive fleet — forecasts,
/// forecast-driven migrations and all — must not depend on how many OS
/// threads step the shards. Runs the predictive arm recorded at 1 and 4
/// fleet threads and compares the merged reports and the encoded stores
/// byte for byte.
fn determinism(build: &dyn Fn() -> Vec<StreamSpec>) -> bool {
    let run = |threads: usize| {
        let recorder = SharedRecorder::new(512, usize::MAX, 8);
        let cfg = fleet_cfg(ScalePolicyKind::Predictive, threads);
        let report = serve_fleet_with_recorder(build(), &cfg, &recorder);
        let bytes = recorder.with_store(|s| encode(s));
        (report, bytes)
    };
    let (report_1, bytes_1) = run(1);
    let (report_4, bytes_4) = run(4);
    let ok = report_1 == report_4 && bytes_1 == bytes_4;
    println!(
        "[determinism] 1 vs 4 fleet threads: reports {} | stores {} ({} bytes)",
        if report_1 == report_4 {
            "identical"
        } else {
            "DIVERGED"
        },
        if bytes_1 == bytes_4 {
            "identical"
        } else {
            "DIVERGED"
        },
        bytes_1.len(),
    );
    ok
}

/// Pulls `"field": <number>` out of our own snapshot JSON, scoped to the
/// first occurrence after `section` (the vendored serde stack has no
/// deserializer; the format is ours and stable).
fn extract_number(json: &str, section: &str, field: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let f = tail.find(&format!("\"{field}\""))?;
    let tail = &tail[f..];
    let colon = tail.find(':')?;
    let rest = tail[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_bool(json: &str, field: &str) -> Option<bool> {
    let f = json.find(&format!("\"{field}\""))?;
    let tail = &json[f..];
    let colon = tail.find(':')?;
    Some(tail[colon + 1..].trim_start().starts_with("true"))
}

/// The absolute claim every run must satisfy, baseline or not: on this
/// workload the predictive arm won both quality metrics at parity cost.
fn check_duel(d: &Duel) -> Result<(), String> {
    if d.predictive.merged_p99_s >= d.reactive.merged_p99_s {
        return Err(format!(
            "{}: predictive p99 {:.3} s did not beat reactive {:.3} s",
            d.workload, d.predictive.merged_p99_s, d.reactive.merged_p99_s
        ));
    }
    // Strictly fewer drops when the reactive arm drops anything; when it
    // drops nothing (quick-mode sizes), matching zero is the best
    // possible and anything above it is a loss.
    let drop_win = if d.reactive.drop_rate > 0.0 {
        d.predictive.drop_rate < d.reactive.drop_rate
    } else {
        d.predictive.drop_rate == 0.0
    };
    if !drop_win {
        return Err(format!(
            "{}: predictive drop rate {:.4} did not beat reactive {:.4}",
            d.workload, d.predictive.drop_rate, d.reactive.drop_rate
        ));
    }
    if (d.worker_seconds_ratio - 1.0).abs() > WORKER_SECONDS_SLACK {
        return Err(format!(
            "{}: worker-seconds ratio {:.3} outside 1 +/- {WORKER_SECONDS_SLACK} — \
             the arms are no longer spending equal capacity",
            d.workload, d.worker_seconds_ratio
        ));
    }
    Ok(())
}

fn check_against(path: &str, snapshot: &ForecastSnapshot) -> Result<(), String> {
    if !snapshot.deterministic {
        return Err("predictive fleet diverged across thread counts".to_string());
    }
    check_duel(&snapshot.step)?;
    check_duel(&snapshot.bursty)?;

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if extract_bool(&text, "deterministic") != Some(true) {
        return Err(format!(
            "baseline {path} does not record deterministic: true"
        ));
    }
    let prev_quick = extract_bool(&text, "quick").unwrap_or(false);
    if prev_quick != snapshot.quick {
        // Across modes the workload sizes differ; the absolute gates
        // above already enforced the claim at this mode's sizes.
        println!(
            "[check] baseline mode (quick={prev_quick}) differs from current (quick={}); \
             gating on the absolute claim only",
            snapshot.quick
        );
        return Ok(());
    }
    // Same mode: the figures are deterministic, so the improvement
    // margins may not silently erode past half of what was recorded.
    for d in [&snapshot.step, &snapshot.bursty] {
        let prev = extract_number(&text, &d.workload, "p99_improvement_pct")
            .ok_or_else(|| format!("baseline JSON lacks {}.p99_improvement_pct", d.workload))?;
        if d.p99_improvement_pct < 0.5 * prev {
            return Err(format!(
                "{} p99 improvement eroded: {:+.1}% now vs {:+.1}% recorded",
                d.workload, d.p99_improvement_pct, prev
            ));
        }
        let prev =
            extract_number(&text, &d.workload, "drop_rate_improvement_pp").ok_or_else(|| {
                format!(
                    "baseline JSON lacks {}.drop_rate_improvement_pp",
                    d.workload
                )
            })?;
        if d.drop_rate_improvement_pp < 0.5 * prev {
            return Err(format!(
                "{} drop-rate improvement eroded: {:+.2} pp now vs {:+.2} pp recorded",
                d.workload, d.drop_rate_improvement_pp, prev
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    let quick = quick_mode();
    let (streams, frames) = scale();
    println!(
        "forecast_snapshot ({} mode): {streams} streams x {frames} frames",
        if quick { "quick" } else { "full" }
    );

    // The step workload idles, then every camera jumps to its burst rate
    // and stays there — the forecaster sees the new rate after one
    // complete bucket and jumps capacity in a single decision, where
    // hysteresis climbs a step at a time behind the damage. The bursty
    // workload cycles quiet/stampede phases, where the burst-phase
    // detector can put capacity in place before each stampede.
    let step_build = move || {
        step_workload(
            streams,
            frames,
            2019,
            SystemKind::CatdetA,
            duel_profile(),
            // Late enough that the forecaster has history coverage when
            // the step hits — the duel measures reaction, not warmup.
            4.0,
        )
    };
    let bursty_build =
        move || bursty_workload(streams, frames, 2019, SystemKind::CatdetA, duel_profile());

    let step = duel("step", &step_build);
    let bursty = duel("bursty", &bursty_build);
    let deterministic = determinism(&bursty_build);

    let snapshot = ForecastSnapshot {
        schema: "catdet-forecast-snapshot/v1".to_string(),
        quick,
        step,
        bursty,
        deterministic,
    };
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            std::fs::write(&out_path, json + "\n").expect("write snapshot");
            println!("[saved {out_path}]");
        }
        Err(e) => {
            eprintln!("error: cannot serialize snapshot: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = check_path {
        match check_against(&path, &snapshot) {
            Ok(()) => println!("[check] OK — predictive control plane holds its win vs {path}"),
            Err(msg) => {
                eprintln!("[check] FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
