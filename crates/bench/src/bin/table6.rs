//! Regenerates Table 6: CityPersons results.

use catdet_bench::{experiments, tables, Scale};

fn main() {
    let scale = Scale::from_env();
    tables::heading("Table 6", "CityPersons mAP and operations");
    println!(
        "{:28} {:>8} {:>8} | {:>8} {:>8}",
        "system", "mAP", "paper", "ops (G)", "paper"
    );
    let rows = experiments::table6(scale);
    for r in &rows {
        println!(
            "{:28} {:>8.3} {:>8.3} | {:>8.1} {:>8.1}",
            r.system, r.map, r.paper.0, r.gops, r.paper.1
        );
    }
    tables::save_json("table6", &rows);
}
