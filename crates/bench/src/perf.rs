//! Perf-snapshot harness: scenarios, the frozen baseline pipeline, and
//! the `BENCH_PR4.json` report types.
//!
//! The `perf_snapshot` binary measures the *current* per-frame hot path
//! against a frozen **baseline pipeline** — the seed's monolithic CaTDet
//! loop rebuilt from the reference implementations the library keeps for
//! exactly this purpose ([`nms_indices_naive`], the tracker's
//! [`AssocBackend::Naive`](catdet_track::AssocBackend) dense sweep,
//! [`SimulatedDetector::detect_regions_reference`], and the per-call
//! allocating pricing helpers). Both pipelines are bit-for-bit
//! output-identical — the harness asserts it on every measured frame — so
//! every ratio in the snapshot is a pure cost comparison, never an
//! accuracy trade.
//!
//! [`nms_indices_naive`]: catdet_geom::nms_indices_naive
//! [`SimulatedDetector::detect_regions_reference`]: catdet_detector::SimulatedDetector::detect_regions_reference

use catdet_core::system::{refinement_macs, SystemConfig};
use catdet_core::{
    CaTDetSystem, DetectionSystem, FrameOutput, OpsBreakdown, StageStep, StagedDetector,
};
use catdet_data::{citypersons_like, kitti_like, DatasetBuilder, Frame, VideoDataset};
use catdet_detector::{zoo, DetectorModel, SimulatedDetector};
use catdet_geom::coverage::masked_fraction;
use catdet_geom::{nms_indices_naive, Box2};
use catdet_metrics::Detection;
use catdet_sim::{ActorClass, SceneConfig};
use catdet_track::{TrackDetection, Tracker, TrackerConfig};
use serde::Serialize;
use std::time::Instant;

/// Per-scenario sizes: `(sequences, frames_per_sequence)`; the dense
/// crowd adds an objects-per-frame count.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotScale {
    /// KITTI-like preset size.
    pub kitti: (usize, usize),
    /// CityPersons-like preset size.
    pub citypersons: (usize, usize),
    /// Dense-crowd size: `(sequences, frames, objects_per_frame)`.
    pub dense: (usize, usize, usize),
    /// Serve fleet: `(streams, frames_per_stream)`.
    pub serve: (usize, usize),
}

impl SnapshotScale {
    /// Full snapshot (the committed `BENCH_PR4.json` numbers).
    pub fn full() -> Self {
        Self {
            kitti: (2, 150),
            citypersons: (4, 30),
            dense: (1, 50, 260),
            serve: (8, 60),
        }
    }

    /// CI smoke mode (`CATDET_BENCH_QUICK=1`).
    pub fn quick() -> Self {
        Self {
            kitti: (1, 40),
            citypersons: (2, 15),
            dense: (1, 15, 140),
            serve: (4, 20),
        }
    }

    /// Full unless `CATDET_BENCH_QUICK` is set (same switch as the
    /// criterion smoke mode).
    pub fn from_env() -> Self {
        if std::env::var_os("CATDET_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty()) {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// A crowded street: the scenario where quadratic NMS / association /
/// region gating actually hurt. Roughly 10× the object density of the
/// CityPersons preset (the street-sim world itself self-occludes beyond
/// ~45 visible objects, so this is the preset ceiling).
pub fn dense_street_scene() -> SceneConfig {
    let mut scene = SceneConfig::city_street();
    scene.initial_cars = 35;
    scene.initial_peds = 110;
    scene.car_spawn_rate = 0.4;
    scene.ped_spawn_rate = 1.2;
    scene.max_depth = 220.0;
    scene
}

/// The dense-street dataset builder (CityPersons geometry, crowd density
/// turned up to the sim's visibility ceiling).
pub fn dense_street(sequences: usize, frames: usize) -> DatasetBuilder {
    citypersons_like()
        .scene(dense_street_scene())
        .sequences(sequences)
        .frames_per_sequence(frames)
        .seed(77)
}

/// Deterministic hash → `[0, 1)` float (splitmix64 finalizer); keeps the
/// dense-crowd builder free of any RNG dependency.
fn unit_hash(mut x: u64) -> f32 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 40) as f32 / (1u64 << 24) as f32
}

/// A synthetic dense crowd: `objects` small, independently drifting boxes
/// spread across a 2048×1024 frame (the stadium/intersection-camera
/// shape the street-sim geometry cannot reach). This is the scene where
/// every quadratic sweep in the seed hot path — NMS, association, region
/// gating — actually bites; occlusion is zero so *all* objects stay
/// annotated.
pub fn dense_crowd(sequences: usize, frames: usize, objects: usize) -> VideoDataset {
    use catdet_data::Sequence;
    use catdet_sim::GroundTruthObject;
    let (width, height) = (2048.0f32, 1024.0f32);
    let cols = (objects as f32).sqrt().ceil().max(1.0) as usize;
    let seqs = (0..sequences)
        .map(|seq| {
            let frames = (0..frames)
                .map(|index| {
                    let t = index as f32;
                    let ground_truth = (0..objects)
                        .map(|i| {
                            let key = (seq as u64) << 32 | i as u64;
                            let col = (i % cols) as f32;
                            let row = (i / cols) as f32;
                            let rows = objects.div_ceil(cols) as f32;
                            let h = 28.0 + 44.0 * unit_hash(key ^ 0x51);
                            let class = if unit_hash(key ^ 0xC1) < 0.3 {
                                ActorClass::Car
                            } else {
                                ActorClass::Pedestrian
                            };
                            let w = match class {
                                ActorClass::Car => h * (1.3 + 0.6 * unit_hash(key ^ 0x77)),
                                ActorClass::Pedestrian => h * (0.35 + 0.2 * unit_hash(key ^ 0x77)),
                            };
                            // Grid anchor + per-object drift keeps the crowd
                            // spread out and in motion without leaving frame.
                            let phase = unit_hash(key ^ 0x1F) * std::f32::consts::TAU;
                            let speed = 0.05 + 0.15 * unit_hash(key ^ 0x2F);
                            let cx = (col + 0.5) / cols as f32 * (width - 120.0)
                                + 40.0 * (speed * t + phase).sin()
                                + 20.0;
                            let cy = (row + 0.5) / rows * (height - 120.0)
                                + 25.0 * (speed * t + 1.7 * phase).cos()
                                + 20.0;
                            let bbox = Box2::from_cxcywh(cx, cy, w, h).clip(width, height);
                            GroundTruthObject {
                                track_id: key,
                                class,
                                bbox,
                                full_bbox: bbox,
                                occlusion: 0.0,
                                truncation: 0.0,
                                depth: 2262.5 * 1.75 / h.max(1.0),
                            }
                        })
                        .collect();
                    Frame {
                        sequence_id: seq,
                        index,
                        ground_truth,
                        labeled: true,
                    }
                })
                .collect();
            Sequence::new(seq, 30.0, frames)
        })
        .collect();
    VideoDataset::new(
        "dense-crowd",
        width,
        height,
        vec![ActorClass::Car, ActorClass::Pedestrian],
        seqs,
    )
}

/// Builds the KITTI-preset dataset at snapshot scale.
pub fn kitti_dataset(scale: SnapshotScale) -> VideoDataset {
    kitti_like()
        .sequences(scale.kitti.0)
        .frames_per_sequence(scale.kitti.1)
        .build()
}

/// Builds the CityPersons-preset dataset at snapshot scale.
pub fn citypersons_dataset(scale: SnapshotScale) -> VideoDataset {
    citypersons_like()
        .sequences(scale.citypersons.0)
        .frames_per_sequence(scale.citypersons.1)
        .build()
}

// ---------------------------------------------------------------------
// Baseline pipeline: the seed's monolithic, allocation-heavy frame loop.
// ---------------------------------------------------------------------

/// The seed CaTDet frame loop, rebuilt from the library's reference
/// implementations (naive NMS, dense tracker association, quadratic
/// region gating, per-call pricing allocations).
pub struct BaselineCatdet {
    proposal: SimulatedDetector,
    refinement: SimulatedDetector,
    tracker: Tracker<ActorClass>,
    cfg: SystemConfig,
    width: f32,
    height: f32,
}

/// Greedy per-class NMS over the naive quadratic sweep (the seed's
/// `nms_per_class` shape: fresh buffers every call).
fn nms_per_class_naive(detections: &[Detection], iou: f32) -> Vec<Detection> {
    let mut kept = Vec::with_capacity(detections.len());
    for class in ActorClass::ALL {
        let of_class: Vec<(Box2, f32, usize)> = detections
            .iter()
            .enumerate()
            .filter(|(_, d)| d.class == class)
            .map(|(i, d)| (d.bbox, d.score, i))
            .collect();
        let scored: Vec<(Box2, f32)> = of_class.iter().map(|&(b, s, _)| (b, s)).collect();
        for idx in nms_indices_naive(&scored, iou) {
            kept.push(detections[of_class[idx].2]);
        }
    }
    kept.sort_by(|a, b| b.score.total_cmp(&a.score));
    kept
}

impl BaselineCatdet {
    /// Baseline counterpart of
    /// [`CaTDetSystem::new`](catdet_core::CaTDetSystem::new) with the
    /// paper configuration.
    pub fn new(
        proposal: DetectorModel,
        refinement: DetectorModel,
        width: f32,
        height: f32,
    ) -> Self {
        let cfg = SystemConfig::paper();
        Self {
            proposal: SimulatedDetector::new(proposal, width, height),
            refinement: SimulatedDetector::new(refinement, width, height),
            tracker: Tracker::new(
                TrackerConfig::paper()
                    .with_input_threshold(cfg.t_thresh)
                    .with_naive_association(),
            ),
            cfg,
            width,
            height,
        }
    }

    /// Clears temporal state at a sequence boundary.
    pub fn reset(&mut self) {
        self.proposal.reset();
        self.refinement.reset();
        self.tracker.reset();
    }

    /// One monolithic frame: the seed's `process_frame`, verbatim.
    pub fn process_frame(&mut self, frame: &Frame) -> FrameOutput {
        let predictions = self.tracker.predictions(self.width, self.height);
        let tracker_regions: Vec<Box2> = predictions.iter().map(|p| p.bbox).collect();

        let raw_props =
            self.proposal
                .detect_full_frame(frame.sequence_id, frame.index, &frame.ground_truth);
        let props: Vec<Detection> = raw_props
            .into_iter()
            .filter(|d| d.score >= self.cfg.c_thresh)
            .collect();
        let props = nms_per_class_naive(&props, self.cfg.nms_iou);
        let proposal_regions: Vec<Box2> = props.iter().map(|d| d.bbox).collect();

        let mut regions = tracker_regions.clone();
        regions.extend_from_slice(&proposal_regions);
        let refined = self.refinement.detect_regions_reference(
            frame.sequence_id,
            frame.index,
            &frame.ground_truth,
            &regions,
            self.cfg.margin,
        );
        let detections = nms_per_class_naive(&refined, self.cfg.nms_iou);

        let track_inputs: Vec<TrackDetection<ActorClass>> = detections
            .iter()
            .filter(|d| d.score >= self.cfg.t_thresh)
            .map(|d| TrackDetection {
                bbox: d.bbox,
                score: d.score,
                class: d.class,
            })
            .collect();
        self.tracker.update(&track_inputs);

        let proposal_macs = self
            .proposal
            .model()
            .ops
            .full_frame_macs(self.width as usize, self.height as usize);
        let spec = &self.refinement.model().ops;
        let refine_macs = refinement_macs(spec, self.width, self.height, &regions, self.cfg.margin);
        let from_tracker = refinement_macs(
            spec,
            self.width,
            self.height,
            &tracker_regions,
            self.cfg.margin,
        );
        let from_proposal = refinement_macs(
            spec,
            self.width,
            self.height,
            &proposal_regions,
            self.cfg.margin,
        );
        let coverage = masked_fraction(&regions, self.width, self.height, 16, self.cfg.margin);
        FrameOutput {
            detections,
            ops: OpsBreakdown {
                proposal: proposal_macs,
                refinement: refine_macs,
                refinement_from_tracker: from_tracker,
                refinement_from_proposal: from_proposal,
            },
            num_refinement_regions: regions.len(),
            refinement_coverage: coverage,
        }
    }
}

// ---------------------------------------------------------------------
// Measurement plumbing.
// ---------------------------------------------------------------------

/// Allocation counters sampled around a measured section; wired to the
/// binary's counting global allocator via a function pointer so the
/// library stays allocator-agnostic.
#[derive(Clone, Copy)]
pub struct AllocProbe {
    /// Returns `(allocation_count, allocated_bytes)` so far.
    pub sample: fn() -> (u64, u64),
}

impl AllocProbe {
    /// A probe that always reads zero (library tests / no counting
    /// allocator installed).
    pub fn disabled() -> Self {
        fn zero() -> (u64, u64) {
            (0, 0)
        }
        Self { sample: zero }
    }
}

/// One measured pipeline pass.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PassStats {
    /// Frames measured (steady state; warm-up pass excluded).
    pub frames: usize,
    /// Steady-state throughput.
    pub frames_per_s: f64,
    /// Mean nanoseconds per frame.
    pub ns_per_frame: f64,
    /// Mean proposal-stage nanoseconds per frame (0 when not staged).
    pub proposal_ns_per_frame: f64,
    /// Mean refinement-stage nanoseconds per frame (includes NMS and the
    /// tracker update; 0 when not staged).
    pub refinement_ns_per_frame: f64,
    /// Mean heap allocations per frame in steady state.
    pub allocs_per_frame: f64,
    /// Mean heap bytes allocated per frame in steady state.
    pub alloc_bytes_per_frame: f64,
}

/// Runs the optimized staged system over a dataset: one warm-up pass
/// (grows every scratch buffer), one measured pass.
pub fn measure_staged(ds: &VideoDataset, sys: &mut CaTDetSystem, probe: AllocProbe) -> PassStats {
    // Warm-up: grow scratch to steady state.
    for seq in ds.sequences() {
        DetectionSystem::reset(sys);
        for frame in seq.frames() {
            std::hint::black_box(sys.process_frame(frame));
        }
    }
    let mut frames = 0usize;
    let mut prop_ns = 0u128;
    let mut refine_ns = 0u128;
    let (a0, b0) = (probe.sample)();
    let t0 = Instant::now();
    for seq in ds.sequences() {
        DetectionSystem::reset(sys);
        for frame in seq.frames() {
            frames += 1;
            sys.begin_frame(frame);
            loop {
                match sys.step() {
                    StageStep::NeedsProposal(w) => {
                        let t = Instant::now();
                        sys.complete_proposal(w);
                        prop_ns += t.elapsed().as_nanos();
                    }
                    StageStep::NeedsRefinement(w) => {
                        let t = Instant::now();
                        sys.complete_refinement(w);
                        refine_ns += t.elapsed().as_nanos();
                    }
                    StageStep::Done(out) => {
                        std::hint::black_box(out);
                        break;
                    }
                }
            }
        }
    }
    let elapsed = t0.elapsed();
    let (a1, b1) = (probe.sample)();
    pass_stats(
        frames,
        elapsed.as_nanos(),
        prop_ns,
        refine_ns,
        a1 - a0,
        b1 - b0,
    )
}

/// Runs the baseline monolith over a dataset: one warm-up pass, one
/// measured pass (stage split not observable — monolithic by design).
pub fn measure_baseline(
    ds: &VideoDataset,
    sys: &mut BaselineCatdet,
    probe: AllocProbe,
) -> PassStats {
    for seq in ds.sequences() {
        sys.reset();
        for frame in seq.frames() {
            std::hint::black_box(sys.process_frame(frame));
        }
    }
    let mut frames = 0usize;
    let (a0, b0) = (probe.sample)();
    let t0 = Instant::now();
    for seq in ds.sequences() {
        sys.reset();
        for frame in seq.frames() {
            frames += 1;
            std::hint::black_box(sys.process_frame(frame));
        }
    }
    let elapsed = t0.elapsed();
    let (a1, b1) = (probe.sample)();
    pass_stats(frames, elapsed.as_nanos(), 0, 0, a1 - a0, b1 - b0)
}

/// Asserts baseline == optimized on every frame of a dataset (the
/// harness-level referee backing every ratio in the snapshot).
pub fn assert_pipelines_identical(ds: &VideoDataset, width: f32, height: f32) {
    let mut optimized = CaTDetSystem::new(
        zoo::resnet10a(2),
        zoo::resnet50(2),
        width,
        height,
        SystemConfig::paper(),
    );
    let mut baseline = BaselineCatdet::new(zoo::resnet10a(2), zoo::resnet50(2), width, height);
    for seq in ds.sequences() {
        DetectionSystem::reset(&mut optimized);
        baseline.reset();
        for frame in seq.frames() {
            let a = optimized.process_frame(frame);
            let b = baseline.process_frame(frame);
            assert_eq!(
                a, b,
                "optimized and baseline pipelines diverged on {} seq {} frame {}",
                ds.name, seq.id, frame.index
            );
        }
    }
}

fn pass_stats(
    frames: usize,
    total_ns: u128,
    prop_ns: u128,
    refine_ns: u128,
    allocs: u64,
    bytes: u64,
) -> PassStats {
    let n = frames.max(1) as f64;
    PassStats {
        frames,
        frames_per_s: if total_ns > 0 {
            n / (total_ns as f64 / 1e9)
        } else {
            0.0
        },
        ns_per_frame: total_ns as f64 / n,
        proposal_ns_per_frame: prop_ns as f64 / n,
        refinement_ns_per_frame: refine_ns as f64 / n,
        allocs_per_frame: allocs as f64 / n,
        alloc_bytes_per_frame: bytes as f64 / n,
    }
}

// ---------------------------------------------------------------------
// Report types (serialized to BENCH_PR4.json).
// ---------------------------------------------------------------------

/// Baseline/optimized pair for one pipeline scenario.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PipelineScenario {
    /// Mean annotated objects per frame (scene density).
    pub mean_objects_per_frame: f64,
    /// The seed hot path (naive NMS, dense association, quadratic
    /// gating, per-call allocations).
    pub baseline: PassStats,
    /// The grid-indexed, scratch-reusing hot path.
    pub optimized: PassStats,
    /// `optimized.frames_per_s / baseline.frames_per_s`.
    pub speedup: f64,
    /// `baseline.allocs_per_frame / optimized.allocs_per_frame`.
    pub alloc_reduction: f64,
}

/// The serve fleet scenario summary.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServeScenario {
    /// Streams in the fleet.
    pub streams: usize,
    /// Frames processed across the fleet.
    pub frames_processed: usize,
    /// Real wall-clock frames per second over the run.
    pub wall_frames_per_s: f64,
    /// Virtual-time throughput reported by the scheduler.
    pub virtual_throughput_fps: f64,
    /// Summed virtual GPU dispatch seconds.
    pub gpu_dispatch_s: f64,
    /// Mean heap allocations per processed frame (whole process,
    /// worker threads included).
    pub allocs_per_frame: f64,
}

/// The whole snapshot, written to `BENCH_PR4.json` at the repo root.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    /// Report schema tag.
    pub schema: String,
    /// Whether this snapshot ran in `CATDET_BENCH_QUICK` smoke mode.
    pub quick: bool,
    /// Dense-scene pipeline (the headline before/after).
    pub dense_pipeline: PipelineScenario,
    /// KITTI-preset pipeline.
    pub kitti_pipeline: PipelineScenario,
    /// CityPersons-preset pipeline.
    pub citypersons_pipeline: PipelineScenario,
    /// Multi-stream serve fleet.
    pub serve_fleet: ServeScenario,
}

/// Mean annotated objects per frame of a dataset.
pub fn mean_objects_per_frame(ds: &VideoDataset) -> f64 {
    let mut objects = 0usize;
    let mut frames = 0usize;
    for seq in ds.sequences() {
        for f in seq.frames() {
            objects += f.ground_truth.len();
            frames += 1;
        }
    }
    objects as f64 / frames.max(1) as f64
}
