//! Experiment scale control.

use catdet_data::{citypersons_like, kitti_like, VideoDataset};

/// How much data an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// KITTI-like sequences.
    pub kitti_sequences: usize,
    /// Frames per KITTI-like sequence.
    pub kitti_frames: usize,
    /// CityPersons-like sequences (30 frames each, 1 labelled).
    pub citypersons_sequences: usize,
}

impl Scale {
    /// The benchmark-shaped scale: 21×381 ≈ 8 000 KITTI frames and 500
    /// CityPersons sequences.
    pub fn full() -> Self {
        Self {
            kitti_sequences: 21,
            kitti_frames: 381,
            citypersons_sequences: 500,
        }
    }

    /// A ~8x smaller scale for iteration.
    pub fn quick() -> Self {
        Self {
            kitti_sequences: 6,
            kitti_frames: 160,
            citypersons_sequences: 60,
        }
    }

    /// Full scale unless `CATDET_QUICK` is set in the environment.
    pub fn from_env() -> Self {
        if std::env::var_os("CATDET_QUICK").is_some() {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// Builds the KITTI-like dataset at this scale.
    pub fn kitti(&self) -> VideoDataset {
        kitti_like()
            .sequences(self.kitti_sequences)
            .frames_per_sequence(self.kitti_frames)
            .build()
    }

    /// Builds the CityPersons-like dataset at this scale.
    pub fn citypersons(&self) -> VideoDataset {
        citypersons_like()
            .sequences(self.citypersons_sequences)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_benchmark_size() {
        let s = Scale::full();
        assert_eq!(s.kitti_sequences * s.kitti_frames, 8001);
    }

    #[test]
    fn quick_is_smaller() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.kitti_sequences * q.kitti_frames < f.kitti_sequences * f.kitti_frames / 4);
    }
}
