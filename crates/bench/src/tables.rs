//! Console table formatting and result persistence.

use serde::Serialize;
use std::path::PathBuf;

/// Prints a header line for an experiment.
pub fn heading(id: &str, caption: &str) {
    println!();
    println!("=== {id}: {caption} ===");
    println!();
}

/// Formats a measured-vs-paper pair, flagging deviations.
pub fn cell(measured: f64, paper: f64, digits: usize) -> String {
    format!("{measured:.digits$} (paper {paper:.digits$})")
}

/// Writes an experiment result as JSON under `results/`.
///
/// Best-effort: failures to create the directory or file are reported to
/// stderr but do not abort the experiment.
pub fn save_json<T: Serialize>(id: &str, value: &T) {
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialise {id}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formats_both_numbers() {
        let s = cell(1.234, 1.2, 2);
        assert!(s.contains("1.23") && s.contains("1.20"));
    }
}
