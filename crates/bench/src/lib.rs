//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `table*`/`fig*` binary calls a library function from
//! [`experiments`], prints the paper's values next to the measured ones,
//! and writes a JSON record under `results/`. Run them all with:
//!
//! ```text
//! cargo run --release -p catdet-bench --bin table1
//! cargo run --release -p catdet-bench --bin table2
//! ...
//! cargo run --release -p catdet-bench --bin fig7
//! ```
//!
//! Scale: experiments default to the full KITTI-like dataset (21 sequences
//! × 381 frames, matching the benchmark's 8 008 frames). Set
//! `CATDET_QUICK=1` to run ~8x smaller versions while iterating.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod scale;
pub mod tables;

pub use scale::Scale;
