//! Serving-scheduler throughput: how modelled frames/s scales with worker
//! count and with the micro-batch window. The baseline future scaling PRs
//! (sharding, async backends) are measured against.

use catdet_serve::{
    bursty_workload, kitti_workload, mixed_workload, serve, AdmissionConfig, AutoscaleConfig,
    BurstProfile, ServeConfig, SystemKind,
};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

const STREAMS: usize = 8;
const FRAMES: usize = 12;

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_workers");
    group.throughput(Throughput::Elements((STREAMS * FRAMES) as u64));
    for workers in [1usize, 2, 4, 8] {
        let cfg = ServeConfig::new()
            .with_workers(workers)
            .with_max_batch(8)
            .with_queue_capacity(100_000);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &cfg, |b, cfg| {
            b.iter_batched(
                || mixed_workload(STREAMS, FRAMES, 9, SystemKind::CatdetA),
                |streams| serve(streams, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_batch_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_batch_window");
    group.throughput(Throughput::Elements((STREAMS * FRAMES) as u64));
    for window_ms in [0u64, 2, 5, 20] {
        let cfg = ServeConfig::new()
            .with_workers(4)
            .with_max_batch(8)
            .with_batch_window_s(window_ms as f64 / 1e3)
            .with_queue_capacity(100_000);
        group.bench_with_input(BenchmarkId::from_parameter(window_ms), &cfg, |b, cfg| {
            b.iter_batched(
                || kitti_workload(STREAMS, FRAMES, 9, SystemKind::CatdetA),
                |streams| serve(streams, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Control-plane overhead: the same bursty fleet with the control loop
/// off, with hysteresis autoscaling, and with autoscaling plus admission
/// control. The spread between the bars is the price of the feedback
/// machinery itself.
fn bench_control_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_control_plane");
    group.throughput(Throughput::Elements((STREAMS * FRAMES) as u64));
    let base = ServeConfig::new()
        .with_workers(2)
        .with_max_batch(4)
        .with_queue_capacity(8);
    let configs = [
        ("fixed", base),
        (
            "hysteresis",
            base.with_autoscale(
                AutoscaleConfig::hysteresis(1, 8)
                    .with_cooldown_ticks(0)
                    .with_scale_step(4)
                    .with_control_interval_s(0.1),
            ),
        ),
        (
            "hysteresis+token-bucket",
            base.with_autoscale(
                AutoscaleConfig::hysteresis(1, 8)
                    .with_cooldown_ticks(0)
                    .with_scale_step(4)
                    .with_control_interval_s(0.1),
            )
            .with_admission(AdmissionConfig::token_bucket(20.0, 8.0)),
        ),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter_batched(
                || {
                    bursty_workload(
                        STREAMS,
                        FRAMES,
                        9,
                        SystemKind::CatdetA,
                        BurstProfile::demo(),
                    )
                },
                |streams| serve(streams, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Stage-protocol overhead and payoff: the same fleet unfused (one
/// refinement launch per frame), fused at the stage boundary, and fused
/// with a wait window. The scheduler does strictly more bookkeeping when
/// fusing, so this group keeps the suspend/resume machinery honest.
fn bench_refinement_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_refine_fusion");
    group.throughput(Throughput::Elements((STREAMS * FRAMES) as u64));
    let base = ServeConfig::new()
        .with_workers(2)
        .with_max_batch(8)
        .with_queue_capacity(100_000);
    let configs = [
        ("unfused", base),
        ("fused", base.with_fuse_refinement(true)),
        (
            "fused+4ms-window",
            base.with_fuse_refinement(true)
                .with_refine_batch_window_s(0.004),
        ),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter_batched(
                || mixed_workload(STREAMS, FRAMES, 9, SystemKind::CatdetA),
                |streams| serve(streams, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_worker_scaling,
    bench_batch_window,
    bench_control_plane,
    bench_refinement_fusion
);
criterion_main!(benches);
