//! Geometry micro-benchmarks: NMS, Hungarian assignment, coverage grids
//! and greedy merging — the per-frame primitives of the CaTDet loop.

use catdet_geom::{greedy_merge, hungarian, nms_indices, Box2, CoverageGrid};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn boxes(n: usize) -> Vec<(Box2, f32)> {
    (0..n)
        .map(|i| {
            let x = (i * 37 % 1100) as f32;
            let y = (i * 53 % 300) as f32;
            (
                Box2::from_xywh(x, y, 60.0 + (i % 5) as f32 * 10.0, 45.0),
                1.0 - i as f32 / n as f32,
            )
        })
        .collect()
}

fn bench_nms(c: &mut Criterion) {
    let mut group = c.benchmark_group("nms");
    for n in [10usize, 50, 300] {
        let items = boxes(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter(|| nms_indices(criterion::black_box(items), 0.5))
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [5usize, 15, 40] {
        let costs: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|cidx| ((r * 31 + cidx * 17) % 97) as f64 / 97.0)
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &costs, |b, costs| {
            b.iter(|| hungarian(criterion::black_box(costs)))
        });
    }
    group.finish();
}

fn bench_coverage(c: &mut Criterion) {
    let items = boxes(25);
    c.bench_function("coverage_grid_25_regions", |b| {
        b.iter(|| {
            let mut g = CoverageGrid::new(1242.0, 375.0, 16);
            for (bx, _) in &items {
                g.add_box(&bx.dilate(30.0));
            }
            criterion::black_box(g.coverage_fraction())
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    let items: Vec<Box2> = boxes(20).into_iter().map(|(b, _)| b).collect();
    let cost = |b: &Box2| 2.0e-3 + b.area() as f64 * 1e-7;
    c.bench_function("greedy_merge_20_regions", |b| {
        b.iter(|| greedy_merge(criterion::black_box(&items), &cost))
    });
}

criterion_group!(
    benches,
    bench_nms,
    bench_hungarian,
    bench_coverage,
    bench_merge
);
criterion_main!(benches);
