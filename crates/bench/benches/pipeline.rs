//! End-to-end system throughput: frames per second of the whole simulated
//! pipeline (world ground truth → detectors → tracker → metrics-ready
//! detections) for each system of Fig. 1.

use catdet_core::{CaTDetSystem, CascadedSystem, DetectionSystem, SingleModelSystem};
use catdet_data::{kitti_like, VideoDataset};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn dataset() -> VideoDataset {
    kitti_like().sequences(1).frames_per_sequence(100).build()
}

fn bench_system<S: DetectionSystem + Clone>(
    c: &mut Criterion,
    name: &str,
    ds: &VideoDataset,
    system: S,
) {
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(ds.total_frames() as u64));
    group.bench_function(name, |b| {
        b.iter_batched(
            || system.clone(),
            |mut sys| {
                for seq in ds.sequences() {
                    sys.reset();
                    for frame in seq.frames() {
                        criterion::black_box(sys.process_frame(frame));
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let ds = dataset();
    bench_system(
        c,
        "single_resnet50",
        &ds,
        SingleModelSystem::resnet50_kitti(),
    );
    bench_system(c, "cascade_a", &ds, CascadedSystem::cascade_a());
    bench_system(c, "catdet_a", &ds, CaTDetSystem::catdet_a());
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
