//! Operation-model benchmarks: full-frame op counting and region-masked
//! accounting (these run once per frame inside every system, so they must
//! be cheap relative to the simulated inference itself).

use catdet_geom::Box2;
use catdet_nn::{presets, RetinaNetSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_opcount(c: &mut Criterion) {
    let res50 = presets::frcnn_resnet50(2);
    c.bench_function("frcnn_full_frame_macs", |b| {
        b.iter(|| criterion::black_box(&res50).full_frame_macs(1242, 375, 300))
    });
    c.bench_function("frcnn_masked_macs", |b| {
        b.iter(|| criterion::black_box(&res50).masked_macs(1242, 375, 0.35, 20))
    });

    let retina = RetinaNetSpec::resnet50(2);
    let regions: Vec<Box2> = (0..20)
        .map(|i| Box2::from_xywh((i * 55) as f32, 150.0, 70.0, 60.0))
        .collect();
    c.bench_function("retinanet_full_frame_macs", |b| {
        b.iter(|| criterion::black_box(&retina).full_frame_macs(1242, 375))
    });
    c.bench_function("retinanet_masked_macs", |b| {
        b.iter(|| criterion::black_box(&retina).masked_macs(1242, 375, &regions, 30.0))
    });
}

criterion_group!(benches, bench_opcount);
criterion_main!(benches);
