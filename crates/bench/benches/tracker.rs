//! Tracker throughput (paper §4.1: 1 082 fps single-thread on a Xeon
//! E5-2620 v4; our Rust implementation should comfortably exceed that).

use catdet_data::kitti_like;
use catdet_geom::Box2;
use catdet_track::{TrackDetection, Tracker, TrackerConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

/// Pre-computes a realistic detection stream from the simulator.
fn detection_stream(frames: usize) -> Vec<Vec<TrackDetection<u8>>> {
    let ds = kitti_like()
        .sequences(1)
        .frames_per_sequence(frames)
        .build();
    ds.sequences()[0]
        .frames()
        .iter()
        .map(|f| {
            f.ground_truth
                .iter()
                .map(|o| TrackDetection {
                    bbox: o.bbox,
                    score: 0.9,
                    class: o.class as u8,
                })
                .collect()
        })
        .collect()
}

fn bench_tracker(c: &mut Criterion) {
    let stream = detection_stream(200);
    let mut group = c.benchmark_group("tracker");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("kitti_stream_200_frames", |b| {
        b.iter_batched(
            || Tracker::<u8>::new(TrackerConfig::paper()),
            |mut tracker| {
                for dets in &stream {
                    tracker.update(dets);
                    criterion::black_box(tracker.predictions(1242.0, 375.0));
                }
            },
            BatchSize::SmallInput,
        )
    });

    // Heavier association: 50 objects per frame.
    let dense: Vec<Vec<TrackDetection<u8>>> = (0..50)
        .map(|f| {
            (0..50)
                .map(|i| TrackDetection {
                    bbox: Box2::from_xywh(
                        (i * 24) as f32 + f as f32,
                        100.0 + (i % 7) as f32 * 30.0,
                        40.0,
                        30.0,
                    ),
                    score: 0.9,
                    class: (i % 2) as u8,
                })
                .collect()
        })
        .collect();
    group.throughput(Throughput::Elements(dense.len() as u64));
    group.bench_function("dense_50_objects", |b| {
        b.iter_batched(
            || Tracker::<u8>::new(TrackerConfig::paper()),
            |mut tracker| {
                for dets in &dense {
                    tracker.update(dets);
                    criterion::black_box(tracker.predictions(1242.0, 375.0));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_tracker);
criterion_main!(benches);
