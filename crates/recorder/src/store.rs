//! The chunk store: append-only event intake, a time index over sealed
//! chunks, LRU retention, and snapshot storage for time-travel replay.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::chunk::{Chunk, ChunkKey};
use crate::event::Event;

/// A point-in-time capture of one stream's replayable state.
///
/// The payload is opaque to the recorder: the serving layer stores its
/// own snapshot struct (tracker state, queue/counter state) behind
/// `Arc<dyn Any>` and downcasts it back at replay time. Snapshots are
/// in-memory only — they hold live trait objects and are deliberately
/// excluded from the file codec.
#[derive(Clone)]
pub struct Snapshot {
    /// Virtual time the snapshot was taken at.
    pub t_s: f64,
    /// Shard the stream lived on at capture time.
    pub shard: usize,
    /// Fleet-wide stream id.
    pub stream: usize,
    /// The stream's completion sequence number at capture time (matches
    /// [`Event::Detection::seq`] of the last completed frame).
    pub seq: usize,
    /// Producer-defined replay state.
    pub payload: Arc<dyn Any + Send + Sync>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("t_s", &self.t_s)
            .field("shard", &self.shard)
            .field("stream", &self.stream)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

/// A sealed chunk plus its retention bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct SealedChunk {
    pub(crate) chunk: Chunk,
    /// Seal order — ties in the time index break on it for determinism.
    pub(crate) seq: u64,
    /// Last-touched stamp for LRU eviction (sealing and query hits bump it).
    pub(crate) stamp: u64,
}

/// Aggregate store statistics, for reporting and eviction-aware tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Events currently held (open + sealed chunks).
    pub events: usize,
    /// Open (still-filling) chunks.
    pub open_chunks: usize,
    /// Sealed chunks currently retained.
    pub sealed_chunks: usize,
    /// Chunks dropped by LRU retention so far.
    pub chunks_evicted: usize,
    /// Events dropped with those chunks.
    pub events_evicted: usize,
    /// Snapshots held.
    pub snapshots: usize,
    /// Encoded payload bytes across all held chunks.
    pub encoded_bytes: usize,
}

/// Append-only chunked columnar event store.
///
/// Events are routed to an open chunk per [`ChunkKey`]; a chunk seals
/// once it reaches `chunk_events` rows and enters the time index (sorted
/// scans use its `t_min`/`t_max`). When sealed chunks exceed
/// `retention_chunks`, the least-recently-used sealed chunk is evicted.
/// Open chunks and snapshots are never evicted.
pub struct ChunkStore {
    chunk_events: usize,
    retention_chunks: usize,
    pub(crate) open: BTreeMap<ChunkKey, Chunk>,
    pub(crate) sealed: Vec<SealedChunk>,
    snapshots: Vec<Snapshot>,
    clock: u64,
    seal_seq: u64,
    chunks_evicted: usize,
    events_evicted: usize,
    scratch: Vec<u64>,
}

impl std::fmt::Debug for ChunkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkStore")
            .field("chunk_events", &self.chunk_events)
            .field("retention_chunks", &self.retention_chunks)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ChunkStore {
    /// A store sealing chunks at `chunk_events` rows and retaining at most
    /// `retention_chunks` sealed chunks (`usize::MAX` for unbounded).
    ///
    /// Panics if `chunk_events` is zero — a chunk must hold at least one
    /// event.
    pub fn new(chunk_events: usize, retention_chunks: usize) -> Self {
        assert!(
            chunk_events >= 1,
            "recorder chunks must hold at least one event"
        );
        ChunkStore {
            chunk_events,
            retention_chunks,
            open: BTreeMap::new(),
            sealed: Vec::new(),
            snapshots: Vec::new(),
            clock: 0,
            seal_seq: 0,
            chunks_evicted: 0,
            events_evicted: 0,
            scratch: Vec::new(),
        }
    }

    /// Chunk capacity in events.
    pub fn chunk_events(&self) -> usize {
        self.chunk_events
    }

    /// Sealed-chunk retention budget.
    pub fn retention_chunks(&self) -> usize {
        self.retention_chunks
    }

    /// Appends one event recorded on `shard` at virtual time `t_s`.
    pub fn record(&mut self, t_s: f64, shard: usize, event: Event) {
        let key = ChunkKey {
            kind: event.kind(),
            shard,
            stream: event.stream(),
        };
        let cap = self.chunk_events;
        let chunk = self.open.entry(key).or_insert_with(|| Chunk::new(key, cap));
        chunk.push(t_s, &event, &mut self.scratch);
        if chunk.is_full() {
            let full = self.open.remove(&key).expect("open chunk present");
            self.seal(full);
        }
    }

    /// Stores a replay snapshot. Snapshots live outside the chunk/LRU
    /// machinery and survive any amount of event eviction.
    pub fn snapshot(
        &mut self,
        t_s: f64,
        shard: usize,
        stream: usize,
        seq: usize,
        payload: Arc<dyn Any + Send + Sync>,
    ) {
        self.snapshots.push(Snapshot {
            t_s,
            shard,
            stream,
            seq,
            payload,
        });
    }

    /// The latest snapshot of `stream` taken at or before `t_s`, if any.
    pub fn nearest_snapshot(&self, stream: usize, t_s: f64) -> Option<&Snapshot> {
        self.snapshots
            .iter()
            .filter(|s| s.stream == stream && s.t_s <= t_s)
            .max_by(|a, b| a.t_s.total_cmp(&b.t_s).then(a.seq.cmp(&b.seq)))
    }

    /// All snapshots, in capture order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Seals every open chunk into the time index. Call at end of run so
    /// queries and the file codec see a consistent, fully-indexed store.
    pub fn seal_open_chunks(&mut self) {
        let open = std::mem::take(&mut self.open);
        for (_, chunk) in open {
            if !chunk.is_empty() {
                self.seal(chunk);
            }
        }
    }

    /// Evicts least-recently-used sealed chunks until at most `keep`
    /// remain. Returns how many chunks were dropped.
    pub fn evict_to(&mut self, keep: usize) -> usize {
        let mut dropped = 0;
        while self.sealed.len() > keep {
            self.evict_lru();
            dropped += 1;
        }
        dropped
    }

    /// Current store statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            events: self.open.values().map(|c| c.len()).sum::<usize>()
                + self.sealed.iter().map(|s| s.chunk.len()).sum::<usize>(),
            open_chunks: self.open.len(),
            sealed_chunks: self.sealed.len(),
            chunks_evicted: self.chunks_evicted,
            events_evicted: self.events_evicted,
            snapshots: self.snapshots.len(),
            encoded_bytes: self.open.values().map(|c| c.encoded_bytes()).sum::<usize>()
                + self
                    .sealed
                    .iter()
                    .map(|s| s.chunk.encoded_bytes())
                    .sum::<usize>(),
        }
    }

    /// Marks a sealed chunk as recently used (query hits call this so hot
    /// ranges survive retention pressure).
    pub(crate) fn touch(&mut self, idx: usize) {
        self.clock += 1;
        self.sealed[idx].stamp = self.clock;
    }

    fn seal(&mut self, chunk: Chunk) {
        self.clock += 1;
        self.seal_seq += 1;
        let sealed = SealedChunk {
            chunk,
            seq: self.seal_seq,
            stamp: self.clock,
        };
        // Keep the time index sorted by (t_min, seal order); chunks are
        // few relative to events, so insertion into the sorted Vec is cheap.
        let pos = self.sealed.partition_point(|s| {
            s.chunk
                .t_min()
                .total_cmp(&sealed.chunk.t_min())
                .then(s.seq.cmp(&sealed.seq))
                .is_lt()
        });
        self.sealed.insert(pos, sealed);
        while self.sealed.len() > self.retention_chunks {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        if let Some((idx, _)) = self.sealed.iter().enumerate().min_by_key(|(_, s)| s.stamp) {
            let gone = self.sealed.remove(idx);
            self.chunks_evicted += 1;
            self.events_evicted += gone.chunk.len();
        }
    }

    /// Rebuilds a store from codec parts (file load).
    pub(crate) fn from_sealed(
        chunk_events: usize,
        retention_chunks: usize,
        chunks: Vec<Chunk>,
    ) -> Self {
        let mut store = ChunkStore::new(chunk_events, retention_chunks);
        for c in chunks {
            store.seal(c);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn det(stream: usize, seq: usize) -> Event {
        Event::Detection {
            stream,
            seq,
            frame_index: seq - 1,
            detections: 2,
            latency_s: 0.01,
            output_hash: seq as u64 * 1234567,
        }
    }

    #[test]
    fn seals_at_capacity_and_indexes_by_time() {
        let mut store = ChunkStore::new(2, usize::MAX);
        for i in 1..=5 {
            store.record(i as f64 * 0.1, 0, det(7, i));
        }
        let stats = store.stats();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.sealed_chunks, 2);
        assert_eq!(stats.open_chunks, 1);
        store.seal_open_chunks();
        let stats = store.stats();
        assert_eq!(stats.sealed_chunks, 3);
        assert_eq!(stats.open_chunks, 0);
        // Time index sorted by t_min.
        let mins: Vec<f64> = store.sealed.iter().map(|s| s.chunk.t_min()).collect();
        let mut sorted = mins.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(mins, sorted);
    }

    #[test]
    fn retention_evicts_least_recently_used() {
        let mut store = ChunkStore::new(1, 2);
        store.record(0.1, 0, det(1, 1));
        store.record(0.2, 0, det(1, 2));
        // Touch the older chunk so the newer-but-untouched one is the LRU
        // victim once a third chunk arrives.
        store.touch(0);
        store.record(0.3, 0, det(1, 3));
        let stats = store.stats();
        assert_eq!(stats.sealed_chunks, 2);
        assert_eq!(stats.chunks_evicted, 1);
        assert_eq!(stats.events_evicted, 1);
        let kept: Vec<f64> = store.sealed.iter().map(|s| s.chunk.t_min()).collect();
        assert!(kept.contains(&0.1) && kept.contains(&0.3), "kept {kept:?}");
    }

    #[test]
    fn evict_to_shrinks_to_budget() {
        let mut store = ChunkStore::new(1, usize::MAX);
        for i in 1..=6 {
            store.record(i as f64, 0, det(1, i));
        }
        assert_eq!(store.stats().sealed_chunks, 6);
        assert_eq!(store.evict_to(2), 4);
        assert_eq!(store.stats().sealed_chunks, 2);
        assert_eq!(store.stats().chunks_evicted, 4);
    }

    #[test]
    fn nearest_snapshot_picks_latest_at_or_before() {
        let mut store = ChunkStore::new(8, usize::MAX);
        store.snapshot(1.0, 0, 5, 10, Arc::new(10usize));
        store.snapshot(2.0, 0, 5, 20, Arc::new(20usize));
        store.snapshot(1.5, 0, 6, 15, Arc::new(15usize));
        assert_eq!(store.nearest_snapshot(5, 2.5).unwrap().seq, 20);
        assert_eq!(store.nearest_snapshot(5, 1.9).unwrap().seq, 10);
        assert!(store.nearest_snapshot(5, 0.5).is_none());
        assert_eq!(store.nearest_snapshot(6, 9.0).unwrap().seq, 15);
    }

    #[test]
    fn fleet_level_events_key_without_stream() {
        let mut store = ChunkStore::new(4, usize::MAX);
        store.record(
            0.5,
            1,
            Event::Scale {
                from_workers: 1,
                to_workers: 2,
                reason: 3,
            },
        );
        let key = *store.open.keys().next().unwrap();
        assert_eq!(key.kind, EventKind::Scale);
        assert_eq!(key.shard, 1);
        assert_eq!(key.stream, None);
    }

    #[test]
    #[should_panic(expected = "recorder chunks must hold at least one event")]
    fn zero_capacity_rejected() {
        ChunkStore::new(0, usize::MAX);
    }
}
