//! Flight recorder: an append-only, chunked, columnar event store with a
//! time index, bounded retention, telemetry queries, and the snapshot
//! hooks that power bit-exact time-travel replay.
//!
//! ```text
//!            record(t, shard, event)
//!                     │
//!        ┌────────────▼─────────────┐   seal at chunk_events rows
//!        │ open chunks              │ ───────────────────────────┐
//!        │ BTreeMap<ChunkKey,Chunk> │                            │
//!        └──────────────────────────┘                            ▼
//!   ChunkKey = (kind, shard, stream)              ┌──────────────────────┐
//!   Chunk    = struct-of-arrays columns,          │ time index           │
//!              delta/zigzag/varint encoded        │ sealed chunks sorted │
//!              (column 0 = virtual time)          │ by (t_min, seal seq) │
//!                                                 └──────────┬───────────┘
//!                                 LRU eviction when over     │  scan(Query)
//!                                 retention_chunks ◄─────────┘  latency_stats
//! ```
//!
//! The [`FlightRecorder`] trait is the producer-side seam: the serving
//! engine and the staged-detector drive loop talk to `&mut dyn
//! FlightRecorder`, and the default implementation ([`NullRecorder`])
//! makes every hook a no-op so the hot path pays one virtual `enabled()`
//! check when recording is off. [`SharedRecorder`] is the live
//! implementation: a cheaply-clonable handle over one [`ChunkStore`]
//! that per-shard engines write into and queries read out of.

#![warn(missing_docs)]

mod chunk;
mod codec;
mod event;
mod query;
mod store;

pub use chunk::{Chunk, ChunkKey, VarintCol};
pub use codec::{decode, encode, read_file, write_file, DecodeError};
pub use event::{
    Event, EventKind, POLICY_DEGRADED_OFF, POLICY_DEGRADED_ON, STAGE_PROPOSAL, STAGE_REFINEMENT,
};
pub use query::{LatencySummary, Query, RecordedEvent, RollingWindow};
pub use store::{ChunkStore, Snapshot, StoreStats};

use std::any::Any;
use std::sync::{Arc, Mutex};

/// Producer-side recording hooks, threaded through the serving engine and
/// the staged drive loop.
///
/// Every method has a no-op default so `NullRecorder` (and any partial
/// implementation) costs nothing beyond the virtual call; producers guard
/// their event-assembly work behind [`enabled`](FlightRecorder::enabled)
/// so the disabled path does not even build events.
///
/// Recorders are `Send`: a shard engine owns its writing end, and the
/// fleet may move whole engines onto pool threads between barriers.
pub trait FlightRecorder: Send {
    /// Whether events are being kept. Producers skip event assembly
    /// entirely when this is false.
    fn enabled(&self) -> bool {
        false
    }

    /// Books one event at virtual time `t_s`.
    fn record(&mut self, _t_s: f64, _event: Event) {}

    /// Books a replay snapshot of `stream` at completion sequence `seq`.
    /// The payload is the producer's own state capture (the recorder
    /// stores it opaquely).
    fn snapshot(
        &mut self,
        _t_s: f64,
        _stream: usize,
        _seq: usize,
        _payload: Arc<dyn Any + Send + Sync>,
    ) {
    }

    /// How often (in completed frames per stream) the producer should
    /// capture a snapshot; `0` disables snapshots.
    fn snapshot_interval(&self) -> usize {
        0
    }

    /// Drains any events the implementation has buffered into the backing
    /// store. Producers call this once their run finishes, before the
    /// store is sealed or queried.
    fn flush(&mut self) {}
}

/// The always-off recorder: every hook is a no-op and
/// [`enabled`](FlightRecorder::enabled) is false, so producers skip all
/// recording work.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl FlightRecorder for NullRecorder {}

/// A cheaply-clonable handle over one shared [`ChunkStore`].
///
/// A fleet run creates one `SharedRecorder`, hands each shard engine a
/// [`handle`](SharedRecorder::handle) (which stamps that shard id on
/// everything it books), and keeps the original for fleet-level events,
/// queries, and replay after the run.
#[derive(Clone)]
pub struct SharedRecorder {
    store: Arc<Mutex<ChunkStore>>,
    snapshot_every: usize,
}

impl std::fmt::Debug for SharedRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRecorder")
            .field("snapshot_every", &self.snapshot_every)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedRecorder {
    /// A recorder over a fresh store. `chunk_events` is the chunk seal
    /// size (must be ≥ 1), `retention_chunks` the sealed-chunk budget
    /// (`usize::MAX` for unbounded), `snapshot_every` the per-stream
    /// snapshot cadence in completed frames (`0` disables snapshots and
    /// with them time-travel replay).
    pub fn new(chunk_events: usize, retention_chunks: usize, snapshot_every: usize) -> Self {
        SharedRecorder {
            store: Arc::new(Mutex::new(ChunkStore::new(chunk_events, retention_chunks))),
            snapshot_every,
        }
    }

    /// A per-shard [`FlightRecorder`] that stamps `shard` on everything
    /// it books into the shared store.
    pub fn handle(&self, shard: usize) -> ShardRecorder {
        ShardRecorder {
            store: Arc::clone(&self.store),
            shard,
            snapshot_every: self.snapshot_every,
            buf: Vec::with_capacity(FLUSH_EVERY),
        }
    }

    /// A per-shard [`FlightRecorder`] that buffers **everything** — events
    /// and snapshots — locally, touching the shared store only on
    /// [`flush`](FlightRecorder::flush).
    ///
    /// This is the writing end the fleet hands its shard engines. A
    /// [`ShardRecorder`] drains opportunistically mid-run, so with engines
    /// on real threads the store would ingest events in whatever order the
    /// OS scheduled the threads — chunk boundaries, seal sequence, LRU
    /// stamps and snapshot order would all vary run to run. The barrier
    /// handle defers every store write to the flush points the fleet
    /// invokes in **shard-id order at its lock-step barriers**, making the
    /// store's ingest order a pure function of virtual time at any thread
    /// count.
    pub fn barrier_handle(&self, shard: usize) -> BarrierRecorder {
        BarrierRecorder {
            store: Arc::clone(&self.store),
            shard,
            snapshot_every: self.snapshot_every,
            events: Vec::with_capacity(FLUSH_EVERY),
            snaps: Vec::new(),
        }
    }

    /// Books one event directly (fleet-level producers that already know
    /// the shard, e.g. migration bookkeeping).
    pub fn record(&self, t_s: f64, shard: usize, event: Event) {
        self.store
            .lock()
            .expect("recorder lock")
            .record(t_s, shard, event);
    }

    /// Runs `f` with exclusive access to the underlying store — the door
    /// to [`ChunkStore::scan`], [`ChunkStore::latency_stats`], eviction,
    /// and the file codec.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut ChunkStore) -> R) -> R {
        f(&mut self.store.lock().expect("recorder lock"))
    }

    /// Seals every open chunk (call once a run finishes, before queries
    /// or saving).
    pub fn seal_open_chunks(&self) {
        self.with_store(|s| s.seal_open_chunks());
    }

    /// Current store statistics.
    pub fn stats(&self) -> StoreStats {
        self.with_store(|s| s.stats())
    }

    /// Scans matching events (see [`ChunkStore::scan`]).
    pub fn scan(&self, query: &Query) -> Vec<RecordedEvent> {
        self.with_store(|s| s.scan(query))
    }

    /// Nearest-rank percentiles over matching recorded latencies (see
    /// [`ChunkStore::latency_stats`]).
    pub fn latency_stats(&self, query: &Query) -> LatencySummary {
        self.with_store(|s| s.latency_stats(query))
    }

    /// The latest snapshot of `stream` at or before `t_s`, if one was
    /// captured and survives.
    pub fn nearest_snapshot(&self, stream: usize, t_s: f64) -> Option<Snapshot> {
        self.with_store(|s| s.nearest_snapshot(stream, t_s).cloned())
    }

    /// Saves the recorded events to `path` (snapshots are in-memory only;
    /// see [`codec`](crate::write_file) docs).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.with_store(|s| {
            s.seal_open_chunks();
            codec::write_file(s, path)
        })
    }
}

/// Per-shard writing end of a [`SharedRecorder`]; implements
/// [`FlightRecorder`] with recording on.
///
/// Events are buffered locally and drained into the shared store in
/// batches of [`FLUSH_EVERY`]: the producer's hot path pays one `Vec`
/// push, and the store's structures are touched cache-warm once per
/// batch instead of cache-cold once per event. Hot-path drains are
/// opportunistic (`try_lock`) so shard engines never stall behind each
/// other; the buffer drains unconditionally on
/// [`flush`](FlightRecorder::flush), before every snapshot, and on drop,
/// so per-chunk event order is exactly record order.
pub struct ShardRecorder {
    store: Arc<Mutex<ChunkStore>>,
    shard: usize,
    snapshot_every: usize,
    buf: Vec<(f64, Event)>,
}

/// Buffered events a [`ShardRecorder`] holds before draining into the
/// shared store under one lock.
pub const FLUSH_EVERY: usize = 256;

impl Clone for ShardRecorder {
    /// A clone is a fresh writing end over the same store: the original's
    /// buffered (not yet flushed) events stay with the original.
    fn clone(&self) -> Self {
        ShardRecorder {
            store: Arc::clone(&self.store),
            shard: self.shard,
            snapshot_every: self.snapshot_every,
            buf: Vec::with_capacity(FLUSH_EVERY),
        }
    }
}

impl Drop for ShardRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for ShardRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRecorder")
            .field("shard", &self.shard)
            .field("snapshot_every", &self.snapshot_every)
            .finish()
    }
}

impl FlightRecorder for ShardRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, t_s: f64, event: Event) {
        self.buf.push((t_s, event));
        if self.buf.len() >= FLUSH_EVERY {
            // Opportunistic drain: if another shard holds the store, keep
            // buffering and retry on the next push instead of stalling the
            // engine behind a lock convoy. Forced drains (snapshots, the
            // final flush) still block, so nothing is ever lost.
            if let Ok(mut store) = self.store.try_lock() {
                for (t_s, event) in self.buf.drain(..) {
                    store.record(t_s, self.shard, event);
                }
            }
        }
    }

    fn snapshot(
        &mut self,
        t_s: f64,
        stream: usize,
        seq: usize,
        payload: Arc<dyn Any + Send + Sync>,
    ) {
        // Flush first so the store never holds a snapshot that precedes
        // events still sitting in this handle's buffer.
        self.flush();
        self.store
            .lock()
            .expect("recorder lock")
            .snapshot(t_s, self.shard, stream, seq, payload);
    }

    fn snapshot_interval(&self) -> usize {
        self.snapshot_every
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut store = self.store.lock().expect("recorder lock");
        for (t_s, event) in self.buf.drain(..) {
            store.record(t_s, self.shard, event);
        }
    }
}

/// Fully-buffering writing end of a [`SharedRecorder`] for barrier-
/// synchronised producers (see
/// [`barrier_handle`](SharedRecorder::barrier_handle)).
///
/// Unlike [`ShardRecorder`], nothing reaches the store until
/// [`flush`](FlightRecorder::flush): events and snapshots accumulate in
/// record order and drain under one lock, events first (so no snapshot
/// ever precedes the events that led to it), then snapshots. Dropping the
/// handle flushes, so a forgotten flush loses nothing — it only books
/// later than the barrier discipline intended.
pub struct BarrierRecorder {
    store: Arc<Mutex<ChunkStore>>,
    shard: usize,
    snapshot_every: usize,
    events: Vec<(f64, Event)>,
    snaps: Vec<(f64, usize, usize, Arc<dyn Any + Send + Sync>)>,
}

impl Drop for BarrierRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for BarrierRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BarrierRecorder")
            .field("shard", &self.shard)
            .field("snapshot_every", &self.snapshot_every)
            .field("buffered_events", &self.events.len())
            .field("buffered_snapshots", &self.snaps.len())
            .finish()
    }
}

impl FlightRecorder for BarrierRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, t_s: f64, event: Event) {
        self.events.push((t_s, event));
    }

    fn snapshot(
        &mut self,
        t_s: f64,
        stream: usize,
        seq: usize,
        payload: Arc<dyn Any + Send + Sync>,
    ) {
        self.snaps.push((t_s, stream, seq, payload));
    }

    fn snapshot_interval(&self) -> usize {
        self.snapshot_every
    }

    fn flush(&mut self) {
        if self.events.is_empty() && self.snaps.is_empty() {
            return;
        }
        let mut store = self.store.lock().expect("recorder lock");
        for (t_s, event) in self.events.drain(..) {
            store.record(t_s, self.shard, event);
        }
        for (t_s, stream, seq, payload) in self.snaps.drain(..) {
            store.snapshot(t_s, self.shard, stream, seq, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let mut null = NullRecorder;
        assert!(!null.enabled());
        assert_eq!(null.snapshot_interval(), 0);
        null.record(
            0.0,
            Event::Admission {
                stream: 0,
                reason: 0,
            },
        );
        null.snapshot(0.0, 0, 0, Arc::new(()));
    }

    #[test]
    fn shard_handles_stamp_their_shard() {
        let shared = SharedRecorder::new(4, usize::MAX, 8);
        let mut h0 = shared.handle(0);
        let mut h2 = shared.handle(2);
        assert!(h0.enabled());
        assert_eq!(h0.snapshot_interval(), 8);
        h0.record(
            0.1,
            Event::Admission {
                stream: 1,
                reason: 0,
            },
        );
        h2.record(
            0.2,
            Event::Admission {
                stream: 9,
                reason: 1,
            },
        );
        shared.record(
            0.3,
            5,
            Event::Scale {
                from_workers: 1,
                to_workers: 2,
                reason: 0,
            },
        );
        // Handles buffer; the store sees their events once they flush.
        assert_eq!(shared.scan(&Query::all()).len(), 1);
        h0.flush();
        h2.flush();
        let events = shared.scan(&Query::all());
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].shard, 0);
        assert_eq!(events[1].shard, 2);
        assert_eq!(events[2].shard, 5);
    }

    #[test]
    fn barrier_handle_defers_everything_until_flush() {
        let shared = SharedRecorder::new(4, usize::MAX, 2);
        let mut h = shared.barrier_handle(3);
        assert!(h.enabled());
        assert_eq!(h.snapshot_interval(), 2);
        for i in 0..2 * FLUSH_EVERY {
            h.record(
                i as f64 * 0.001,
                Event::Admission {
                    stream: 0,
                    reason: 0,
                },
            );
        }
        h.snapshot(0.1, 0, 2, Arc::new(7usize));
        // Nothing lands before the barrier, however much is buffered.
        assert_eq!(shared.scan(&Query::all()).len(), 0);
        assert!(shared.nearest_snapshot(0, 1.0).is_none());
        h.flush();
        assert_eq!(shared.scan(&Query::all()).len(), 2 * FLUSH_EVERY);
        assert_eq!(shared.nearest_snapshot(0, 1.0).expect("snapshot").shard, 3);
    }

    #[test]
    fn barrier_handle_flushes_on_drop() {
        let shared = SharedRecorder::new(4, usize::MAX, 0);
        {
            let mut h = shared.barrier_handle(1);
            h.record(
                0.5,
                Event::Admission {
                    stream: 2,
                    reason: 1,
                },
            );
        }
        assert_eq!(shared.scan(&Query::all()).len(), 1);
    }

    #[test]
    fn snapshots_round_trip_through_shared_handle() {
        let shared = SharedRecorder::new(4, usize::MAX, 2);
        let mut h = shared.handle(1);
        h.snapshot(0.5, 7, 2, Arc::new(String::from("state")));
        let snap = shared.nearest_snapshot(7, 1.0).expect("snapshot");
        assert_eq!(snap.shard, 1);
        assert_eq!(snap.seq, 2);
        let payload = snap.payload.downcast_ref::<String>().expect("downcast");
        assert_eq!(payload, "state");
    }
}
