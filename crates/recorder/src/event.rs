//! The recorder's event vocabulary: nine kinds of telemetry, each
//! reduced to plain integers/floats so the store can lay them out
//! column-wise.
//!
//! Enum-valued fields of the producing crates (scale reasons, admission
//! reasons, batch stages) travel as small integer codes — the recorder
//! sits below every catdet crate and cannot name their types. Producers
//! own the code mapping; [`Event::columns`] documents the column order
//! each kind is stored under.

/// Batch-stage code for [`Event::Batch::stage`]: a proposal micro-batch.
pub const STAGE_PROPOSAL: u64 = 0;
/// Batch-stage code for [`Event::Batch::stage`]: a refinement dispatch.
pub const STAGE_REFINEMENT: u64 = 1;

/// Decision code for [`Event::Policy::decision`]: admission downgraded the
/// stream's frame policy one rung (downgrade-before-drop engaged).
///
/// Codes 0–2 are the per-frame policy decisions owned by the core crate
/// (detect / coast / stride-skip); the two degrade-transition codes live
/// above that range.
pub const POLICY_DEGRADED_ON: u64 = 3;
/// Decision code for [`Event::Policy::decision`]: the stream's frame
/// policy was restored to its configured rung.
pub const POLICY_DEGRADED_OFF: u64 = 4;

/// The kind of a recorded event — one per telemetry source in the serving
/// fleet. Doubles as the chunk-partitioning key (chunks are homogeneous in
/// kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// One completed frame: its output summary and serving latency.
    Detection,
    /// Tracker population after a completed frame.
    Track,
    /// One stream's ride on a dispatched GPU batch.
    Batch,
    /// An autoscaler worker-count change.
    Scale,
    /// An admission-control rejection.
    Admission,
    /// A live stream migration between shards.
    Migration,
    /// A connection-lifecycle event at the network front door.
    Conn,
    /// A frame-policy decision (coast / stride-skip) or degrade transition.
    Policy,
    /// One stream's arrival-rate forecast at a control tick.
    Forecast,
}

impl EventKind {
    /// Every kind, in stable code order.
    pub const ALL: [EventKind; 9] = [
        EventKind::Detection,
        EventKind::Track,
        EventKind::Batch,
        EventKind::Scale,
        EventKind::Admission,
        EventKind::Migration,
        EventKind::Conn,
        EventKind::Policy,
        EventKind::Forecast,
    ];

    /// Stable wire/CLI code of the kind.
    pub fn code(&self) -> u8 {
        match self {
            EventKind::Detection => 0,
            EventKind::Track => 1,
            EventKind::Batch => 2,
            EventKind::Scale => 3,
            EventKind::Admission => 4,
            EventKind::Migration => 5,
            EventKind::Conn => 6,
            EventKind::Policy => 7,
            EventKind::Forecast => 8,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        EventKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Detection => "detection",
            EventKind::Track => "track",
            EventKind::Batch => "batch",
            EventKind::Scale => "scale",
            EventKind::Admission => "admission",
            EventKind::Migration => "migration",
            EventKind::Conn => "conn",
            EventKind::Policy => "policy",
            EventKind::Forecast => "forecast",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Column names of the kind's struct-of-arrays layout, in storage
    /// order (the time column is implicit and comes first in every chunk).
    pub fn columns(&self) -> &'static [&'static str] {
        match self {
            EventKind::Detection => &["seq", "frame", "detections", "latency_bits", "output_hash"],
            EventKind::Track => &["frame", "live_tracks"],
            EventKind::Batch => &["worker", "stage", "size"],
            EventKind::Scale => &["from_workers", "to_workers", "reason"],
            EventKind::Admission => &["reason"],
            EventKind::Migration => &["from_shard", "to_shard", "backlog_moved"],
            EventKind::Conn => &["code", "frame", "detail"],
            EventKind::Policy => &["frame", "decision", "streak"],
            EventKind::Forecast => &["rate_bits", "confidence_bits", "phase"],
        }
    }
}

/// One telemetry event, ready to append to the store.
///
/// Per-stream kinds carry their stream id here; it becomes part of the
/// chunk key (never a column), so per-stream scans touch only that
/// stream's chunks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A frame completed serving.
    Detection {
        /// Fleet-wide stream id.
        stream: usize,
        /// 1-based per-stream completion sequence number (the stream's
        /// `processed` counter after this frame). Replay uses it to detect
        /// gaps left by chunk eviction.
        seq: usize,
        /// The frame's index within its source sequence.
        frame_index: usize,
        /// Number of detections in the frame's output.
        detections: usize,
        /// Serving latency (completion − arrival, virtual seconds).
        latency_s: f64,
        /// Order-sensitive hash of the full detection list — the
        /// bit-exactness fingerprint replay verifies against.
        output_hash: u64,
    },
    /// Tracker state after a completed frame.
    Track {
        /// Fleet-wide stream id.
        stream: usize,
        /// The frame's index within its source sequence.
        frame_index: usize,
        /// Live tracks (including coasting ones) after the update.
        live_tracks: usize,
    },
    /// One stream's participation in a dispatched GPU batch (a batch of
    /// `size` streams is recorded as `size` rows, one per stream, so
    /// per-stream scans see their own rides without decoding others).
    Batch {
        /// Contributing fleet-wide stream id.
        stream: usize,
        /// Worker slot that ran (or opened) the dispatch.
        worker: usize,
        /// [`STAGE_PROPOSAL`] or [`STAGE_REFINEMENT`].
        stage: u64,
        /// Total streams that shared the dispatch.
        size: usize,
    },
    /// The autoscaler changed the active worker count.
    Scale {
        /// Active workers before.
        from_workers: usize,
        /// Active workers after.
        to_workers: usize,
        /// Producer-defined reason code (see the serving crate's mapping).
        reason: u64,
    },
    /// Admission control refused a frame.
    Admission {
        /// Fleet-wide stream id of the refused frame.
        stream: usize,
        /// Producer-defined reason code.
        reason: u64,
    },
    /// A stream migrated between shards.
    Migration {
        /// Fleet-wide stream id.
        stream: usize,
        /// Shard the stream left.
        from_shard: usize,
        /// Shard the stream joined.
        to_shard: usize,
        /// Queued frames relocated with it.
        backlog_moved: usize,
    },
    /// A connection-lifecycle event at the network front door
    /// (connect / disconnect / throttle / resume / door-reject).
    Conn {
        /// Fleet-wide stream id (the client's connection).
        stream: usize,
        /// Producer-defined lifecycle code (see the net crate's mapping).
        code: u64,
        /// Frame index involved (resume cursor, rejected frame, …).
        frame: usize,
        /// Producer-defined extra (window occupancy, frames offered, …).
        detail: u64,
    },
    /// A frame-policy decision on a stream. Detect frames are *not*
    /// recorded (keeping the always-detect byte stream untouched); rows
    /// appear only for coasted/stride-skipped frames and for
    /// degrade-transition markers ([`POLICY_DEGRADED_ON`] /
    /// [`POLICY_DEGRADED_OFF`], which carry `frame_index = 0`).
    Policy {
        /// Fleet-wide stream id.
        stream: usize,
        /// The frame's index within its source sequence.
        frame_index: usize,
        /// Producer-defined decision code (see the core crate's
        /// `PolicyDecision` mapping and the degrade codes above).
        decision: u64,
        /// Consecutive coasted frames after this decision.
        streak: usize,
    },
    /// One stream's arrival-rate forecast, booked at a control tick when
    /// a predictive control-plane consumer is active.
    Forecast {
        /// Fleet-wide stream id.
        stream: usize,
        /// Forecast arrival rate over the horizon (frames/s).
        rate_fps: f64,
        /// Forecaster confidence in `[0, 1]`.
        confidence: f64,
        /// Producer-defined burst-phase code (see the serving crate's
        /// `BurstPhase` mapping).
        phase: u64,
    },
}

impl Event {
    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Detection { .. } => EventKind::Detection,
            Event::Track { .. } => EventKind::Track,
            Event::Batch { .. } => EventKind::Batch,
            Event::Scale { .. } => EventKind::Scale,
            Event::Admission { .. } => EventKind::Admission,
            Event::Migration { .. } => EventKind::Migration,
            Event::Conn { .. } => EventKind::Conn,
            Event::Policy { .. } => EventKind::Policy,
            Event::Forecast { .. } => EventKind::Forecast,
        }
    }

    /// The stream the event belongs to, if any ([`Event::Scale`] is
    /// fleet-level).
    pub fn stream(&self) -> Option<usize> {
        match self {
            Event::Detection { stream, .. }
            | Event::Track { stream, .. }
            | Event::Batch { stream, .. }
            | Event::Admission { stream, .. }
            | Event::Migration { stream, .. }
            | Event::Conn { stream, .. }
            | Event::Policy { stream, .. }
            | Event::Forecast { stream, .. } => Some(*stream),
            Event::Scale { .. } => None,
        }
    }

    /// Flattens the event into its kind's column values (storage order,
    /// matching [`EventKind::columns`]).
    pub(crate) fn column_values(&self, out: &mut Vec<u64>) {
        out.clear();
        match *self {
            Event::Detection {
                seq,
                frame_index,
                detections,
                latency_s,
                output_hash,
                ..
            } => out.extend([
                seq as u64,
                frame_index as u64,
                detections as u64,
                latency_s.to_bits(),
                output_hash,
            ]),
            Event::Track {
                frame_index,
                live_tracks,
                ..
            } => out.extend([frame_index as u64, live_tracks as u64]),
            Event::Batch {
                worker,
                stage,
                size,
                ..
            } => out.extend([worker as u64, stage, size as u64]),
            Event::Scale {
                from_workers,
                to_workers,
                reason,
            } => out.extend([from_workers as u64, to_workers as u64, reason]),
            Event::Admission { reason, .. } => out.extend([reason]),
            Event::Migration {
                from_shard,
                to_shard,
                backlog_moved,
                ..
            } => out.extend([from_shard as u64, to_shard as u64, backlog_moved as u64]),
            Event::Conn {
                code,
                frame,
                detail,
                ..
            } => out.extend([code, frame as u64, detail]),
            Event::Policy {
                frame_index,
                decision,
                streak,
                ..
            } => out.extend([frame_index as u64, decision, streak as u64]),
            Event::Forecast {
                rate_fps,
                confidence,
                phase,
                ..
            } => out.extend([rate_fps.to_bits(), confidence.to_bits(), phase]),
        }
    }

    /// Rebuilds an event from its chunk key and column values (the decode
    /// half of [`column_values`](Self::column_values)).
    pub(crate) fn from_column_values(
        kind: EventKind,
        stream: Option<usize>,
        vals: &[u64],
    ) -> Option<Event> {
        Some(match kind {
            EventKind::Detection => Event::Detection {
                stream: stream?,
                seq: *vals.first()? as usize,
                frame_index: *vals.get(1)? as usize,
                detections: *vals.get(2)? as usize,
                latency_s: f64::from_bits(*vals.get(3)?),
                output_hash: *vals.get(4)?,
            },
            EventKind::Track => Event::Track {
                stream: stream?,
                frame_index: *vals.first()? as usize,
                live_tracks: *vals.get(1)? as usize,
            },
            EventKind::Batch => Event::Batch {
                stream: stream?,
                worker: *vals.first()? as usize,
                stage: *vals.get(1)?,
                size: *vals.get(2)? as usize,
            },
            EventKind::Scale => Event::Scale {
                from_workers: *vals.first()? as usize,
                to_workers: *vals.get(1)? as usize,
                reason: *vals.get(2)?,
            },
            EventKind::Admission => Event::Admission {
                stream: stream?,
                reason: *vals.first()?,
            },
            EventKind::Migration => Event::Migration {
                stream: stream?,
                from_shard: *vals.first()? as usize,
                to_shard: *vals.get(1)? as usize,
                backlog_moved: *vals.get(2)? as usize,
            },
            EventKind::Conn => Event::Conn {
                stream: stream?,
                code: *vals.first()?,
                frame: *vals.get(1)? as usize,
                detail: *vals.get(2)?,
            },
            EventKind::Policy => Event::Policy {
                stream: stream?,
                frame_index: *vals.first()? as usize,
                decision: *vals.get(1)?,
                streak: *vals.get(2)? as usize,
            },
            EventKind::Forecast => Event::Forecast {
                stream: stream?,
                rate_fps: f64::from_bits(*vals.first()?),
                confidence: f64::from_bits(*vals.get(1)?),
                phase: *vals.get(2)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_and_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_code(k.code()), Some(k));
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_code(99), None);
        assert_eq!(EventKind::from_name("nope"), None);
    }

    #[test]
    fn column_values_round_trip_every_kind() {
        let events = [
            Event::Detection {
                stream: 3,
                seq: 7,
                frame_index: 41,
                detections: 5,
                latency_s: 0.01625,
                output_hash: 0xDEAD_BEEF_CAFE_F00D,
            },
            Event::Track {
                stream: 3,
                frame_index: 41,
                live_tracks: 4,
            },
            Event::Batch {
                stream: 2,
                worker: 1,
                stage: STAGE_REFINEMENT,
                size: 6,
            },
            Event::Scale {
                from_workers: 2,
                to_workers: 5,
                reason: 1,
            },
            Event::Admission {
                stream: 9,
                reason: 0,
            },
            Event::Migration {
                stream: 17,
                from_shard: 0,
                to_shard: 3,
                backlog_moved: 11,
            },
            Event::Conn {
                stream: 4,
                code: 2,
                frame: 23,
                detail: 8,
            },
            Event::Policy {
                stream: 6,
                frame_index: 12,
                decision: 1,
                streak: 3,
            },
            Event::Forecast {
                stream: 8,
                rate_fps: 27.5,
                confidence: 0.8125,
                phase: 2,
            },
        ];
        let mut vals = Vec::new();
        for e in events {
            e.column_values(&mut vals);
            assert_eq!(vals.len(), e.kind().columns().len());
            let back = Event::from_column_values(e.kind(), e.stream(), &vals).unwrap();
            assert_eq!(back, e);
        }
    }
}
