//! Columnar chunks: fixed-capacity, struct-of-arrays event storage with
//! delta/varint-compressed columns.
//!
//! A [`Chunk`] holds up to `capacity` events of a single [`EventKind`],
//! all belonging to one (shard, stream) partition. The virtual-time
//! column stores `f64::to_bits` values; every column (time included) is
//! compressed the same way: consecutive values are wrapping-subtracted,
//! zigzag-mapped to keep small magnitudes small in either direction, and
//! varint-encoded. Monotone virtual time therefore costs one or two bytes
//! per row, and near-constant integer columns (worker ids, reasons) cost
//! one byte per row.

use crate::event::{Event, EventKind};

/// Identifies the partition a chunk belongs to: event kind, shard, and —
/// for per-stream kinds — the stream. Fleet-level kinds ([`EventKind::Scale`])
/// use `stream: None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkKey {
    /// The kind every row in the chunk shares.
    pub kind: EventKind,
    /// Shard the events were recorded on.
    pub shard: usize,
    /// Stream the events belong to (`None` for fleet-level kinds).
    pub stream: Option<usize>,
}

/// A delta/zigzag/varint-compressed column of `u64` values.
///
/// Appends are O(1); decoding walks the byte stream front to back. The
/// encoding is lossless for arbitrary `u64`s (wrapping arithmetic), so
/// `f64` bit patterns and hashes survive untouched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarintCol {
    bytes: Vec<u8>,
    last: u64,
    len: usize,
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl VarintCol {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Appends a value (delta vs. the previous value, zigzag, varint).
    pub fn push(&mut self, v: u64) {
        let delta = v.wrapping_sub(self.last) as i64;
        let mut z = zigzag(delta);
        loop {
            let byte = (z & 0x7f) as u8;
            z >>= 7;
            if z == 0 {
                self.bytes.push(byte);
                break;
            }
            self.bytes.push(byte | 0x80);
        }
        self.last = v;
        self.len += 1;
    }

    /// Decodes the full column back into values.
    pub fn decode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut prev = 0u64;
        let mut i = 0;
        while out.len() < self.len {
            let mut z = 0u64;
            let mut shift = 0;
            loop {
                let byte = self.bytes[i];
                i += 1;
                z |= ((byte & 0x7f) as u64) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            prev = prev.wrapping_add(unzigzag(z) as u64);
            out.push(prev);
        }
        out
    }

    /// Raw encoded bytes (for the file codec).
    pub(crate) fn raw(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstructs a column from its encoded bytes and length (the file
    /// codec's decode half). `last` is recomputed by decoding, so further
    /// appends stay consistent.
    pub(crate) fn from_raw(bytes: Vec<u8>, len: usize) -> Self {
        let mut col = VarintCol {
            bytes,
            last: 0,
            len,
        };
        col.last = col.decode().last().copied().unwrap_or(0);
        col
    }
}

/// A fixed-capacity, struct-of-arrays block of events of one kind.
///
/// Column 0 is always virtual time (`f64::to_bits`); the remaining
/// columns follow [`EventKind::columns`]. The chunk tracks its covered
/// time range (`t_min`/`t_max`) for the store's time index.
#[derive(Debug, Clone)]
pub struct Chunk {
    key: ChunkKey,
    capacity: usize,
    time: VarintCol,
    cols: Vec<VarintCol>,
    t_min: f64,
    t_max: f64,
}

impl Chunk {
    /// An empty chunk for `key`, sealing after `capacity` events.
    pub fn new(key: ChunkKey, capacity: usize) -> Self {
        Chunk {
            key,
            capacity,
            time: VarintCol::new(),
            cols: vec![VarintCol::new(); key.kind.columns().len()],
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
        }
    }

    /// The chunk's partition key.
    pub fn key(&self) -> ChunkKey {
        self.key
    }

    /// Rows stored so far.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Whether the chunk has reached capacity and must be sealed.
    pub fn is_full(&self) -> bool {
        self.time.len() >= self.capacity
    }

    /// Earliest virtual time covered (`+inf` when empty).
    pub fn t_min(&self) -> f64 {
        self.t_min
    }

    /// Latest virtual time covered (`-inf` when empty).
    pub fn t_max(&self) -> f64 {
        self.t_max
    }

    /// Total encoded payload size in bytes (all columns).
    pub fn encoded_bytes(&self) -> usize {
        self.time.encoded_bytes() + self.cols.iter().map(|c| c.encoded_bytes()).sum::<usize>()
    }

    /// Appends one event. Panics if the event's kind does not match the
    /// chunk key or the chunk is full — the store upholds both.
    pub fn push(&mut self, t_s: f64, event: &Event, scratch: &mut Vec<u64>) {
        assert_eq!(
            event.kind(),
            self.key.kind,
            "event kind must match chunk key"
        );
        assert!(!self.is_full(), "push into a full chunk");
        self.time.push(t_s.to_bits());
        event.column_values(scratch);
        for (col, &v) in self.cols.iter_mut().zip(scratch.iter()) {
            col.push(v);
        }
        self.t_min = self.t_min.min(t_s);
        self.t_max = self.t_max.max(t_s);
    }

    /// Decodes every row back into `(t_s, Event)` pairs, in append order.
    pub fn rows(&self) -> Vec<(f64, Event)> {
        let times = self.time.decode();
        let cols: Vec<Vec<u64>> = self.cols.iter().map(|c| c.decode()).collect();
        let mut vals = vec![0u64; cols.len()];
        times
            .iter()
            .enumerate()
            .map(|(i, &bits)| {
                for (slot, col) in vals.iter_mut().zip(cols.iter()) {
                    *slot = col[i];
                }
                let ev = Event::from_column_values(self.key.kind, self.key.stream, &vals)
                    .expect("chunk columns decode to a valid event");
                (f64::from_bits(bits), ev)
            })
            .collect()
    }

    /// Internal accessors for the file codec.
    pub(crate) fn parts(&self) -> (&VarintCol, &[VarintCol], usize) {
        (&self.time, &self.cols, self.capacity)
    }

    /// Rebuilds a chunk from codec parts.
    pub(crate) fn from_parts(
        key: ChunkKey,
        capacity: usize,
        time: VarintCol,
        cols: Vec<VarintCol>,
        t_min: f64,
        t_max: f64,
    ) -> Self {
        Chunk {
            key,
            capacity,
            time,
            cols,
            t_min,
            t_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_adversarial_values() {
        let vals = [
            0u64,
            1,
            u64::MAX,
            0,
            (1.25f64).to_bits(),
            (0.01625f64).to_bits(),
            (-3.5f64).to_bits(),
            42,
            41,
            43,
            u64::MAX / 2,
        ];
        let mut col = VarintCol::new();
        for &v in &vals {
            col.push(v);
        }
        assert_eq!(col.decode(), vals);
        let rebuilt = VarintCol::from_raw(col.raw().to_vec(), col.len());
        assert_eq!(rebuilt, col);
    }

    #[test]
    fn monotone_times_compress_to_bytes_per_row() {
        let mut col = VarintCol::new();
        for i in 0..1000u64 {
            col.push(100_000 + i * 33);
        }
        // Constant stride after the first delta → 1 byte per row.
        assert!(col.encoded_bytes() < 1010, "got {}", col.encoded_bytes());
    }

    #[test]
    fn chunk_round_trips_rows_and_tracks_time_range() {
        let key = ChunkKey {
            kind: EventKind::Detection,
            shard: 1,
            stream: Some(7),
        };
        let mut chunk = Chunk::new(key, 4);
        let mut scratch = Vec::new();
        let events: Vec<(f64, Event)> = (0..4)
            .map(|i| {
                (
                    0.5 + i as f64 * 0.033,
                    Event::Detection {
                        stream: 7,
                        seq: i + 1,
                        frame_index: i,
                        detections: 3 + i,
                        latency_s: 0.011 + i as f64 * 1e-4,
                        output_hash: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1),
                    },
                )
            })
            .collect();
        for (t, e) in &events {
            chunk.push(*t, e, &mut scratch);
        }
        assert!(chunk.is_full());
        assert_eq!(chunk.rows(), events);
        assert_eq!(chunk.t_min(), 0.5);
        assert_eq!(chunk.t_max(), 0.5 + 3.0 * 0.033);
    }

    #[test]
    #[should_panic(expected = "push into a full chunk")]
    fn chunk_rejects_overflow() {
        let key = ChunkKey {
            kind: EventKind::Scale,
            shard: 0,
            stream: None,
        };
        let mut chunk = Chunk::new(key, 1);
        let mut scratch = Vec::new();
        let e = Event::Scale {
            from_workers: 1,
            to_workers: 2,
            reason: 0,
        };
        chunk.push(0.0, &e, &mut scratch);
        chunk.push(0.1, &e, &mut scratch);
    }
}
