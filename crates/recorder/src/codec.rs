//! Binary file codec for recorded runs.
//!
//! The format keeps columns in their in-memory compressed form, so a
//! save is mostly a copy:
//!
//! ```text
//! magic "CTFR" · version u8 (=1)
//! chunk_events varint · chunk_count varint
//! per chunk:
//!   kind u8 · shard varint · stream+1 varint (0 = fleet-level)
//!   capacity varint · row_count varint
//!   t_min f64-LE-bits · t_max f64-LE-bits
//!   time column:  byte_len varint · bytes
//!   data columns (count fixed by kind): byte_len varint · bytes
//! ```
//!
//! Snapshots are **not** persisted: they hold live replay state (boxed
//! detector pipelines) behind `Arc<dyn Any>`, which has no stable wire
//! form. A loaded store therefore answers every telemetry query but
//! cannot seed time-travel replay — replay runs against the in-process
//! store of the run being recorded.

use crate::chunk::{Chunk, ChunkKey, VarintCol};
use crate::event::EventKind;
use crate::store::ChunkStore;

const MAGIC: &[u8; 4] = b"CTFR";
const VERSION: u8 = 1;

/// Why a recorded file failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The file does not start with the `CTFR` magic.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion(u8),
    /// The file ended mid-structure.
    Truncated,
    /// An event-kind code is unknown.
    BadKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a flight-recorder file (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported recorder format version {v}"),
            DecodeError::Truncated => write!(f, "recorder file truncated"),
            DecodeError::BadKind(c) => write!(f, "unknown event kind code {c}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = self.byte()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::Truncated);
            }
        }
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let end = self.pos + 8;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("8-byte slice"),
        )))
    }

    fn blob(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.varint()? as usize;
        let end = self.pos + len;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(bytes.to_vec())
    }
}

fn put_col(out: &mut Vec<u8>, col: &VarintCol) {
    put_varint(out, col.raw().len() as u64);
    out.extend_from_slice(col.raw());
}

fn put_chunk(out: &mut Vec<u8>, chunk: &Chunk) {
    let key = chunk.key();
    let (time, cols, capacity) = chunk.parts();
    out.push(key.kind.code());
    put_varint(out, key.shard as u64);
    put_varint(out, key.stream.map_or(0, |s| s as u64 + 1));
    put_varint(out, capacity as u64);
    put_varint(out, chunk.len() as u64);
    out.extend_from_slice(&chunk.t_min().to_bits().to_le_bytes());
    out.extend_from_slice(&chunk.t_max().to_bits().to_le_bytes());
    put_col(out, time);
    for col in cols {
        put_col(out, col);
    }
}

/// Serializes every retained chunk (sealed and open) of `store`.
/// Snapshots are intentionally not written (see module docs).
pub fn encode(store: &ChunkStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, store.chunk_events() as u64);
    let sealed: Vec<&Chunk> = store.sealed.iter().map(|s| &s.chunk).collect();
    let open: Vec<&Chunk> = store.open.values().filter(|c| !c.is_empty()).collect();
    put_varint(&mut out, (sealed.len() + open.len()) as u64);
    for chunk in sealed.into_iter().chain(open) {
        put_chunk(&mut out, chunk);
    }
    out
}

/// Deserializes a recorded file back into a queryable store. Every chunk
/// arrives sealed; retention is set unbounded (the file is already the
/// retained set).
pub fn decode(bytes: &[u8]) -> Result<ChunkStore, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.byte().map_err(|_| DecodeError::BadMagic)?;
    }
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.byte()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let chunk_events = r.varint()? as usize;
    let count = r.varint()? as usize;
    let mut chunks = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let kind = EventKind::from_code(r.byte()?)
            .ok_or_else(|| DecodeError::BadKind(bytes[r.pos - 1]))?;
        let shard = r.varint()? as usize;
        let stream = match r.varint()? {
            0 => None,
            s => Some(s as usize - 1),
        };
        let capacity = r.varint()? as usize;
        let rows = r.varint()? as usize;
        let t_min = r.f64()?;
        let t_max = r.f64()?;
        let time = VarintCol::from_raw(r.blob()?, rows);
        let key = ChunkKey {
            kind,
            shard,
            stream,
        };
        let mut cols = Vec::with_capacity(kind.columns().len());
        for _ in kind.columns() {
            cols.push(VarintCol::from_raw(r.blob()?, rows));
        }
        chunks.push(Chunk::from_parts(key, capacity, time, cols, t_min, t_max));
    }
    Ok(ChunkStore::from_sealed(
        chunk_events.max(1),
        usize::MAX,
        chunks,
    ))
}

/// Writes a recorded store to `path` (see [`encode`]).
pub fn write_file(store: &ChunkStore, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(store))
}

/// Loads a recorded store from `path` (see [`decode`]).
pub fn read_file(path: &std::path::Path) -> std::io::Result<ChunkStore> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::query::Query;

    fn busy_store() -> ChunkStore {
        let mut store = ChunkStore::new(3, usize::MAX);
        for i in 0..17usize {
            let shard = i % 3;
            store.record(
                i as f64 * 0.02,
                shard,
                Event::Detection {
                    stream: 20 + shard,
                    seq: i / 3 + 1,
                    frame_index: i / 3,
                    detections: i % 5,
                    latency_s: 0.004 + 1e-4 * i as f64,
                    output_hash: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                },
            );
            if i % 4 == 0 {
                store.record(
                    i as f64 * 0.02 + 0.001,
                    shard,
                    Event::Admission {
                        stream: 20 + shard,
                        reason: (i % 2) as u64,
                    },
                );
            }
        }
        store.record(
            0.15,
            0,
            Event::Scale {
                from_workers: 2,
                to_workers: 4,
                reason: 3,
            },
        );
        store
    }

    #[test]
    fn encode_decode_preserves_every_event() {
        let mut store = busy_store();
        let expected = store.scan(&Query::all());
        let bytes = encode(&store);
        let mut loaded = decode(&bytes).expect("decode");
        assert_eq!(loaded.scan(&Query::all()), expected);
        assert_eq!(loaded.stats().events, store.stats().events);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err(), DecodeError::BadMagic);
        assert_eq!(decode(b"CTFR\x09").unwrap_err(), DecodeError::BadVersion(9));
        let mut truncated = encode(&busy_store());
        truncated.truncate(truncated.len() - 3);
        assert_eq!(decode(&truncated).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn file_round_trip() {
        let mut store = busy_store();
        let expected = store.latency_stats(&Query::all());
        let path = std::env::temp_dir().join("catdet_recorder_codec_test.ctfr");
        write_file(&store, &path).expect("write");
        let mut loaded = read_file(&path).expect("read");
        assert_eq!(loaded.latency_stats(&Query::all()), expected);
        let _ = std::fs::remove_file(&path);
    }
}
