//! Dataframe-style queries over the chunk store: time-range scans with
//! per-kind/per-shard/per-stream filters, and nearest-rank latency
//! percentiles over recorded samples.
//!
//! The percentile math here deliberately mirrors the serving report's
//! `LatencyStats::from_samples` operation for operation (same
//! `total_cmp` sort, same nearest-rank pick, same summation order for
//! the mean), so a full-window query over a recorded run reproduces the
//! live report's numbers bit for bit.

use crate::event::{Event, EventKind};
use crate::store::ChunkStore;

/// A filter over the recorded event space. Default matches everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Inclusive lower bound on virtual time.
    pub t0: f64,
    /// Inclusive upper bound on virtual time.
    pub t1: f64,
    /// Restrict to one event kind.
    pub kind: Option<EventKind>,
    /// Restrict to one shard.
    pub shard: Option<usize>,
    /// Restrict to one stream.
    pub stream: Option<usize>,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            t0: f64::NEG_INFINITY,
            t1: f64::INFINITY,
            kind: None,
            shard: None,
            stream: None,
        }
    }
}

impl Query {
    /// Matches everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restricts the time range to `[t0, t1]` (inclusive both ends).
    pub fn between(mut self, t0: f64, t1: f64) -> Self {
        self.t0 = t0;
        self.t1 = t1;
        self
    }

    /// Restricts to one event kind.
    pub fn kind(mut self, kind: EventKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts to one shard.
    pub fn shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Restricts to one stream.
    pub fn stream(mut self, stream: usize) -> Self {
        self.stream = Some(stream);
        self
    }
}

/// One event surfaced by a scan, with its recording coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedEvent {
    /// Virtual time the event was recorded at.
    pub t_s: f64,
    /// Shard it was recorded on.
    pub shard: usize,
    /// The event payload.
    pub event: Event,
}

/// Nearest-rank latency percentiles over queried samples. Field-for-field
/// twin of the serving report's `LatencyStats`, plus the sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Mean latency (virtual seconds).
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Worst observed.
    pub max_s: f64,
    /// Samples the summary was computed from.
    pub samples: usize,
}

impl LatencySummary {
    /// Nearest-rank percentiles over a sample set; all-zero when empty.
    ///
    /// Must stay operation-for-operation identical to the serving
    /// report's `LatencyStats::from_samples` (including summing the mean
    /// over the *sorted* order) — the report-agreement property test
    /// pins the two together.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                mean_s: 0.0,
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                max_s: 0.0,
                samples: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pick = |p: f64| {
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: pick(0.50),
            p95_s: pick(0.95),
            p99_s: pick(0.99),
            max_s: *sorted.last().expect("non-empty"),
            samples: sorted.len(),
        }
    }
}

/// One window of a rolling-percentile sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollingWindow {
    /// Window start (inclusive).
    pub t0: f64,
    /// Window end (inclusive).
    pub t1: f64,
    /// Percentiles over latency samples recorded inside the window.
    pub stats: LatencySummary,
}

impl ChunkStore {
    /// Scans every retained event matching `query`, sorted by time (ties
    /// broken by chunk key then append order, so results are
    /// deterministic). Matching sealed chunks are marked recently-used,
    /// keeping hot ranges resident under retention pressure.
    pub fn scan(&mut self, query: &Query) -> Vec<RecordedEvent> {
        let mut keyed: Vec<((f64, EventKind, usize, usize), RecordedEvent)> = Vec::new();
        // Sealed chunks: the time index prunes non-overlapping ranges
        // before any column is decoded.
        let hits: Vec<usize> = (0..self.sealed.len())
            .filter(|&i| {
                let s = &self.sealed[i];
                let key = s.chunk.key();
                s.chunk.t_min() <= query.t1
                    && s.chunk.t_max() >= query.t0
                    && query.kind.is_none_or(|k| k == key.kind)
                    && query.shard.is_none_or(|sh| sh == key.shard)
                    && query.stream.is_none_or(|st| key.stream == Some(st))
            })
            .collect();
        for i in &hits {
            let key = self.sealed[*i].chunk.key();
            for (t, ev) in self.sealed[*i].chunk.rows() {
                if t >= query.t0 && t <= query.t1 {
                    keyed.push((
                        (t, key.kind, key.shard, key.stream.map_or(0, |s| s + 1)),
                        RecordedEvent {
                            t_s: t,
                            shard: key.shard,
                            event: ev,
                        },
                    ));
                }
            }
        }
        for i in hits {
            self.touch(i);
        }
        // Open chunks: same filters, no index needed.
        for chunk in self.open.values() {
            let key = chunk.key();
            let matches = query.kind.is_none_or(|k| k == key.kind)
                && query.shard.is_none_or(|sh| sh == key.shard)
                && query.stream.is_none_or(|st| key.stream == Some(st))
                && chunk.t_min() <= query.t1
                && chunk.t_max() >= query.t0;
            if !matches {
                continue;
            }
            for (t, ev) in chunk.rows() {
                if t >= query.t0 && t <= query.t1 {
                    keyed.push((
                        (t, key.kind, key.shard, key.stream.map_or(0, |s| s + 1)),
                        RecordedEvent {
                            t_s: t,
                            shard: key.shard,
                            event: ev,
                        },
                    ));
                }
            }
        }
        keyed.sort_by(|a, b| {
            a.0 .0
                .total_cmp(&b.0 .0)
                .then(a.0 .1.cmp(&b.0 .1))
                .then(a.0 .2.cmp(&b.0 .2))
                .then(a.0 .3.cmp(&b.0 .3))
        });
        keyed.into_iter().map(|(_, e)| e).collect()
    }

    /// Latency samples of matching [`Event::Detection`] rows, in scan
    /// order. The query's `kind` filter is forced to `Detection`.
    pub fn latency_samples(&mut self, query: &Query) -> Vec<f64> {
        let q = query.kind(EventKind::Detection);
        self.scan(&q)
            .into_iter()
            .filter_map(|r| match r.event {
                Event::Detection { latency_s, .. } => Some(latency_s),
                _ => None,
            })
            .collect()
    }

    /// Nearest-rank percentiles over matching recorded latency samples —
    /// over a full recorded window these agree exactly with the live
    /// serving report.
    pub fn latency_stats(&mut self, query: &Query) -> LatencySummary {
        LatencySummary::from_samples(&self.latency_samples(query))
    }

    /// Rolling percentiles: windows of `window_s`, advanced by `step_s`,
    /// covering the query's time range. Panics on non-positive window or
    /// step.
    pub fn rolling(&mut self, query: &Query, window_s: f64, step_s: f64) -> Vec<RollingWindow> {
        assert!(window_s > 0.0, "rolling window must be positive");
        assert!(step_s > 0.0, "rolling step must be positive");
        let samples: Vec<(f64, f64)> = {
            let q = query.kind(EventKind::Detection);
            self.scan(&q)
                .into_iter()
                .filter_map(|r| match r.event {
                    Event::Detection { latency_s, .. } => Some((r.t_s, latency_s)),
                    _ => None,
                })
                .collect()
        };
        let (t_lo, t_hi) = if query.t0.is_finite() && query.t1.is_finite() {
            (query.t0, query.t1)
        } else if let (Some(first), Some(last)) = (samples.first(), samples.last()) {
            (first.0, last.0)
        } else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t0 = t_lo;
        loop {
            let t1 = t0 + window_s;
            let vals: Vec<f64> = samples
                .iter()
                .filter(|(t, _)| *t >= t0 && *t <= t1)
                .map(|(_, l)| *l)
                .collect();
            out.push(RollingWindow {
                t0,
                t1,
                stats: LatencySummary::from_samples(&vals),
            });
            if t1 >= t_hi {
                break;
            }
            t0 += step_s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_store(chunk_events: usize) -> ChunkStore {
        let mut store = ChunkStore::new(chunk_events, usize::MAX);
        // Two shards, two streams, interleaved times.
        for i in 0..10usize {
            let shard = i % 2;
            let stream = 10 + shard;
            store.record(
                i as f64 * 0.1,
                shard,
                Event::Detection {
                    stream,
                    seq: i / 2 + 1,
                    frame_index: i / 2,
                    detections: 1,
                    latency_s: 0.005 * (i + 1) as f64,
                    output_hash: i as u64,
                },
            );
        }
        store.record(
            0.45,
            0,
            Event::Scale {
                from_workers: 1,
                to_workers: 2,
                reason: 0,
            },
        );
        store
    }

    #[test]
    fn scan_filters_by_time_kind_shard_stream() {
        let mut store = seeded_store(3);
        let all = store.scan(&Query::all());
        assert_eq!(all.len(), 11);
        assert!(all.windows(2).all(|w| w[0].t_s <= w[1].t_s));

        let ranged = store.scan(&Query::all().between(0.2, 0.5));
        assert_eq!(ranged.len(), 5); // t = 0.2, 0.3, 0.4, 0.45, 0.5

        let shard1 = store.scan(&Query::all().shard(1));
        assert!(shard1.iter().all(|r| r.shard == 1));
        assert_eq!(shard1.len(), 5);

        let stream10 = store.scan(&Query::all().stream(10));
        assert_eq!(stream10.len(), 5);

        let scales = store.scan(&Query::all().kind(EventKind::Scale));
        assert_eq!(scales.len(), 1);
        assert_eq!(scales[0].t_s, 0.45);
    }

    #[test]
    fn latency_stats_match_reference_regardless_of_chunking() {
        let reference = {
            let mut s = seeded_store(1000);
            s.latency_stats(&Query::all())
        };
        for chunk_events in [1, 2, 3, 7, 64] {
            let mut s = seeded_store(chunk_events);
            assert_eq!(s.latency_stats(&Query::all()), reference);
        }
        assert_eq!(reference.samples, 10);
        assert_eq!(reference.max_s, 0.05);
        assert_eq!(reference.p50_s, 0.025);
    }

    #[test]
    fn rolling_windows_cover_range() {
        let mut store = seeded_store(4);
        let windows = store.rolling(&Query::all().between(0.0, 0.8), 0.4, 0.4);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].stats.samples, 5); // inclusive 0.0..=0.4
        assert!(windows.iter().all(|w| w.t1 - w.t0 == 0.4));
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.p99_s, 0.0);
        assert_eq!(s.mean_s, 0.0);
    }
}
