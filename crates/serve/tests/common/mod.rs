//! Shared helpers for serve integration tests: a zero-cost detection
//! system and stream builders with fully controlled arrival patterns.
//!
//! Compiled into every test target; not all targets use every helper.
#![allow(dead_code)]

use catdet_core::{DetectionSystem, FrameOutput, OpsBreakdown, SystemFactory};
use catdet_data::{kitti_like, Frame, StreamFrame, StreamSource};
use catdet_serve::StreamSpec;
use std::sync::{Arc, OnceLock};

/// A detection system that does no work, so tests exercise scheduling and
/// control logic rather than detector compute. Virtual frame cost is the
/// timing model's fixed frame + tracker overhead (proposal ops are zero,
/// so no launch time is added).
pub struct NullSystem;

impl DetectionSystem for NullSystem {
    fn name(&self) -> String {
        "null".into()
    }

    fn reset(&mut self) {}

    fn process_frame(&mut self, _frame: &Frame) -> FrameOutput {
        FrameOutput {
            detections: Vec::new(),
            ops: OpsBreakdown::default(),
            num_refinement_regions: 0,
            refinement_coverage: 0.0,
        }
    }
}

/// Factory stamping out [`NullSystem`]s.
pub fn null_factory() -> Arc<dyn SystemFactory> {
    Arc::new(|| Box::new(NullSystem) as Box<dyn DetectionSystem>)
}

/// A pool of real frames to attach arrivals to (built once; frame
/// contents are irrelevant to the scheduler, only identity matters).
pub fn frame_pool() -> &'static Vec<Frame> {
    static POOL: OnceLock<Vec<Frame>> = OnceLock::new();
    POOL.get_or_init(|| {
        kitti_like()
            .sequences(1)
            .frames_per_sequence(16)
            .seed(99)
            .build()
            .sequences()[0]
            .frames()
            .to_vec()
    })
}

/// A null-system stream delivering frames at the given arrival times
/// (sorted internally).
pub fn null_spec_with_arrivals(stream_id: usize, mut arrivals: Vec<f64>) -> StreamSpec {
    arrivals.sort_by(f64::total_cmp);
    let pool = frame_pool();
    let frames: Vec<StreamFrame> = arrivals
        .into_iter()
        .enumerate()
        .map(|(i, arrival_s)| StreamFrame {
            arrival_s,
            frame: pool[i % pool.len()].clone(),
        })
        .collect();
    StreamSpec::new(
        StreamSource::from_frames(stream_id, 10.0, 1242.0, 375.0, frames),
        null_factory(),
    )
}

/// A null-system stream ticking at a steady `fps` from `start_s`.
pub fn null_spec_steady(stream_id: usize, fps: f64, frames: usize, start_s: f64) -> StreamSpec {
    let arrivals = (0..frames).map(|i| start_s + i as f64 / fps).collect();
    null_spec_with_arrivals(stream_id, arrivals)
}
