//! Network front-door acceptance tests: ingest determinism at every
//! thread count, connection-level backpressure bounds, per-client DoS
//! isolation, and connection events in the flight recorder.

mod common;

use catdet_recorder::{read_file, EventKind, Query};
use catdet_serve::{
    serve_net_fleet, serve_net_fleet_with_recorder, ConnEventKind, Event, IngestConfig,
    RecorderConfig, ServeConfig, ShardConfig, StreamSpec,
};
use common::{null_spec_steady, null_spec_with_arrivals};
use std::path::PathBuf;

/// A jittery, faulty front door — the configuration the determinism
/// claims are hardest for.
fn faulty_ingest() -> IngestConfig {
    IngestConfig::net()
        .with_conn_jitter_s(0.004)
        .with_disconnect_rate(0.08)
        .with_reorder_rate(0.03)
}

fn fleet(clients: usize, frames: usize) -> Vec<StreamSpec> {
    (0..clients)
        .map(|i| null_spec_steady(i, 10.0, frames, i as f64 * 0.01))
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("catdet-net-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn ingest_timeline_is_bit_identical_across_thread_counts_and_runs() {
    let run = |threads: usize, path: &PathBuf| {
        let cfg = ServeConfig::new()
            .with_workers(2)
            .with_ingest(faulty_ingest())
            .with_shard(ShardConfig::sharded(4).with_threads(threads))
            .with_recorder(RecorderConfig::on());
        let recorder = cfg.recorder.build();
        let report = serve_net_fleet_with_recorder(fleet(6, 20), &cfg, 2019, &recorder);
        recorder.save(path).expect("save recording");
        report
    };
    let p1 = tmp("t1.cdr");
    let p1b = tmp("t1b.cdr");
    let p4 = tmp("t4.cdr");
    let a = run(1, &p1);
    let b = run(1, &p1b);
    let c = run(4, &p4);
    // Same seed, same run — reports agree in full, ingest section included.
    assert_eq!(a, b, "repeat seeded runs diverged");
    assert_eq!(a, c, "thread count changed the outcome");
    assert!(a.ingest.is_some(), "net fleet must carry an ingest report");
    // The recorder stores are byte-identical: ConnEvents and engine
    // events landed in exactly the same order.
    let bytes1 = std::fs::read(&p1).unwrap();
    assert_eq!(
        bytes1,
        std::fs::read(&p1b).unwrap(),
        "store bytes differ across runs"
    );
    assert_eq!(
        bytes1,
        std::fs::read(&p4).unwrap(),
        "store bytes differ across threads"
    );
    for p in [p1, p1b, p4] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn backpressure_bounds_the_receive_window_and_records_throttles() {
    // 100 fps offered against a 4-frame window draining at 20 fps.
    let specs = vec![null_spec_with_arrivals(
        0,
        (0..50).map(|i| i as f64 * 0.01).collect(),
    )];
    let cfg = ServeConfig::new().with_ingest(
        IngestConfig::net()
            .with_recv_window(4)
            .with_drain_fps(20.0)
            .with_door_rate_fps(1000.0)
            .with_door_burst(1000.0),
    );
    let report = serve_net_fleet(specs, &cfg, 7);
    let ingest = report.ingest.expect("ingest report");
    let client = ingest.clients[0];
    assert!(
        client.max_buffered <= 4,
        "bounded receive window exceeded: {}",
        client.max_buffered
    );
    assert!(client.throttles > 0, "expected throttle episodes");
    assert_eq!(client.delivered, 50, "backpressure delays, never drops");
    assert!(ingest.summary().contains("throttle"));
}

#[test]
fn the_door_rejects_an_abusive_client_without_perturbing_the_rest() {
    // Clients 0 and 1 are honest 10 fps cameras; client 2 floods at
    // 500 fps. The door caps every client at 30 fps sustained.
    let honest = |streams: &mut Vec<StreamSpec>| {
        streams.push(null_spec_steady(0, 10.0, 30, 0.0));
        streams.push(null_spec_steady(1, 10.0, 30, 0.005));
    };
    let abusive = || null_spec_with_arrivals(2, (0..300).map(|i| i as f64 * 0.002).collect());
    // Drain fast so the flood reaches the door at its offered rate (a
    // slow drain would pace it down before the limiter ever sees it).
    let door_cfg = ServeConfig::new().with_ingest(
        IngestConfig::net()
            .with_door_rate_fps(30.0)
            .with_door_burst(4.0)
            .with_drain_fps(1000.0),
    );

    let mut with_abuser = Vec::new();
    honest(&mut with_abuser);
    with_abuser.push(abusive());
    let mut without_abuser = Vec::new();
    honest(&mut without_abuser);

    let guarded = serve_net_fleet(with_abuser, &door_cfg, 11);
    let baseline = serve_net_fleet(without_abuser, &door_cfg, 11);

    // The abusive client is rejected at the door, massively.
    let ingest = guarded.ingest.as_ref().expect("ingest report");
    let abuser = ingest.clients[2];
    assert_eq!(abuser.offered, 300);
    assert!(
        abuser.rejected_at_door as f64 >= 0.8 * abuser.offered as f64,
        "door barely engaged: {abuser:?}"
    );
    // Honest clients' ingest outcomes are bit-identical with or without
    // the abuser on the wire: per-client randomness is independent.
    for i in 0..2 {
        assert_eq!(
            ingest.clients[i],
            baseline.ingest.as_ref().unwrap().clients[i],
            "client {i} ingest perturbed by the abuser"
        );
    }
    // And the door keeps the abuser from degrading honest latency: with
    // the door wide open the same flood drives honest p99 up.
    let open_cfg = ServeConfig::new().with_ingest(
        IngestConfig::net()
            .with_door_rate_fps(100_000.0)
            .with_door_burst(100_000.0)
            .with_drain_fps(100_000.0),
    );
    let mut flooded = Vec::new();
    honest(&mut flooded);
    flooded.push(abusive());
    let unguarded = serve_net_fleet(flooded, &open_cfg, 11);
    let honest_p99 = |r: &catdet_serve::FleetReport| {
        r.streams()
            .iter()
            .filter(|s| s.stream_id < 2)
            .filter_map(|s| s.latency.as_ref().map(|l| l.p99_s))
            .fold(0.0f64, f64::max)
    };
    assert!(
        honest_p99(&guarded) <= honest_p99(&unguarded),
        "door failed to shield honest clients: guarded p99 {} > unguarded {}",
        honest_p99(&guarded),
        honest_p99(&unguarded)
    );
}

#[test]
fn connection_events_land_in_the_recorder_and_query_out() {
    let cfg = ServeConfig::new()
        .with_ingest(faulty_ingest())
        .with_recorder(RecorderConfig::on());
    let recorder = cfg.recorder.build();
    let report = serve_net_fleet_with_recorder(fleet(5, 15), &cfg, 99, &recorder);
    let path = tmp("events.cdr");
    recorder.save(&path).expect("save recording");
    let mut store = read_file(&path).expect("read recording");
    let conns = store.scan(&Query::all().kind(EventKind::Conn));
    assert!(!conns.is_empty(), "no connection events recorded");
    let connects = conns
        .iter()
        .filter(|r| {
            matches!(r.event, Event::Conn { code, .. }
            if ConnEventKind::from_code(code) == Some(ConnEventKind::Connect))
        })
        .count();
    assert_eq!(connects, 5, "one connect event per client");
    // Disconnect/resume come in pairs, matching the ingest report.
    let ingest = report.ingest.expect("ingest report");
    let count = |kind: ConnEventKind| {
        conns
            .iter()
            .filter(|r| {
                matches!(r.event, Event::Conn { code, .. }
                if ConnEventKind::from_code(code) == Some(kind))
            })
            .count()
    };
    assert_eq!(count(ConnEventKind::Disconnect), ingest.disconnects());
    assert_eq!(count(ConnEventKind::Resume), ingest.disconnects());
    let _ = std::fs::remove_file(path);
}

#[test]
fn a_clean_net_fleet_serves_every_offered_frame() {
    let cfg = ServeConfig::new().with_ingest(IngestConfig::net());
    let report = serve_net_fleet(fleet(4, 12), &cfg, 5);
    let ingest = report.ingest.as_ref().expect("ingest report");
    assert_eq!(ingest.offered(), 48);
    assert_eq!(ingest.delivered(), 48);
    assert_eq!(report.frames_arrived(), 48);
    assert_eq!(report.frames_processed(), 48);
    // The summary splits door accounting from scheduler shedding.
    let summary = report.summary();
    assert!(summary.contains("door:"), "{summary}");
    assert!(summary.contains("backpressure"), "{summary}");
    assert!(summary.contains("admission-shed"), "{summary}");
}
