//! Property tests for the serving layer (vendored proptest).
//!
//! Two subjects with previously zero dedicated coverage:
//!
//! * `LatencyStats::from_samples` — nearest-rank percentiles checked
//!   against an independent counting-based reference on arbitrary sample
//!   sets, plus ordering and fold identities;
//! * the scheduler itself — for random stream counts, arrival patterns,
//!   queue bounds, batch limits and windows, the frame-conservation and
//!   batch-composition invariants must hold exactly.
//!
//! The scheduler properties run against a null detection system (zero
//! ops, empty detections) so 128 cases stay fast and the properties
//! exercise scheduling logic, not detector compute.

mod common;

use catdet_serve::{
    serve, BatchStage, DropPolicy, LatencyStats, SchedulePolicy, ServeConfig, StreamSpec,
};
use common::null_spec_with_arrivals;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// LatencyStats::from_samples
// ---------------------------------------------------------------------

/// Independent nearest-rank reference: the smallest sample `v` such that
/// at least `ceil(p * n)` samples are `<= v`. O(n²) by construction so it
/// shares no code (or sort order subtleties) with the implementation.
fn naive_nearest_rank(samples: &[f64], p: f64) -> f64 {
    let need = ((p * samples.len() as f64).ceil() as usize).max(1);
    let mut best = f64::INFINITY;
    for &v in samples {
        let at_most = samples.iter().filter(|&&x| x <= v).count();
        if at_most >= need && v < best {
            best = v;
        }
    }
    best
}

proptest! {
    #[test]
    fn percentiles_match_naive_reference(
        samples in proptest::collection::vec(0.0f64..100.0, 1..80),
    ) {
        let stats = LatencyStats::from_samples(&samples).expect("non-empty");
        prop_assert_eq!(stats.p50_s, naive_nearest_rank(&samples, 0.50));
        prop_assert_eq!(stats.p95_s, naive_nearest_rank(&samples, 0.95));
        prop_assert_eq!(stats.p99_s, naive_nearest_rank(&samples, 0.99));
    }

    #[test]
    fn percentiles_are_ordered(
        samples in proptest::collection::vec(0.0f64..1000.0, 1..120),
    ) {
        let stats = LatencyStats::from_samples(&samples).expect("non-empty");
        prop_assert!(stats.p50_s <= stats.p95_s);
        prop_assert!(stats.p95_s <= stats.p99_s);
        prop_assert!(stats.p99_s <= stats.max_s);
        prop_assert!(stats.mean_s <= stats.max_s);
    }

    /// The fleet's merge path: pooling raw sample sets through
    /// `LatencyStats::merged` must equal computing nearest-rank stats over
    /// the naive concatenation — and, sample for sample, the independent
    /// counting reference. This is what makes exposing raw
    /// `latency_samples` (instead of only precomputed percentiles) safe:
    /// the merged figure can never silently degenerate into an average of
    /// per-shard percentiles.
    #[test]
    fn merged_percentiles_match_naive_pooled_reference(
        sample_sets in proptest::collection::vec(
            proptest::collection::vec(0.0f64..100.0, 0..40),
            1..6,
        ),
    ) {
        let merged = LatencyStats::merged(sample_sets.iter().map(Vec::as_slice));
        let pooled: Vec<f64> = sample_sets.iter().flatten().copied().collect();
        prop_assert_eq!(merged, LatencyStats::from_samples(&pooled));
        prop_assert_eq!(merged.is_none(), pooled.is_empty());
        if let Some(m) = merged {
            prop_assert_eq!(m.p50_s, naive_nearest_rank(&pooled, 0.50));
            prop_assert_eq!(m.p95_s, naive_nearest_rank(&pooled, 0.95));
            prop_assert_eq!(m.p99_s, naive_nearest_rank(&pooled, 0.99));
        }
    }

    #[test]
    fn mean_and_max_agree_with_direct_folds(
        samples in proptest::collection::vec(0.0f64..50.0, 1..60),
    ) {
        let stats = LatencyStats::from_samples(&samples).expect("non-empty");
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.max_s, max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Summation order differs (the implementation sums the sorted
        // copy), so compare to addition-reorder precision, not bits.
        prop_assert!((stats.mean_s - mean).abs() <= 1e-9 * mean.abs().max(1.0));
    }
}

// ---------------------------------------------------------------------
// Scheduler invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn conservation_and_batch_invariants_hold(
        arrival_sets in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.5, 0..12),
            1..5,
        ),
        workers in 1usize..5,
        queue_capacity in 1usize..5,
        max_batch in 1usize..7,
        window_choice in 0usize..3,
        least_backlog in proptest::bool::ANY,
        drop_oldest in proptest::bool::ANY,
        fuse_refinement in proptest::bool::ANY,
        refine_window_choice in 0usize..3,
    ) {
        let total: usize = arrival_sets.iter().map(Vec::len).sum();
        let specs: Vec<StreamSpec> = arrival_sets
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, arrivals)| null_spec_with_arrivals(i, arrivals))
            .collect();
        let cfg = ServeConfig::new()
            .with_workers(workers)
            .with_queue_capacity(queue_capacity)
            .with_max_batch(max_batch)
            .with_batch_window_s([0.0, 0.005, 0.05][window_choice])
            .with_fuse_refinement(fuse_refinement)
            .with_refine_batch_window_s([0.0, 0.002, 0.02][refine_window_choice])
            .with_schedule(if least_backlog {
                SchedulePolicy::LeastBacklog
            } else {
                SchedulePolicy::RoundRobin
            })
            .with_drop_policy(if drop_oldest {
                DropPolicy::Oldest
            } else {
                DropPolicy::Newest
            });
        let report = serve(specs, &cfg);

        // Conservation: every generated frame is accounted for, exactly.
        prop_assert_eq!(report.frames_arrived, total);
        prop_assert_eq!(
            report.frames_arrived,
            report.frames_processed + report.frames_dropped
        );
        prop_assert_eq!(report.frames_rejected, 0);
        for s in &report.streams {
            prop_assert_eq!(s.arrived, s.processed + s.dropped);
            prop_assert_eq!(s.outputs.len(), s.processed);
        }

        // Batch composition: never empty, proposal batches never over
        // max_batch, and never two frames of the same stream fused into
        // one launch (refinement dispatches have no size cap — they fuse
        // across batches — but stream-uniqueness still holds).
        for batch in &report.batch_log {
            prop_assert!(!batch.streams.is_empty());
            if batch.stage == BatchStage::Proposal {
                prop_assert!(batch.streams.len() <= max_batch);
            }
            let mut seen = batch.streams.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(
                seen.len(),
                batch.streams.len(),
                "batch at t={} mixes frames of one stream: {:?}",
                batch.t_s,
                batch.streams
            );
        }

        // The batch log and the aggregate stats must tell the same story,
        // per stage.
        let proposals: Vec<_> = report
            .batch_log
            .iter()
            .filter(|b| b.stage == BatchStage::Proposal)
            .collect();
        prop_assert_eq!(proposals.len(), report.batch.batches);
        let logged_frames: usize = proposals.iter().map(|b| b.streams.len()).sum();
        prop_assert_eq!(logged_frames, report.batch.batched_frames);
        prop_assert_eq!(logged_frames, report.frames_processed);
        let max_seen = proposals.iter().map(|b| b.streams.len()).max().unwrap_or(0);
        prop_assert_eq!(max_seen, report.batch.max_batch_seen);
        let refinements: Vec<_> = report
            .batch_log
            .iter()
            .filter(|b| b.stage == BatchStage::Refinement)
            .collect();
        prop_assert_eq!(refinements.len(), report.batch.refine_batches);
        let refined: usize = refinements.iter().map(|b| b.streams.len()).sum();
        prop_assert_eq!(refined, report.batch.refined_frames);
        // Null systems have zero refinement work, so no refinement launch
        // is ever priced — fused or not.
        prop_assert_eq!(report.batch.refine_batches, 0);
        prop_assert_eq!(report.gpu_dispatch_s, 0.0);
    }
}
