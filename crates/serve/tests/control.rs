//! Controller tests: golden scale-event timeline on a step load, no
//! oscillation on a steady workload, bit-reproducibility of the control
//! loop, admission-policy accounting, and the headline result — an
//! autoscaled fleet beats a fixed fleet of the same mean size on a
//! bursty workload.

mod common;

use catdet_serve::{
    bursty_workload, serve, step_workload, AdmissionConfig, AutoscaleConfig, BurstProfile,
    ScaleEvent, ScaleReason, ServeConfig, SystemKind,
};
use common::null_spec_steady;

/// The bursty fleet used by the autoscale-vs-fixed comparison: long calm
/// phases with 2-second stampedes an 8-worker fleet can absorb but a
/// 3-worker fleet cannot.
fn gentle_bursts() -> BurstProfile {
    BurstProfile {
        quiet_fps: 1.0,
        burst_fps: 12.0,
        quiet_s: 4.0,
        burst_s: 2.0,
    }
}

#[test]
fn golden_scale_event_timeline_on_step_load() {
    // 4 cameras idle at 2 fps, stampede to 30 fps at t = 1.5 s; the
    // hysteresis controller climbs from 1 worker to the ceiling in steps
    // of 2, one control tick (0.25 s) apart, each triggered by window
    // drops. Everything is virtual time, so the timeline is exact.
    let run = || {
        let specs = step_workload(4, 40, 7, SystemKind::CatdetA, BurstProfile::demo(), 1.5);
        let cfg = ServeConfig::new()
            .with_workers(1)
            .with_max_batch(4)
            .with_queue_capacity(4)
            .with_autoscale(
                AutoscaleConfig::hysteresis(1, 8)
                    .with_cooldown_ticks(0)
                    .with_scale_step(2),
            );
        serve(specs, &cfg)
    };
    let report = run();
    let expected = vec![
        ScaleEvent {
            t_s: 1.75,
            from_workers: 1,
            to_workers: 3,
            reason: ScaleReason::DropRate,
        },
        ScaleEvent {
            t_s: 2.0,
            from_workers: 3,
            to_workers: 5,
            reason: ScaleReason::DropRate,
        },
        ScaleEvent {
            t_s: 2.25,
            from_workers: 5,
            to_workers: 7,
            reason: ScaleReason::DropRate,
        },
        ScaleEvent {
            t_s: 2.5,
            from_workers: 7,
            to_workers: 8,
            reason: ScaleReason::DropRate,
        },
    ];
    assert_eq!(
        report.scale_events,
        expected,
        "scale timeline diverged from the golden sequence:\n{}",
        report.scale_timeline()
    );

    // The whole report — timelines, latencies, detections, integrals —
    // must be bit-identical run to run: every control input is virtual.
    let again = run();
    assert_eq!(report, again, "controller run is not bit-reproducible");
}

#[test]
fn hysteresis_does_not_oscillate_on_steady_load() {
    // A comfortable steady fleet: 4 cameras at 10 fps against null
    // pipelines (~21 ms virtual per frame), started at 4 workers. The
    // controller may shed idle workers, but it must never flap: on a
    // steady workload every event is a scale-down, and there are at most
    // as many as it takes to reach the floor.
    let specs: Vec<_> = (0..4)
        .map(|i| null_spec_steady(i, 10.0, 60, i as f64 * 0.013))
        .collect();
    let cfg = ServeConfig::new()
        .with_workers(4)
        .with_max_batch(4)
        .with_queue_capacity(64)
        .with_autoscale(AutoscaleConfig::hysteresis(1, 8));
    let report = serve(specs, &cfg);
    assert_eq!(report.frames_dropped, 0, "steady load must not shed");
    assert!(
        !report.scale_events.is_empty(),
        "an over-provisioned steady fleet should shed idle workers"
    );
    for e in &report.scale_events {
        assert!(
            e.to_workers < e.from_workers,
            "steady load caused a scale-up (oscillation): {:?}\n{}",
            e,
            report.scale_timeline()
        );
    }
    assert!(
        report.scale_events.len() <= 3,
        "more scale-downs than the 4→1 staircase allows:\n{}",
        report.scale_timeline()
    );
}

#[test]
fn autoscaled_fleet_beats_fixed_fleet_at_equal_spend() {
    // 6 bursty cameras. The autoscaled run starts at 1 worker with a
    // 100 ms control loop; the fixed baseline gets 3 workers — more than
    // the autoscaler's mean — so the comparison is at (better than)
    // equal worker-seconds for the fixed side.
    let burst = || bursty_workload(6, 56, 42, SystemKind::CatdetA, gentle_bursts());
    let base = ServeConfig::new().with_max_batch(4).with_queue_capacity(8);
    let auto = serve(
        burst(),
        &base.with_workers(1).with_autoscale(
            AutoscaleConfig::hysteresis(1, 8)
                .with_cooldown_ticks(0)
                .with_scale_step(4)
                .with_control_interval_s(0.1),
        ),
    );
    let fixed = serve(burst(), &base.with_workers(3));

    assert!(
        fixed.drop_rate() > 0.0,
        "baseline must be under real pressure for the comparison to mean anything"
    );
    assert!(
        auto.drop_rate() < fixed.drop_rate(),
        "autoscaled fleet must shed strictly less: auto {:.4} vs fixed {:.4}",
        auto.drop_rate(),
        fixed.drop_rate()
    );
    // …while provisioning no more compute than the fixed fleet, by both
    // the integral and the mean.
    assert!(
        auto.worker_seconds < fixed.worker_seconds,
        "auto spent {:.2} worker-seconds vs fixed {:.2}",
        auto.worker_seconds,
        fixed.worker_seconds
    );
    assert!(
        auto.mean_workers() < 3.0,
        "auto mean workers {:.3} must stay below the fixed fleet size",
        auto.mean_workers()
    );
    // The win comes from actually riding the bursts.
    assert!(
        auto.scale_events.len() >= 4,
        "expected up/down activity across burst cycles:\n{}",
        auto.scale_timeline()
    );
    let max_reached = auto
        .scale_events
        .iter()
        .map(|e| e.to_workers)
        .max()
        .unwrap();
    assert_eq!(
        max_reached, 8,
        "bursts should drive the fleet to its ceiling"
    );
}

#[test]
fn proportional_policy_tracks_a_step_load() {
    // The step-load-aware controller re-targets straight from the
    // arrival rate, so after the step it must jump, not climb.
    let specs = step_workload(4, 40, 7, SystemKind::CatdetA, BurstProfile::demo(), 1.5);
    let cfg = ServeConfig::new()
        .with_workers(1)
        .with_max_batch(4)
        .with_queue_capacity(4)
        .with_autoscale(AutoscaleConfig::proportional(1, 8, 0.06));
    let report = serve(specs, &cfg);
    assert!(
        report
            .scale_events
            .iter()
            .all(|e| e.reason == ScaleReason::LoadTracking),
        "proportional controller has exactly one reason:\n{}",
        report.scale_timeline()
    );
    // After the 30 fps × 4 stream step (120 fps × 0.06 s/frame ≈ 7.2),
    // a single decision must jump several workers at once (no hysteresis
    // staircase), and the fleet must reach the ceiling.
    assert!(
        report
            .scale_events
            .iter()
            .any(|e| e.to_workers > e.from_workers + 2),
        "expected a multi-worker jump after the load step:\n{}",
        report.scale_timeline()
    );
    assert_eq!(
        report.scale_events.iter().map(|e| e.to_workers).max(),
        Some(8),
        "sustained 120 fps must drive the fleet to its ceiling:\n{}",
        report.scale_timeline()
    );
}

#[test]
fn token_bucket_admission_caps_per_stream_rate() {
    // One camera firing at 100 fps for 0.5 s against a 10 fps / burst-5
    // bucket: admission must pass roughly burst + rate × span frames and
    // reject the rest, all accounted per stream and in the event log.
    let specs = vec![null_spec_steady(0, 100.0, 50, 0.0)];
    let cfg = ServeConfig::new()
        .with_workers(2)
        .with_queue_capacity(1_000)
        .with_admission(AdmissionConfig::token_bucket(10.0, 5.0));
    let report = serve(specs, &cfg);
    let s = &report.streams[0];
    assert_eq!(s.arrived, 50);
    assert_eq!(s.arrived, s.processed + s.dropped, "conservation");
    assert!(s.rejected > 0, "overdriven bucket must reject");
    assert_eq!(s.rejected, report.frames_rejected);
    assert_eq!(report.admission_events.len(), s.rejected);
    // Admitted = burst (5) + refill over the 0.49 s span (≈ 4.9) → 9 or
    // 10 depending on boundary ticks; never more.
    let admitted = s.arrived - s.rejected;
    assert!(
        (5..=11).contains(&admitted),
        "admitted {admitted} frames, expected ≈ burst + rate × span"
    );
    // Rejections are part of the deterministic story too.
    let again = serve(
        vec![null_spec_steady(0, 100.0, 50, 0.0)],
        &ServeConfig::new()
            .with_workers(2)
            .with_queue_capacity(1_000)
            .with_admission(AdmissionConfig::token_bucket(10.0, 5.0)),
    );
    assert_eq!(report.admission_events, again.admission_events);
}

#[test]
fn priority_admission_sheds_low_priority_streams_first() {
    // 6 overdriven cameras, alternating priority classes 0 and 1, one
    // worker, tiny queues: the fleet backlog crosses the watermark and
    // class 1 gets shed at the door while class 0 is never rejected
    // (queue backpressure may still drop its frames — that is counted
    // separately).
    let specs: Vec<_> = (0..6)
        .map(|i| null_spec_steady(i, 60.0, 40, i as f64 * 0.003).with_priority((i % 2) as u8))
        .collect();
    let cfg = ServeConfig::new()
        .with_workers(1)
        .with_max_batch(1)
        .with_queue_capacity(4)
        .with_admission(AdmissionConfig::priority(13));
    let report = serve(specs, &cfg);
    assert!(report.frames_rejected > 0, "overload must trigger shedding");
    for s in &report.streams {
        assert_eq!(s.arrived, s.processed + s.dropped, "conservation");
        assert!(s.rejected <= s.dropped);
        if s.stream_id % 2 == 0 {
            assert_eq!(
                s.rejected, 0,
                "priority-0 stream {} must never be shed at the door",
                s.stream_id
            );
        }
    }
    let low_priority_rejected: usize = report
        .streams
        .iter()
        .filter(|s| s.stream_id % 2 == 1)
        .map(|s| s.rejected)
        .sum();
    assert_eq!(low_priority_rejected, report.frames_rejected);
    // Every rejection in the event log names a low-priority stream.
    assert!(report.admission_events.iter().all(|e| e.stream % 2 == 1));
}
