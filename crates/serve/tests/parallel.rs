//! Real-thread fleet determinism: a fleet advanced by a pool of OS
//! threads must be **bit-identical** to the sequential loop — merged
//! reports, migration / scale / admission timelines, batch logs, and the
//! flight-recorder store contents — at every thread count, including
//! `0` (auto). Threads are a wall-clock knob, never a semantics knob.

mod common;

use catdet_serve::{
    mixed_workload, serve_fleet, serve_fleet_with_recorder, AdmissionConfig, AutoscaleConfig,
    EventKind, FleetReport, PartitionKind, PolicyConfig, Query, ServeConfig, ShardConfig,
    SharedRecorder, StreamSpec, SystemKind,
};
use common::null_spec_steady;
use proptest::prelude::*;

fn base_config(shards: usize) -> ServeConfig {
    ServeConfig::new()
        .with_workers(2)
        .with_max_batch(4)
        .with_queue_capacity(100_000)
        .with_shard(
            ShardConfig::sharded(shards)
                .with_partition(PartitionKind::StaticHash)
                .with_rebalance_interval_s(0.05),
        )
}

/// Runs the same workload at several thread counts and asserts every
/// report equals the sequential (`--threads 1`) reference bit for bit.
/// `FleetReport`'s `PartialEq` covers outputs, latency samples, batch
/// logs, timelines, migrations and fused-dispatch records.
fn assert_thread_count_invariant(cfg: &ServeConfig, streams: impl Fn() -> Vec<StreamSpec>) {
    let sequential = serve_fleet(streams(), &cfg.with_shard(cfg.shard.with_threads(1)));
    assert!(
        sequential.frames_processed() > 0,
        "workload too small to prove anything"
    );
    for threads in [2, 4, 0] {
        let threaded = serve_fleet(streams(), &cfg.with_shard(cfg.shard.with_threads(threads)));
        assert_eq!(
            sequential, threaded,
            "threads={threads} diverged from the sequential fleet"
        );
    }
}

#[test]
fn threaded_fleet_matches_sequential_independent_phase() {
    // The embarrassingly parallel path: independent shards between
    // rebalance ticks, live migrations at every barrier.
    let cfg = base_config(4);
    assert_thread_count_invariant(&cfg, || mixed_workload(8, 24, 11, SystemKind::CatdetA));
}

#[test]
fn threaded_fleet_matches_sequential_fused_lockstep() {
    // The lock-step path: cross-shard refinement fusion forces a barrier
    // at event granularity, so the pool is exercised thousands of times
    // per run with tiny advances.
    let cfg = base_config(3)
        .with_fuse_refinement(true)
        .with_refine_batch_window_s(0.004);
    assert_thread_count_invariant(&cfg, || mixed_workload(6, 16, 7, SystemKind::CatdetA));
}

#[test]
fn threaded_fleet_matches_sequential_control_plane() {
    // Autoscalers and admission gates run *inside* each engine; their
    // event timelines must survive threading untouched.
    let cfg = base_config(3)
        .with_autoscale(AutoscaleConfig::hysteresis(1, 6).with_control_interval_s(0.05))
        .with_admission(AdmissionConfig::token_bucket(60.0, 8.0));
    assert_thread_count_invariant(&cfg, || mixed_workload(9, 20, 3, SystemKind::CatdetB));
}

#[test]
fn threaded_fleet_matches_sequential_under_frame_policy() {
    // The adaptive policy layer makes per-frame detect/coast decisions
    // from tracker state that migrates between shards; the decisions (and
    // hence every output and priced op) must survive threading untouched.
    let cfg = base_config(3).with_policy(PolicyConfig::confidence_trigger(1.5));
    assert_thread_count_invariant(&cfg, || mixed_workload(8, 24, 11, SystemKind::CatdetA));

    // Per-stream overrides ride along: one camera on a fixed stride, the
    // rest on the fleet-wide trigger.
    let cfg = base_config(2).with_policy(PolicyConfig::confidence_trigger(1.0));
    assert_thread_count_invariant(&cfg, || {
        let mut streams = mixed_workload(6, 20, 13, SystemKind::CatdetA);
        streams[1].policy = Some(PolicyConfig::fixed_stride(3));
        streams
    });
}

#[test]
fn always_detect_policy_is_golden() {
    // The golden guarantee: the policy layer at its default is invisible.
    // An explicit always-detect config and a run whose pipelines are
    // actually wrapped (downgrade arms the wrapper even at always-detect)
    // both reproduce the unpoliced fleet report bit for bit.
    let streams = || mixed_workload(6, 16, 7, SystemKind::CatdetA);
    let bare = serve_fleet(streams(), &base_config(2));
    let explicit = serve_fleet(
        streams(),
        &base_config(2).with_policy(PolicyConfig::always_detect()),
    );
    assert_eq!(bare, explicit, "explicit always-detect diverged");

    // A priority gate with an unreachable watermark never sheds, so the
    // only difference from `bare` is that every pipeline runs inside the
    // (never-degraded) policy wrapper.
    let wrapped = serve_fleet(
        streams(),
        &base_config(2).with_admission(AdmissionConfig::priority(1_000_000).with_downgrade(true)),
    );
    assert_eq!(bare, wrapped, "wrapped always-detect diverged");
    assert_eq!(bare.frames_coasted(), 0);
    assert_eq!(bare.frames_skipped(), 0);
    assert_eq!(bare.frames_detected(), bare.frames_processed());
}

#[test]
fn policy_recorder_store_is_bit_identical_across_threads() {
    // Policy rows (one per coasted/skipped frame) land in the store in
    // deterministic order too — and replay depends on that.
    let streams = || mixed_workload(8, 18, 5, SystemKind::CatdetA);
    let run = |threads: usize| -> (FleetReport, SharedRecorder) {
        let recorder = SharedRecorder::new(64, usize::MAX, 4);
        let cfg = base_config(3)
            .with_policy(PolicyConfig::confidence_trigger(1.2))
            .with_shard(base_config(3).shard.with_threads(threads));
        let report = serve_fleet_with_recorder(streams(), &cfg, &recorder);
        (report, recorder)
    };
    let (seq_report, seq_rec) = run(1);
    let policy_rows = seq_rec.scan(&Query::all().kind(EventKind::Policy));
    assert!(
        !policy_rows.is_empty(),
        "confidence trigger never coasted — workload too easy to prove anything"
    );
    assert_eq!(
        policy_rows.len(),
        seq_report.frames_coasted() + seq_report.frames_skipped(),
        "every coasted/skipped frame books exactly one policy row"
    );
    for threads in [2, 4] {
        let (thr_report, thr_rec) = run(threads);
        assert_eq!(seq_report, thr_report, "threads={threads} report diverged");
        assert_eq!(
            seq_rec.scan(&Query::all()),
            thr_rec.scan(&Query::all()),
            "threads={threads} recorded event streams diverged"
        );
    }
}

#[test]
fn threaded_fleet_recorder_store_is_bit_identical() {
    // The strongest claim: not just the report, the *recorder store* —
    // every scanned event, the latency summary, snapshot count and chunk
    // statistics — must match the sequential run. This is what the
    // barrier writing end exists for: store ingest order is shard-id
    // order at every barrier, at every thread count.
    let streams = || mixed_workload(8, 18, 5, SystemKind::CatdetA);
    let run = |threads: usize| -> (FleetReport, SharedRecorder) {
        let recorder = SharedRecorder::new(64, usize::MAX, 4);
        let cfg = base_config(4).with_shard(base_config(4).shard.with_threads(threads));
        let report = serve_fleet_with_recorder(streams(), &cfg, &recorder);
        (report, recorder)
    };
    let (seq_report, seq_rec) = run(1);
    assert!(seq_rec.stats().events > 0, "recorder never engaged");
    assert!(
        seq_rec.stats().snapshots > 0,
        "snapshot cadence never fired"
    );
    for threads in [2, 4] {
        let (thr_report, thr_rec) = run(threads);
        assert_eq!(seq_report, thr_report, "threads={threads} report diverged");
        assert_eq!(
            seq_rec.stats(),
            thr_rec.stats(),
            "threads={threads} store statistics diverged"
        );
        assert_eq!(
            seq_rec.scan(&Query::all()),
            thr_rec.scan(&Query::all()),
            "threads={threads} recorded event streams diverged"
        );
        assert_eq!(
            seq_rec.latency_stats(&Query::all()),
            thr_rec.latency_stats(&Query::all()),
            "threads={threads} recorded latency summary diverged"
        );
    }
}

#[test]
fn oversubscribed_threads_cap_at_shard_count() {
    // More threads than shards must neither deadlock nor diverge.
    let cfg = base_config(2).with_shard(base_config(2).shard.with_threads(16));
    let streams = || {
        vec![
            null_spec_steady(0, 60.0, 30, 0.0),
            null_spec_steady(1, 60.0, 30, 0.0),
            null_spec_steady(2, 60.0, 30, 0.0),
        ]
    };
    let threaded = serve_fleet(streams(), &cfg);
    let sequential = serve_fleet(streams(), &base_config(2));
    assert_eq!(sequential, threaded);
}

proptest! {
    /// Random fleets — shard counts, thread counts, fusion, rebalance
    /// cadence and workload shape all vary — and the threaded run must
    /// stay bit-identical to the sequential one every time.
    #[test]
    fn prop_threaded_fleet_is_bit_identical(
        shards in 2usize..5,
        threads in 2usize..6,
        fuse in proptest::bool::ANY,
        rebalance_ms in 20.0f64..120.0,
        specs in proptest::collection::vec((10.0f64..120.0, 4usize..20, 0.0f64..0.05), 2..8),
    ) {
        let build = || -> Vec<StreamSpec> {
            specs
                .iter()
                .enumerate()
                .map(|(id, &(fps, frames, start))| null_spec_steady(id, fps, frames, start))
                .collect()
        };
        let shard_cfg = ShardConfig::sharded(shards)
            .with_partition(PartitionKind::StaticHash)
            .with_rebalance_interval_s(rebalance_ms / 1e3);
        let mut cfg = ServeConfig::new()
            .with_workers(1)
            .with_queue_capacity(100_000)
            .with_shard(shard_cfg);
        if fuse {
            cfg = cfg.with_fuse_refinement(true).with_refine_batch_window_s(0.004);
        }
        let sequential = serve_fleet(build(), &cfg.with_shard(shard_cfg.with_threads(1)));
        let threaded = serve_fleet(build(), &cfg.with_shard(shard_cfg.with_threads(threads)));
        prop_assert_eq!(sequential, threaded);
    }
}
