//! Sharded-fleet tests: the 1-shard golden equivalence (a fleet of one is
//! bit-identical to the monolithic scheduler), exact frame conservation
//! under live migrations, cross-shard refinement fusion, and merged
//! reporting.

mod common;

use catdet_serve::{
    mixed_workload, serve, serve_fleet, AdmissionConfig, AutoscaleConfig, FleetReport,
    LatencyStats, PartitionKind, ServeConfig, ShardConfig, StreamSpec, SystemKind,
};
use common::null_spec_steady;
use proptest::prelude::*;

fn no_drop_config() -> ServeConfig {
    ServeConfig::new().with_queue_capacity(100_000)
}

/// Asserts the fleet invariant every run must satisfy: exact conservation
/// (arrived == processed + dropped, fleet-wide and per stream), every
/// stream reported exactly once, outputs sized to processed counts.
fn assert_conservation(report: &FleetReport, expect_arrived: usize) {
    assert_eq!(
        report.frames_arrived(),
        expect_arrived,
        "every generated frame must be accounted as arrived"
    );
    assert_eq!(
        report.frames_processed() + report.frames_dropped(),
        report.frames_arrived(),
        "fleet conservation: processed + dropped != arrived"
    );
    let streams = report.streams();
    let mut ids: Vec<usize> = streams.iter().map(|s| s.stream_id).collect();
    ids.dedup();
    assert_eq!(
        ids.len(),
        streams.len(),
        "a stream appeared on more than one shard's final report"
    );
    for s in &streams {
        assert_eq!(
            s.processed + s.dropped,
            s.arrived,
            "stream {} accounting leak",
            s.stream_id
        );
        assert_eq!(s.outputs.len(), s.processed);
        assert_eq!(s.latency_samples.len(), s.processed);
    }
}

#[test]
fn golden_one_shard_fleet_is_bit_identical_to_serve() {
    // The PR 3 staged-equivalence scenarios (mixed KITTI + CityPersons
    // fleets over CaTDet pipelines), under every control-plane combination
    // the scheduler supports: plain, fused refinement, and the full
    // autoscale + admission control plane. A 1-shard fleet must reproduce
    // the monolithic scheduler's ServeReport bit for bit — same outputs,
    // same latencies, same batch log, same timelines.
    let configs: Vec<(&str, ServeConfig)> = vec![
        ("plain", no_drop_config().with_workers(3).with_max_batch(4)),
        (
            "fused",
            no_drop_config()
                .with_workers(2)
                .with_max_batch(8)
                .with_fuse_refinement(true)
                .with_refine_batch_window_s(0.004),
        ),
        (
            "control-plane",
            ServeConfig::new()
                .with_workers(1)
                .with_max_batch(4)
                .with_queue_capacity(4)
                .with_autoscale(AutoscaleConfig::hysteresis(1, 6).with_cooldown_ticks(0))
                .with_admission(AdmissionConfig::token_bucket(25.0, 6.0)),
        ),
    ];
    for (name, cfg) in configs {
        // Rebalancing knobs set but inert at one shard: the golden claim
        // covers the whole ShardConfig surface.
        let cfg = cfg.with_shard(
            ShardConfig::single()
                .with_rebalance_interval_s(0.1)
                .with_migration_cost_frames(0),
        );
        let mono = serve(mixed_workload(6, 12, 21, SystemKind::CatdetA), &cfg);
        let fleet = serve_fleet(mixed_workload(6, 12, 21, SystemKind::CatdetA), &cfg);
        assert_eq!(fleet.shards.len(), 1);
        assert!(fleet.migrations.is_empty());
        assert!(fleet.fused_refinements.is_empty());
        assert_eq!(
            fleet.shards[0], mono,
            "1-shard fleet diverged from serve() under the {name} config"
        );
        // Merged accessors agree with the single report.
        assert_eq!(fleet.frames_processed(), mono.frames_processed);
        assert_eq!(fleet.makespan_s(), mono.makespan_s);
        assert_eq!(fleet.gpu_dispatch_s(), mono.gpu_dispatch_s);
        assert_eq!(fleet.worst_p99_s(), mono.worst_p99_s());
    }
}

#[test]
fn rebalancer_migrates_streams_and_conserves_frames() {
    // Every stream carries 40 frames, so least-loaded placement pairs
    // them by tie-breaking: ids 0 and 2 (200 fps stampedes) land together
    // on shard 0 while ids 1 and 3 (10 fps trickles) share shard 1. Shard
    // 0 drowns next to an idle neighbour; the rebalancer must move a
    // backlogged stream, and every frame must stay accounted for.
    let streams = || -> Vec<StreamSpec> {
        vec![
            null_spec_steady(0, 200.0, 40, 0.0),
            null_spec_steady(1, 10.0, 40, 0.005),
            null_spec_steady(2, 200.0, 40, 0.003),
            null_spec_steady(3, 10.0, 40, 0.007),
        ]
    };
    let total: usize = streams().iter().map(|s| s.source.len()).sum();
    let cfg = no_drop_config()
        .with_workers(1)
        .with_max_batch(2)
        .with_shard(
            ShardConfig::sharded(2)
                .with_partition(PartitionKind::LeastLoaded)
                .with_rebalance_interval_s(0.05)
                .with_migration_cost_frames(2),
        );
    let report = serve_fleet(streams(), &cfg);
    assert_conservation(&report, total);
    assert_eq!(report.frames_dropped(), 0, "queues are unbounded here");
    assert!(
        !report.migrations.is_empty(),
        "an overloaded shard next to an idle one must trigger migration:\n{}",
        report.summary()
    );
    for m in &report.migrations {
        assert_ne!(m.from_shard, m.to_shard);
        assert!(m.t_s > 0.0);
    }
    // And the whole run — migrations included — is bit-reproducible.
    let again = serve_fleet(streams(), &cfg);
    assert_eq!(report, again, "fleet run is not bit-reproducible");

    // The rebalanced fleet must beat the same fleet with rebalancing off
    // (both stampedes stuck sharing one worker): strictly better tail
    // latency, no longer a makespan.
    let frozen = serve_fleet(
        streams(),
        &no_drop_config()
            .with_workers(1)
            .with_max_batch(2)
            .with_shard(ShardConfig::sharded(2).with_partition(PartitionKind::LeastLoaded)),
    );
    assert!(frozen.migrations.is_empty());
    assert!(
        report.worst_p99_s().unwrap() < frozen.worst_p99_s().unwrap(),
        "rebalancing should cut the tail: p99 {:?} vs frozen {:?}\n{}",
        report.worst_p99_s(),
        frozen.worst_p99_s(),
        report.migration_timeline()
    );
    assert!(report.makespan_s() <= frozen.makespan_s() + 1e-9);
}

#[test]
fn migrated_catdet_stream_produces_identical_outputs() {
    // A real CaTDet pipeline migrating mid-run must carry its tracker and
    // detector state exactly: with no drops on either side, the migrated
    // run's per-frame outputs are bit-identical to a monolithic run of
    // the same stream.
    let streams = || mixed_workload(2, 30, 7, SystemKind::CatdetA);
    let base = no_drop_config().with_workers(1).with_max_batch(2);
    let mono = serve(streams(), &base);
    // Both mixed-workload streams hash onto the same shard of 2 under
    // static-hash? Force the skew instead: least-loaded places one per
    // shard; drive migrations with a zero-cost threshold so any backlog
    // imbalance moves a stream back and forth.
    let fleet_cfg = base.with_shard(
        ShardConfig::sharded(2)
            .with_partition(PartitionKind::LeastLoaded)
            .with_rebalance_interval_s(0.02)
            .with_migration_cost_frames(0),
    );
    let fleet = serve_fleet(streams(), &fleet_cfg);
    assert_conservation(&fleet, mono.frames_arrived);
    assert_eq!(fleet.frames_dropped(), 0);
    let fleet_streams = fleet.streams();
    for (mono_stream, fleet_stream) in mono.streams.iter().zip(&fleet_streams) {
        assert_eq!(mono_stream.stream_id, fleet_stream.stream_id);
        assert_eq!(
            mono_stream.outputs, fleet_stream.outputs,
            "stream {} detections changed across sharding/migration — \
             per-stream state did not travel intact",
            mono_stream.stream_id
        );
    }
}

#[test]
fn fleet_fusion_shares_refinement_dispatches_across_shards() {
    // 8 CaTDet streams over 4 shards: per-shard fusion can only pool the
    // ~2 streams of each shard, fleet-wide fusion pools across all of
    // them. Cross-shard dispatches must exist, save launches, cut the
    // summed priced GPU time, and leave every detection untouched.
    let streams = || mixed_workload(8, 12, 21, SystemKind::CatdetA);
    let base = no_drop_config()
        .with_workers(2)
        .with_max_batch(8)
        .with_fuse_refinement(true)
        .with_refine_batch_window_s(0.004);
    let unfused = serve_fleet(
        streams(),
        &base
            .with_fuse_refinement(false)
            .with_shard(ShardConfig::sharded(4)),
    );
    let per_shard = serve_fleet(
        streams(),
        &base.with_shard(ShardConfig::sharded(4).with_fuse_across_shards(false)),
    );
    let fleet_wide = serve_fleet(
        streams(),
        &base.with_shard(ShardConfig::sharded(4).with_fuse_across_shards(true)),
    );
    assert!(unfused.fused_refinements.is_empty());
    assert!(per_shard.fused_refinements.is_empty());
    assert!(
        !fleet_wide.fused_refinements.is_empty(),
        "fleet-wide fusion never produced a cross-shard dispatch"
    );
    assert!(
        fleet_wide.fused_refinements.iter().any(|r| {
            let first = r.shards[0];
            r.shards.iter().any(|&s| s != first)
        }),
        "every fused dispatch stayed within one shard — no cross-shard sharing"
    );
    // Sharding fractures the fuse pool (each shard can only pool its own
    // ~2 streams); fleet-wide pooling must recover sharing beyond that.
    let batch = fleet_wide.merged_batch();
    assert!(
        batch.mean_refine_batch() > per_shard.merged_batch().mean_refine_batch(),
        "fleet-wide pooling must share more than per-shard pools: mean {} vs {}",
        batch.mean_refine_batch(),
        per_shard.merged_batch().mean_refine_batch()
    );
    // And the PR 3 amortisation survives sharding: both fused modes beat
    // the unfused fleet on priced dispatch time, fleet-wide included.
    assert!(
        fleet_wide.gpu_dispatch_s() < unfused.gpu_dispatch_s(),
        "cross-shard fusion must beat the unfused fleet: {} vs {}",
        fleet_wide.gpu_dispatch_s(),
        unfused.gpu_dispatch_s()
    );
    assert!(
        per_shard.gpu_dispatch_s() < unfused.gpu_dispatch_s(),
        "per-shard fusion must beat the unfused fleet: {} vs {}",
        per_shard.gpu_dispatch_s(),
        unfused.gpu_dispatch_s()
    );
    // Fusion changes when work is priced, never what work is done.
    assert_eq!(fleet_wide.frames_processed(), per_shard.frames_processed());
    for (a, b) in per_shard.streams().iter().zip(&fleet_wide.streams()) {
        assert_eq!(
            a.outputs, b.outputs,
            "stream {} detections changed under cross-shard fusion",
            a.stream_id
        );
    }
    // Deterministic, including the fused-dispatch history.
    let again = serve_fleet(
        streams(),
        &base.with_shard(ShardConfig::sharded(4).with_fuse_across_shards(true)),
    );
    assert_eq!(fleet_wide, again);
}

#[test]
fn merged_latency_pools_raw_samples_not_percentiles() {
    // Two shards with wildly different latency regimes: one idle camera
    // alone on its shard (static hash puts id 2 on shard 0, ids 0 and 1
    // on shard 1) and an overloaded pair on the other. The merged p99
    // must equal the pooled nearest-rank p99 (dominated by the slow
    // samples), not the average of per-shard p99s.
    let streams = vec![
        null_spec_steady(2, 1.0, 8, 0.0),     // relaxed, alone on shard 0
        null_spec_steady(0, 200.0, 120, 0.0), // stampede
        null_spec_steady(1, 200.0, 120, 0.001),
    ];
    let total: usize = streams.iter().map(|s| s.source.len()).sum();
    let report = serve_fleet(
        streams,
        &no_drop_config()
            .with_workers(1)
            .with_max_batch(1)
            .with_shard(ShardConfig::sharded(2).with_partition(PartitionKind::StaticHash)),
    );
    assert_conservation(&report, total);
    let mut pooled: Vec<f64> = report
        .streams()
        .iter()
        .flat_map(|s| s.latency_samples.iter().copied())
        .collect();
    assert_eq!(pooled.len(), report.frames_processed());
    let reference = LatencyStats::from_samples(&pooled).expect("fleet served frames");
    assert_eq!(report.merged_latency(), Some(reference));
    // The footgun the raw samples exist to prevent: averaging per-shard
    // p99s would sit far from the pooled truth here.
    let naive_avg: f64 = report
        .shards
        .iter()
        .filter_map(|s| s.worst_p99_s())
        .sum::<f64>()
        / report.shards.len() as f64;
    assert!(
        (naive_avg - reference.p99_s).abs() > 0.1 * reference.p99_s,
        "test workload too tame to demonstrate the percentile-merge footgun"
    );
    pooled.sort_by(f64::total_cmp);
    assert_eq!(
        report.merged_latency().expect("fleet served frames").max_s,
        *pooled.last().unwrap()
    );
}

#[test]
fn fused_fleet_survives_migration_onto_drained_shard() {
    // Regression: in the fused lock-step loop, a rebalance tick can land
    // a migrated stream (with backlog) on an already-drained engine. The
    // fleet then asks every engine for its next event *before* any
    // `run_until` pass has re-run the dispatcher — and the engine used to
    // panic with "scheduler stalled: frames queued but no future event"
    // because an idle worker next to an eligible stream booked no event.
    // These exact parameters reproduced the stall.
    let specs = [
        (29.288944259093835, 10, 0.036939220475416305),
        (74.5066272425318, 13, 0.025988218952662193),
        (46.12081798512697, 16, 0.03614408925389978),
        (69.2832993772015, 7, 0.010032323879528788),
        (31.22560566573869, 18, 0.018703435570863493),
    ];
    let streams: Vec<StreamSpec> = specs
        .iter()
        .enumerate()
        .map(|(id, &(fps, frames, start))| null_spec_steady(id, fps, frames, start))
        .collect();
    let total: usize = streams.iter().map(|s| s.source.len()).sum();
    let report = serve_fleet(
        streams,
        &no_drop_config()
            .with_workers(1)
            .with_fuse_refinement(true)
            .with_refine_batch_window_s(0.004)
            .with_shard(
                ShardConfig::sharded(4)
                    .with_partition(PartitionKind::StaticHash)
                    .with_rebalance_interval_s(0.11602991918830421),
            ),
    );
    assert_conservation(&report, total);
    assert!(
        !report.migrations.is_empty(),
        "workload no longer triggers the migration that exposed the stall"
    );
}

#[test]
fn zero_frame_shard_merges_as_absent_not_zero() {
    // Regression for the empty-sample fold: a shard that served zero
    // frames used to contribute a 0-valued LatencyStats to the merge,
    // dragging the fleet's "merged" percentiles toward zero. Static hash
    // puts id 2 alone on shard 0 and ids 0/1 on shard 1; giving ids 0/1
    // empty arrival lists leaves shard 1 with nothing to serve.
    let streams = vec![
        null_spec_steady(2, 30.0, 10, 0.0),
        null_spec_steady(0, 30.0, 0, 0.0),
        null_spec_steady(1, 30.0, 0, 0.0),
    ];
    let report = serve_fleet(
        streams,
        &no_drop_config()
            .with_workers(1)
            .with_shard(ShardConfig::sharded(2).with_partition(PartitionKind::StaticHash)),
    );
    assert_conservation(&report, 10);
    let idle = &report.shards[1];
    assert_eq!(idle.frames_processed, 0, "shard 1 must have served nothing");
    assert_eq!(idle.worst_p99_s(), None);
    for s in &idle.streams {
        assert_eq!(s.latency, None, "an unserved stream has no distribution");
    }
    // The merge equals the active shard's pooled stats exactly — the idle
    // shard contributes nothing, not zeros.
    let active: Vec<f64> = report.shards[0]
        .streams
        .iter()
        .flat_map(|s| s.latency_samples.iter().copied())
        .collect();
    assert_eq!(active.len(), 10);
    let reference = LatencyStats::from_samples(&active).expect("shard 0 served frames");
    assert_eq!(report.merged_latency(), Some(reference));
    assert!(reference.p50_s > 0.0, "zeros leaked into the merge");
    assert_eq!(report.worst_p99_s(), Some(reference.p99_s));

    // A fleet where *every* shard served zero frames has no latency
    // distribution at all, and its summary still renders.
    let empty = serve_fleet(
        (0..3)
            .map(|id| null_spec_steady(id, 30.0, 0, 0.0))
            .collect(),
        &no_drop_config()
            .with_shard(ShardConfig::sharded(2).with_partition(PartitionKind::StaticHash)),
    );
    assert_eq!(empty.frames_processed(), 0);
    assert_eq!(empty.merged_latency(), None);
    assert_eq!(empty.worst_p99_s(), None);
    assert!(empty.summary().contains("shards"));
}

/// Arrival times for a camera bursting at `fps` for `burst_s` out of
/// every `cycle_s`, phase-shifted by `phase_offset_s`.
fn burst_arrivals(
    phase_offset_s: f64,
    cycle_s: f64,
    burst_s: f64,
    fps: f64,
    cycles: usize,
) -> Vec<f64> {
    let mut out = Vec::new();
    for c in 0..cycles {
        let start = phase_offset_s + c as f64 * cycle_s;
        for i in 0..(burst_s * fps) as usize {
            out.push(start + i as f64 / fps);
        }
    }
    out
}

#[test]
fn migration_cooldown_stops_two_shard_ping_pong() {
    // Regression: two heavy cameras bursting in anti-phase (ids 0 and 1,
    // one per shard under least-loaded placement paired with a steady
    // mid-weight mover and a trickle) flip which shard reads hot every
    // half-cycle. Without a cooldown the mover (stream 2) is the best
    // candidate in *both* directions and bounces between the shards on
    // back-to-back ticks, paying the migration cost twice and balancing
    // nothing.
    let streams = || -> Vec<StreamSpec> {
        vec![
            common::null_spec_with_arrivals(0, burst_arrivals(0.0, 0.8, 0.4, 100.0, 3)),
            common::null_spec_with_arrivals(1, burst_arrivals(0.4, 0.8, 0.4, 100.0, 3)),
            common::null_spec_with_arrivals(2, (0..48).map(|i| i as f64 / 20.0).collect()),
            common::null_spec_with_arrivals(3, (0..4).map(|i| i as f64 / 2.0).collect()),
        ]
    };
    let total: usize = streams().iter().map(|s| s.source.len()).sum();
    let interval = 0.05;
    let cfg = |cooldown: usize| {
        no_drop_config()
            .with_workers(1)
            .with_max_batch(1)
            .with_shard(
                ShardConfig::sharded(2)
                    .with_partition(PartitionKind::LeastLoaded)
                    .with_rebalance_interval_s(interval)
                    .with_migration_cost_frames(0)
                    .with_migration_cooldown_ticks(cooldown),
            )
    };
    // A "bounce": the same stream returning to the shard it just left on
    // the immediately following tick.
    let bounces = |report: &FleetReport| {
        report
            .migrations
            .windows(2)
            .filter(|w| {
                w[0].stream == w[1].stream
                    && w[1].from_shard == w[0].to_shard
                    && w[1].t_s - w[0].t_s <= interval + 1e-9
            })
            .count()
    };

    let thrashing = serve_fleet(streams(), &cfg(0));
    assert_conservation(&thrashing, total);
    assert!(
        bounces(&thrashing) > 0,
        "workload no longer reproduces the cooldown-free ping-pong:\n{}",
        thrashing.migration_timeline()
    );

    // The default cooldown (2 ticks) must eliminate next-tick returns
    // entirely: every same-stream re-migration waits out the cooldown.
    let calmed = serve_fleet(streams(), &cfg(2));
    assert_conservation(&calmed, total);
    assert_eq!(
        bounces(&calmed),
        0,
        "cooldown 2 still allowed an immediate return trip:\n{}",
        calmed.migration_timeline()
    );
    let mut last_move: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    for m in &calmed.migrations {
        if let Some(prev) = last_move.insert(m.stream, m.t_s) {
            assert!(
                m.t_s - prev > 2.0 * interval + 1e-9,
                "stream {} re-migrated {:.3}s after its last move (cooldown is 2 ticks)",
                m.stream,
                m.t_s - prev
            );
        }
    }
    // No extra churn, and the run stays bit-reproducible.
    assert!(calmed.migrations.len() <= thrashing.migrations.len());
    assert_eq!(calmed, serve_fleet(streams(), &cfg(2)));
}

proptest! {
    /// Random fleets under random live migrations: shard counts, partition
    /// policies, overdrive factors, queue capacities and rebalance cadence
    /// all vary; every frame must be conserved exactly (no loss, no
    /// duplication) and every run must be bit-reproducible.
    #[test]
    fn prop_fleet_conserves_frames_under_random_migrations(
        shards in 2usize..5,
        partition_pick in 0usize..3,
        queue_cap in 1usize..6,
        rebalance_ms in 20.0f64..200.0,
        migration_cost in 0usize..4,
        specs in proptest::collection::vec((1.0f64..120.0, 4usize..30, 0.0f64..0.05), 2..7),
    ) {
        let partition = [
            PartitionKind::StaticHash,
            PartitionKind::LeastLoaded,
            PartitionKind::ConsistentHash,
        ][partition_pick];
        let build = || -> Vec<StreamSpec> {
            specs
                .iter()
                .enumerate()
                .map(|(id, &(fps, frames, start))| null_spec_steady(id, fps, frames, start))
                .collect()
        };
        let total: usize = build().iter().map(|s| s.source.len()).sum();
        let cfg = ServeConfig::new()
            .with_workers(1)
            .with_max_batch(2)
            .with_queue_capacity(queue_cap)
            .with_shard(
                ShardConfig::sharded(shards)
                    .with_partition(partition)
                    .with_rebalance_interval_s(rebalance_ms / 1e3)
                    .with_migration_cost_frames(migration_cost),
            );
        let report = serve_fleet(build(), &cfg);
        assert_conservation(&report, total);
        let again = serve_fleet(build(), &cfg);
        prop_assert_eq!(report, again);
    }
}
