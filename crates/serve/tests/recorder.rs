//! Flight-recorder integration tests: recording never perturbs the run,
//! golden time-travel replay is bit-identical to the live run, recorded
//! latencies answer queries with exactly the report's percentiles (under
//! random chunk boundaries), and chunk eviction surfaces as an actionable
//! replay error instead of silent divergence.

mod common;

use catdet_serve::{
    mixed_workload, replay_stream, serve, serve_fleet_with_recorder, serve_with_recorder, Event,
    EventKind, LatencyStats, Query, ReplayError, ServeConfig, ShardConfig, SharedRecorder,
    StreamSpec, SystemKind,
};
use common::null_spec_steady;
use proptest::prelude::*;

fn no_drop_config() -> ServeConfig {
    ServeConfig::new()
        .with_workers(2)
        .with_max_batch(4)
        .with_queue_capacity(100_000)
}

/// The recorded sequence numbers of `stream`'s surviving completions, in
/// scan order.
fn surviving_seqs(recorder: &SharedRecorder, stream: usize) -> Vec<usize> {
    recorder
        .scan(&Query::all().kind(EventKind::Detection).stream(stream))
        .iter()
        .filter_map(|r| match r.event {
            Event::Detection { seq, .. } => Some(seq),
            _ => None,
        })
        .collect()
}

#[test]
fn recording_never_perturbs_the_run() {
    // The recorder hooks sit inside the scheduler hot path; the guarantee
    // is that they observe, never steer. A recorded run's report must be
    // bit-identical to the unrecorded run's — outputs, latencies, batch
    // log, timelines, everything ServeReport's PartialEq covers.
    let streams = || mixed_workload(4, 16, 11, SystemKind::CatdetA);
    let plain = serve(streams(), &no_drop_config());
    let recorder = SharedRecorder::new(64, usize::MAX, 4);
    let recorded = serve_with_recorder(streams(), &no_drop_config(), &recorder);
    assert_eq!(
        plain, recorded,
        "recording perturbed the run — the report diverged from the unrecorded one"
    );
    // And the recorder really was live: one Detection and one Track event
    // per processed frame, plus periodic snapshots.
    let detections = recorder.scan(&Query::all().kind(EventKind::Detection));
    assert_eq!(detections.len(), plain.frames_processed);
    assert_eq!(
        recorder.scan(&Query::all().kind(EventKind::Track)).len(),
        plain.frames_processed
    );
    assert!(
        recorder.stats().snapshots > 0,
        "snapshot cadence 4 never fired"
    );
}

#[test]
fn golden_replay_is_bit_identical_to_live_run() {
    // Mixed KITTI-like + CityPersons-like streams over CaTDet pipelines,
    // recorded with a mid-run snapshot cadence. Every stream must replay
    // bit-exactly from the nearest snapshot before the run's midpoint:
    // hashes verified against the recording AND detections compared
    // field-for-field against the live report's outputs.
    let streams = || mixed_workload(4, 24, 7, SystemKind::CatdetA);
    let recorder = SharedRecorder::new(128, usize::MAX, 6);
    let report = serve_with_recorder(streams(), &no_drop_config(), &recorder);
    let mid = report.makespan_s * 0.5;
    let mut resumed_mid_run = false;
    for spec in streams() {
        let id = spec.source.stream_id;
        let live = report
            .streams
            .iter()
            .find(|s| s.stream_id == id)
            .expect("stream reported");
        let replay = replay_stream(&recorder, &spec, mid).expect("replay must run");
        assert!(
            replay.verified(),
            "stream {id} replay diverged at seqs {:?}",
            replay.mismatched_seqs()
        );
        resumed_mid_run |= replay.resumed_after_seq > 0;
        // Hash equality is necessary; detection equality is the claim.
        for f in &replay.frames {
            let (frame_index, detections) = &live.outputs[f.seq - 1];
            assert_eq!(*frame_index, f.frame_index);
            assert_eq!(
                detections, &f.detections,
                "stream {id} seq {}: replayed detections differ from live outputs",
                f.seq
            );
        }
        // Replay covers everything after the resume point, through the end.
        assert_eq!(
            replay.frames.len(),
            live.processed - replay.resumed_after_seq
        );
        assert_eq!(
            replay.frames.last().expect("frames replayed").seq,
            live.processed
        );
    }
    assert!(
        resumed_mid_run,
        "no stream resumed from a snapshot — cadence or midpoint is wrong"
    );

    // From before the first snapshot, replay re-drives from scratch and
    // still verifies (covers the no-snapshot import path).
    let spec = streams().remove(0);
    let live_processed = report.streams[0].processed;
    let from_zero = replay_stream(&recorder, &spec, 0.0).expect("cold replay must run");
    assert_eq!(from_zero.resumed_after_seq, 0);
    assert_eq!(from_zero.snapshot_t_s, None);
    assert!(from_zero.verified());
    assert_eq!(from_zero.frames.len(), live_processed);
}

#[test]
fn eviction_gap_is_an_actionable_error() {
    // A tight retention budget evicts the run's early chunks. Replaying
    // from the beginning must fail loudly with the exact gap — never
    // silently replay a truncated prefix.
    let streams = || mixed_workload(1, 60, 3, SystemKind::CatdetA);
    let recorder = SharedRecorder::new(8, 6, 0);
    let report = serve_with_recorder(streams(), &no_drop_config(), &recorder);
    let stats = recorder.stats();
    assert!(
        stats.chunks_evicted > 0,
        "retention 6 never forced an eviction"
    );
    assert!(stats.events_evicted > 0);
    let surviving = surviving_seqs(&recorder, 0);
    let earliest = *surviving
        .iter()
        .min()
        .expect("the freshest detection chunks must survive the final seal");
    assert!(
        earliest > 1,
        "eviction left seq 1 intact — budget too loose to test"
    );
    assert!(surviving.len() < report.streams[0].processed);
    let err = replay_stream(&recorder, &streams()[0], 0.0)
        .expect_err("replay across an evicted gap must fail");
    assert_eq!(
        err,
        ReplayError::EvictedGap {
            stream: 0,
            expected_seq: 1,
            found_seq: earliest,
        }
    );
}

#[test]
fn fleet_recording_partitions_by_shard_and_matches_merged_report() {
    // A recorded 2-shard fleet: per-shard queries must partition the
    // fleet's completions exactly, and the full-window latency summary
    // must reproduce the merged report's pooled percentiles bit-for-bit.
    let streams = || mixed_workload(6, 12, 21, SystemKind::CatdetA);
    let recorder = SharedRecorder::new(64, usize::MAX, 0);
    let cfg = no_drop_config().with_shard(ShardConfig::sharded(2));
    let fleet = serve_fleet_with_recorder(streams(), &cfg, &recorder);
    let per_shard: Vec<usize> = (0..2)
        .map(|k| {
            recorder
                .scan(&Query::all().kind(EventKind::Detection).shard(k))
                .len()
        })
        .collect();
    assert_eq!(per_shard.iter().sum::<usize>(), fleet.frames_processed());
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "a shard recorded nothing: {per_shard:?}"
    );
    let summary = recorder.latency_stats(&Query::all());
    let fleet_streams = fleet.streams();
    let reference =
        LatencyStats::merged(fleet_streams.iter().map(|s| s.latency_samples.as_slice()))
            .expect("fleet served frames");
    assert_eq!(summary.samples, fleet.frames_processed());
    assert_eq!(summary.mean_s, reference.mean_s);
    assert_eq!(summary.p50_s, reference.p50_s);
    assert_eq!(summary.p95_s, reference.p95_s);
    assert_eq!(summary.p99_s, reference.p99_s);
    assert_eq!(summary.max_s, reference.max_s);
}

proptest! {
    /// Random workloads recorded under random chunk boundaries: however
    /// events land in chunks, the recorder's full-window latency summary
    /// must equal the report's pooled `LatencyStats` bit-for-bit — fleet-
    /// wide and per stream. This is the telemetry-fidelity contract: the
    /// store's delta/varint codec and nearest-rank query are lossless.
    #[test]
    fn prop_recorded_percentiles_equal_report_under_random_chunking(
        chunk_events in 1usize..96,
        specs in proptest::collection::vec((5.0f64..200.0, 3usize..24, 0.0f64..0.05), 1..6),
    ) {
        let build = || -> Vec<StreamSpec> {
            specs
                .iter()
                .enumerate()
                .map(|(id, &(fps, frames, start))| null_spec_steady(id, fps, frames, start))
                .collect()
        };
        let recorder = SharedRecorder::new(chunk_events, usize::MAX, 0);
        let report = serve_with_recorder(build(), &no_drop_config(), &recorder);
        let full = Query::all().between(f64::NEG_INFINITY, f64::INFINITY);
        let summary = recorder.latency_stats(&full);
        let reference =
            LatencyStats::merged(report.streams.iter().map(|s| s.latency_samples.as_slice()))
                .expect("run served frames");
        prop_assert_eq!(summary.samples, report.frames_processed);
        prop_assert_eq!(summary.mean_s, reference.mean_s);
        prop_assert_eq!(summary.p50_s, reference.p50_s);
        prop_assert_eq!(summary.p95_s, reference.p95_s);
        prop_assert_eq!(summary.p99_s, reference.p99_s);
        prop_assert_eq!(summary.max_s, reference.max_s);
        for s in &report.streams {
            let per = recorder.latency_stats(&Query::all().stream(s.stream_id));
            let r = LatencyStats::from_samples(&s.latency_samples).expect("stream served frames");
            prop_assert_eq!(per.samples, s.processed);
            prop_assert_eq!(per.p50_s, r.p50_s);
            prop_assert_eq!(per.p99_s, r.p99_s);
            prop_assert_eq!(per.max_s, r.max_s);
        }
    }
}
