//! Integration tests for the serving subsystem: cross-stream state
//! isolation under concurrency, exact backpressure accounting, and
//! worker-count scaling.

use catdet_core::{run_collect, PresetFactory, SystemFactory, SystemKind};
use catdet_data::{citypersons_like, kitti_like, StreamSource, VideoDataset};
use catdet_serve::{
    mixed_workload, serve, DropPolicy, SchedulePolicy, ServeConfig, ServeReport, StreamSpec,
};
use std::sync::Arc;

/// Builds an 8-stream mixed workload with full control over the pieces, so
/// the test can replay each stream sequentially.
fn eight_streams() -> (Vec<StreamSpec>, Vec<(VideoDataset, PresetFactory)>) {
    let kitti = kitti_like()
        .sequences(4)
        .frames_per_sequence(30)
        .seed(5)
        .build();
    let city = citypersons_like()
        .sequences(4)
        .frames_per_sequence(30)
        .seed(6)
        .build();
    let mut specs = Vec::new();
    let mut references = Vec::new();
    for slot in 0..8 {
        let (ds, seq_idx, factory) = if slot % 2 == 0 {
            (&kitti, slot / 2, PresetFactory::kitti(SystemKind::CatdetA))
        } else {
            (
                &city,
                slot / 2,
                PresetFactory::citypersons(SystemKind::CatdetA),
            )
        };
        let seq = &ds.sequences()[seq_idx];
        let source = StreamSource::from_sequence_with_geometry(
            slot,
            seq,
            slot as f64 * 0.007,
            ds.width,
            ds.height,
        );
        specs.push(StreamSpec::new(source, Arc::new(factory)));
        // A single-sequence dataset replaying exactly this stream.
        let single = VideoDataset::new(
            format!("stream-{slot}"),
            ds.width,
            ds.height,
            ds.classes.clone(),
            vec![seq.clone()],
        );
        references.push((single, factory));
    }
    (specs, references)
}

fn no_drop_config() -> ServeConfig {
    ServeConfig::new().with_queue_capacity(100_000)
}

#[test]
fn concurrent_streams_match_sequential_run_collect() {
    let (specs, references) = eight_streams();
    let report = serve(specs, &no_drop_config().with_workers(4).with_max_batch(4));
    assert_eq!(report.frames_dropped, 0);
    assert_eq!(report.streams.len(), 8);

    for (stream, (dataset, factory)) in report.streams.iter().zip(&references) {
        let mut system = factory.build();
        let sequential = run_collect(&mut *system, dataset);
        assert_eq!(
            stream.processed,
            sequential.outputs.len(),
            "stream {} processed a different frame count",
            stream.stream_id
        );
        for ((frame_index, served), (_, seq_frame_index, reference)) in
            stream.outputs.iter().zip(&sequential.outputs)
        {
            assert_eq!(frame_index, seq_frame_index);
            assert_eq!(
                served, reference,
                "stream {} frame {} diverged between concurrent serving and \
                 sequential run_collect — cross-stream state leakage",
                stream.stream_id, frame_index
            );
        }
    }
}

#[test]
fn detections_are_identical_at_any_worker_count() {
    let run_with = |workers: usize, policy: SchedulePolicy| -> ServeReport {
        let (specs, _) = eight_streams();
        serve(
            specs,
            &no_drop_config()
                .with_workers(workers)
                .with_max_batch(4)
                .with_schedule(policy),
        )
    };
    let one = run_with(1, SchedulePolicy::RoundRobin);
    for (workers, policy) in [
        (4, SchedulePolicy::RoundRobin),
        (8, SchedulePolicy::RoundRobin),
        (4, SchedulePolicy::LeastBacklog),
    ] {
        let other = run_with(workers, policy);
        for (a, b) in one.streams.iter().zip(&other.streams) {
            assert_eq!(
                a.outputs,
                b.outputs,
                "stream {} detections changed with {workers} workers ({})",
                a.stream_id,
                policy.name()
            );
        }
    }
}

#[test]
fn backpressure_drops_are_counted_exactly() {
    for drop_policy in [DropPolicy::Newest, DropPolicy::Oldest] {
        let specs = mixed_workload(6, 40, 11, SystemKind::CatdetA);
        let total_frames: usize = specs.iter().map(|s| s.source.len()).sum();
        // One worker, tiny queues: the cameras outrun the service rate and
        // must shed load.
        let cfg = ServeConfig::new()
            .with_workers(1)
            .with_queue_capacity(2)
            .with_drop_policy(drop_policy);
        let report = serve(specs, &cfg);
        assert_eq!(
            report.frames_arrived, total_frames,
            "every generated frame must be accounted as arrived"
        );
        assert!(
            report.frames_dropped > 0,
            "overload config must actually shed frames ({})",
            drop_policy.name()
        );
        assert_eq!(
            report.frames_processed + report.frames_dropped,
            report.frames_arrived,
            "processed + dropped must equal arrived ({})",
            drop_policy.name()
        );
        for s in &report.streams {
            assert_eq!(
                s.processed + s.dropped,
                s.arrived,
                "stream {} accounting leak ({})",
                s.stream_id,
                drop_policy.name()
            );
            assert_eq!(s.outputs.len(), s.processed);
        }
    }
}

#[test]
fn drop_accounting_is_deterministic() {
    let run = || {
        let specs = mixed_workload(4, 30, 3, SystemKind::CascadeA);
        serve(
            specs,
            &ServeConfig::new()
                .with_workers(2)
                .with_queue_capacity(3)
                .with_drop_policy(DropPolicy::Oldest),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.frames_dropped, b.frames_dropped);
    for (x, y) in a.streams.iter().zip(&b.streams) {
        assert_eq!(x.dropped, y.dropped);
        assert_eq!(x.outputs, y.outputs);
    }
}

#[test]
fn modeled_throughput_improves_with_workers() {
    let mut last_fps = 0.0;
    for workers in [1, 2, 4, 8] {
        let specs = mixed_workload(8, 15, 9, SystemKind::CatdetA);
        let report = serve(
            specs,
            &no_drop_config().with_workers(workers).with_max_batch(8),
        );
        assert_eq!(report.frames_processed, 8 * 15);
        assert!(
            report.throughput_fps > last_fps,
            "throughput must improve with workers: {} fps at {workers} \
             workers vs {last_fps} fps before",
            report.throughput_fps
        );
        last_fps = report.throughput_fps;
    }
}

#[test]
fn batching_amortises_proposal_launches() {
    let specs = mixed_workload(8, 12, 21, SystemKind::CatdetA);
    let batched = serve(specs, &no_drop_config().with_workers(2).with_max_batch(8));
    let specs = mixed_workload(8, 12, 21, SystemKind::CatdetA);
    let unbatched = serve(specs, &no_drop_config().with_workers(2).with_max_batch(1));
    assert_eq!(unbatched.batch.proposal_launches_saved, 0);
    assert!(batched.batch.proposal_launches_saved > 0);
    assert!(batched.batch.mean_batch() > 1.0);
    // Fused launches shave modelled time off a backlogged run.
    assert!(
        batched.makespan_s < unbatched.makespan_s,
        "batched {} s vs unbatched {} s",
        batched.makespan_s,
        unbatched.makespan_s
    );
    // Same frames processed either way.
    assert_eq!(batched.frames_processed, unbatched.frames_processed);
}

#[test]
fn fused_refinement_shares_dispatches_and_cuts_priced_cost() {
    // The staged-protocol payoff (ISSUE 3 acceptance criterion): with
    // --fuse-refinement on a multi-stream workload, refinement launches
    // from distinct streams share GPU dispatches (mean size > 1), the
    // total priced dispatch time is strictly below the unfused run, and
    // detections are untouched — fusion changes when work is priced, not
    // what work is done.
    let run = |fuse: bool, window_s: f64| {
        let specs = mixed_workload(8, 12, 21, SystemKind::CatdetA);
        serve(
            specs,
            &no_drop_config()
                .with_workers(2)
                .with_max_batch(8)
                .with_fuse_refinement(fuse)
                .with_refine_batch_window_s(window_s),
        )
    };
    let unfused = run(false, 0.0);
    let fused = run(true, 0.0);

    assert!(
        fused.batch.mean_refine_batch() > 1.0,
        "fused refinement dispatches must carry multiple streams (mean {})",
        fused.batch.mean_refine_batch()
    );
    assert!(fused.batch.refinement_launches_saved > 0);
    assert!(
        fused.gpu_dispatch_s < unfused.gpu_dispatch_s,
        "fusion must strictly cut priced dispatch cost: fused {} s vs unfused {} s",
        fused.gpu_dispatch_s,
        unfused.gpu_dispatch_s
    );
    // Unfused refinement launches are all singletons.
    assert_eq!(unfused.batch.refinement_launches_saved, 0);
    assert!(unfused.batch.refine_batches > 0);
    assert!((unfused.batch.mean_refine_batch() - 1.0).abs() < 1e-12);

    // Same frames, same detections, either way.
    assert_eq!(fused.frames_processed, unfused.frames_processed);
    for (a, b) in unfused.streams.iter().zip(&fused.streams) {
        assert_eq!(
            a.outputs, b.outputs,
            "stream {} detections changed under refinement fusion",
            a.stream_id
        );
    }

    // A fuse window can only grow sharing, never shrink it.
    let windowed = run(true, 0.010);
    assert!(
        windowed.batch.mean_refine_batch() >= fused.batch.mean_refine_batch() - 1e-12,
        "window shrank refinement sharing: {} vs {}",
        windowed.batch.mean_refine_batch(),
        fused.batch.mean_refine_batch()
    );
    assert_eq!(windowed.frames_processed, fused.frames_processed);
}

#[test]
fn fused_refinement_is_deterministic() {
    let run = || {
        let specs = mixed_workload(5, 15, 17, SystemKind::CatdetB);
        serve(
            specs,
            &no_drop_config()
                .with_workers(3)
                .with_max_batch(4)
                .with_fuse_refinement(true)
                .with_refine_batch_window_s(0.004),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.batch_log, b.batch_log);
    assert_eq!(a.gpu_dispatch_s, b.gpu_dispatch_s);
    assert_eq!(a.makespan_s, b.makespan_s);
    for (x, y) in a.streams.iter().zip(&b.streams) {
        assert_eq!(x.outputs, y.outputs);
        assert_eq!(x.latency, y.latency);
    }
}

#[test]
fn batch_window_waits_to_fill_batches() {
    // Light load (few streams, spread arrivals): without a window batches
    // stay small; a window lets workers gather more streams per dispatch.
    let specs = mixed_workload(6, 10, 13, SystemKind::CatdetA);
    let eager = serve(specs, &no_drop_config().with_workers(6).with_max_batch(6));
    let specs = mixed_workload(6, 10, 13, SystemKind::CatdetA);
    let windowed = serve(
        specs,
        &no_drop_config()
            .with_workers(6)
            .with_max_batch(6)
            .with_batch_window_s(0.050),
    );
    assert!(
        windowed.batch.mean_batch() >= eager.batch.mean_batch(),
        "window should not shrink batches: {} vs {}",
        windowed.batch.mean_batch(),
        eager.batch.mean_batch()
    );
    assert_eq!(windowed.frames_processed, eager.frames_processed);
}
