//! Property tests for the arrival-rate forecaster: the invariants the
//! predictive control plane leans on.
//!
//! * **Boundedness** — the Holt level and the horizon forecast never
//!   leave the observed per-bucket rate range: the forecaster may
//!   anticipate, but never invents a rate the stream has not shown.
//! * **Migration invariance** — the history is a plain value owned by
//!   the stream runtime; `extract_stream`/`admit_stream` move it across
//!   shards by value. Splitting a recording at any point and moving the
//!   history mid-stream must leave every subsequent forecast
//!   bit-identical to an unmigrated recording.
//! * **Re-chunk invariance** — arrivals reach the history in whatever
//!   chunks the event loop dequeues between control ticks. However the
//!   same arrival sequence is chunked, and however many forecast reads
//!   interleave with the chunks, the complete-bucket rates and the
//!   forecast are a pure function of (arrivals so far, now).
//!
//! A closing integration test drives the predicted rebalance signal
//! through a real two-shard fleet: forecast-driven migrations happen,
//! frames are conserved, and the run is bit-reproducible.

mod common;

use catdet_serve::{
    serve_fleet, ArrivalHistory, ForecastConfig, PartitionKind, RateForecaster, ServeConfig,
    ShardConfig,
};
use proptest::prelude::*;

/// Strategy: a forecaster configuration over the ranges the CLI accepts.
fn config_strategy() -> impl Strategy<Value = ForecastConfig> {
    (
        0.05f64..1.0, // bucket_s
        2usize..24,   // history_buckets
        0.05f64..1.0, // alpha
        0.05f64..1.0, // beta
        0.0f64..2.0,  // horizon_s
    )
        .prop_map(|(bucket_s, buckets, alpha, beta, horizon_s)| {
            ForecastConfig::new()
                .with_bucket_s(bucket_s)
                .with_history_buckets(buckets)
                .with_smoothing(alpha, beta)
                .with_horizon_s(horizon_s)
        })
}

/// Strategy: a sorted arrival-time sequence built from positive gaps, so
/// rates vary but time always moves forward (the scheduler's guarantee).
fn arrivals_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.005f64..0.4, 1..120).prop_map(|gaps| {
        let mut t = 0.0;
        gaps.iter()
            .map(|g| {
                t += g;
                t
            })
            .collect()
    })
}

fn record_all(history: &mut ArrivalHistory, arrivals: &[f64]) {
    for &t in arrivals {
        history.record(t);
    }
}

/// Bit-exact forecast comparison: `PartialEq` on f64 would already fail
/// on NaN, and the determinism contract is about bytes, not tolerance.
fn forecast_bits(f: &catdet_serve::Forecast) -> (u64, u64, u64, u64, u64) {
    (
        f.rate_fps.to_bits(),
        f.level_fps.to_bits(),
        f.trend_fps_per_s.to_bits(),
        f.confidence.to_bits(),
        f.phase.code(),
    )
}

proptest! {
    /// The EWMA level, the horizon forecast, and the confidence all stay
    /// inside their documented ranges for arbitrary configurations and
    /// arrival patterns: rate and level within the observed per-bucket
    /// rate band, confidence within [0, 1].
    #[test]
    fn forecast_stays_within_observed_rate_band(
        cfg in config_strategy(),
        arrivals in arrivals_strategy(),
        settle in 0.0f64..2.0,
    ) {
        let mut h = ArrivalHistory::new(&cfg);
        record_all(&mut h, &arrivals);
        let now = arrivals.last().copied().unwrap_or(0.0) + settle;
        let mut rates = Vec::new();
        h.complete_rates(now, &mut rates);
        let f = RateForecaster::new(cfg).forecast(&h, now);
        prop_assert!((0.0..=1.0).contains(&f.confidence), "confidence {}", f.confidence);
        if rates.is_empty() {
            prop_assert_eq!(forecast_bits(&f), forecast_bits(&catdet_serve::Forecast::none()));
        } else {
            let min_r = rates.iter().copied().fold(f64::INFINITY, f64::min);
            let max_r = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                f.level_fps >= min_r && f.level_fps <= max_r,
                "level {} outside observed [{min_r}, {max_r}]", f.level_fps
            );
            prop_assert!(
                f.rate_fps >= min_r && f.rate_fps <= max_r,
                "rate {} outside observed [{min_r}, {max_r}]", f.rate_fps
            );
        }
    }

    /// Migration invariance: split the arrival sequence anywhere, move
    /// the history by value at the split (exactly what
    /// `extract_stream`/`admit_stream` do to the owning stream runtime),
    /// and finish recording on the moved value. Every forecast after the
    /// move is bit-identical to one from an unbroken recording.
    #[test]
    fn forecast_is_identical_across_a_mid_stream_migration(
        cfg in config_strategy(),
        arrivals in arrivals_strategy(),
        split_frac in 0.0f64..=1.0,
        settle in 0.0f64..2.0,
    ) {
        let split = ((arrivals.len() as f64) * split_frac) as usize;
        let mut resident = ArrivalHistory::new(&cfg);
        record_all(&mut resident, &arrivals);

        let mut before = ArrivalHistory::new(&cfg);
        record_all(&mut before, &arrivals[..split]);
        let mut migrated = before; // the by-value hop between shards
        record_all(&mut migrated, &arrivals[split..]);

        prop_assert_eq!(&resident, &migrated);
        let fc = RateForecaster::new(cfg);
        let now = arrivals.last().copied().unwrap_or(0.0) + settle;
        prop_assert_eq!(
            forecast_bits(&fc.forecast(&resident, now)),
            forecast_bits(&fc.forecast(&migrated, now))
        );
    }

    /// Re-chunk invariance: deliver the same arrivals in arbitrary chunk
    /// sizes with a forecast read after every chunk (a control tick
    /// interleaving with ingest). Each interim read matches a fresh
    /// history fed the same prefix in one shot, and the final state is
    /// identical to the unchunked recording — reads never perturb the
    /// history, chunk boundaries never show in the rates.
    #[test]
    fn history_is_invariant_under_rechunked_interleavings(
        cfg in config_strategy(),
        arrivals in arrivals_strategy(),
        chunk_sizes in proptest::collection::vec(1usize..12, 1..40),
    ) {
        let fc = RateForecaster::new(cfg);
        let mut chunked = ArrivalHistory::new(&cfg);
        let mut fed = 0;
        for &size in &chunk_sizes {
            if fed >= arrivals.len() {
                break;
            }
            let end = (fed + size).min(arrivals.len());
            record_all(&mut chunked, &arrivals[fed..end]);
            fed = end;
            // Interleaved control tick: read at the newest time seen.
            let now = arrivals[end - 1];
            let mut reference = ArrivalHistory::new(&cfg);
            record_all(&mut reference, &arrivals[..end]);
            prop_assert_eq!(&chunked, &reference);
            prop_assert_eq!(
                forecast_bits(&fc.forecast(&chunked, now)),
                forecast_bits(&fc.forecast(&reference, now))
            );
        }
        let mut unchunked = ArrivalHistory::new(&cfg);
        record_all(&mut unchunked, &arrivals[..fed]);
        prop_assert_eq!(&chunked, &unchunked);
    }
}

/// End-to-end: the predicted rebalance signal drives real
/// `extract_stream`/`admit_stream` migrations in a two-shard fleet —
/// with histories riding along — and the run conserves frames and is
/// bit-reproducible.
#[test]
fn predicted_rebalancing_migrates_and_stays_deterministic() {
    let streams = || -> Vec<catdet_serve::StreamSpec> {
        // Two heavy anti-phase bursts pinned one per shard plus two
        // movers: predicted load diverges between shards, so the
        // forecaster has something to act on.
        let burst = |offset: f64| -> Vec<f64> {
            let mut out = Vec::new();
            for c in 0..3 {
                let start = offset + c as f64 * 0.8;
                for i in 0..40 {
                    out.push(start + i as f64 / 100.0);
                }
            }
            out
        };
        vec![
            common::null_spec_with_arrivals(0, burst(0.0)),
            common::null_spec_with_arrivals(1, burst(0.4)),
            common::null_spec_with_arrivals(2, (0..48).map(|i| i as f64 / 20.0).collect()),
            common::null_spec_with_arrivals(3, (0..4).map(|i| i as f64 / 2.0).collect()),
        ]
    };
    let total: usize = streams().iter().map(|s| s.source.len()).sum();
    let cfg = ServeConfig::new()
        .with_queue_capacity(100_000)
        .with_workers(1)
        .with_max_batch(1)
        .with_shard(
            ShardConfig::sharded(2)
                .with_partition(PartitionKind::LeastLoaded)
                .with_rebalance_interval_s(0.05)
                .with_migration_cost_frames(0)
                .with_rebalance_signal(catdet_serve::RebalanceSignal::Predicted),
        );
    let report = serve_fleet(streams(), &cfg);
    assert_eq!(
        report.frames_processed() + report.frames_dropped(),
        total,
        "conservation under predicted-signal migrations"
    );
    assert!(
        !report.migrations.is_empty(),
        "predicted signal should trigger at least one migration:\n{}",
        report.migration_timeline()
    );
    assert_eq!(report, serve_fleet(streams(), &cfg));
}
