//! `catdet-serve`: run a mixed multi-camera workload through the serving
//! subsystem and print the throughput/latency report.
//!
//! ```text
//! catdet-serve --streams 32 --workers 8 --frames 60 --batch 8 \
//!              --window-ms 5 --queue 64 --policy round-robin --drop newest \
//!              --system catdet-a
//! ```

use catdet_serve::{mixed_workload, serve, DropPolicy, SchedulePolicy, ServeConfig, SystemKind};

struct Args {
    streams: usize,
    workers: usize,
    frames: usize,
    max_batch: usize,
    window_ms: f64,
    queue: usize,
    policy: SchedulePolicy,
    drop: DropPolicy,
    system: SystemKind,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            streams: 8,
            workers: 4,
            frames: 60,
            max_batch: 4,
            window_ms: 0.0,
            queue: 64,
            policy: SchedulePolicy::RoundRobin,
            drop: DropPolicy::Newest,
            system: SystemKind::CatdetA,
            seed: 2019,
        }
    }
}

const USAGE: &str = "catdet-serve — concurrent multi-camera CaTDet serving

USAGE:
    catdet-serve [OPTIONS]

OPTIONS:
    --streams <N>       camera count, mixed KITTI/CityPersons workload [8]
    --workers <N>       worker threads / modelled executors [4]
    --frames <N>        frames per camera [60]
    --batch <N>         max frames fused per proposal micro-batch [4]
    --window-ms <MS>    batch window in milliseconds [0]
    --queue <N>         bounded per-stream queue capacity [64]
    --policy <P>        round-robin | least-backlog [round-robin]
    --drop <P>          newest | oldest (backpressure policy) [newest]
    --system <S>        catdet-a | catdet-b | cascade-a | cascade-b |
                        single-resnet50 [catdet-a]
    --seed <N>          workload seed [2019]
    -h, --help          print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--streams" => args.streams = parse_num(&flag, &value)?,
            "--workers" => args.workers = parse_num(&flag, &value)?,
            "--frames" => args.frames = parse_num(&flag, &value)?,
            "--batch" => args.max_batch = parse_num(&flag, &value)?,
            "--queue" => args.queue = parse_num(&flag, &value)?,
            "--seed" => args.seed = parse_num(&flag, &value)?,
            "--window-ms" => {
                args.window_ms = value
                    .parse::<f64>()
                    .map_err(|_| format!("--window-ms: not a number: {value}"))?
            }
            "--policy" => {
                args.policy = SchedulePolicy::from_name(&value)
                    .ok_or_else(|| format!("--policy: unknown policy {value}"))?
            }
            "--drop" => {
                args.drop = DropPolicy::from_name(&value)
                    .ok_or_else(|| format!("--drop: unknown policy {value}"))?
            }
            "--system" => {
                args.system = SystemKind::from_name(&value).ok_or_else(|| {
                    format!(
                        "--system: unknown system {value} (expected one of: {})",
                        SystemKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if args.max_batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if args.queue == 0 {
        return Err("--queue must be at least 1".into());
    }
    if !args.window_ms.is_finite() || args.window_ms < 0.0 {
        return Err(format!(
            "--window-ms must be a finite, non-negative number (got {})",
            args.window_ms
        ));
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: not a number: {value}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let cfg = ServeConfig::new()
        .with_workers(args.workers)
        .with_max_batch(args.max_batch)
        .with_batch_window_s(args.window_ms / 1e3)
        .with_queue_capacity(args.queue)
        .with_policy(args.policy)
        .with_drop_policy(args.drop);

    println!(
        "spinning up {} streams ({} frames each, mixed KITTI/CityPersons), {} workers, {} scheduling, system {}",
        args.streams,
        args.frames,
        args.workers,
        args.policy.name(),
        args.system.name(),
    );
    let streams = mixed_workload(args.streams, args.frames, args.seed, args.system);
    let report = serve(streams, &cfg);
    print!("{}", report.summary());
}
