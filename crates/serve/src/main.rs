//! `catdet-serve`: run a multi-camera workload through the serving
//! subsystem and print the throughput/latency report, optionally with
//! feedback-driven autoscaling and admission control.
//!
//! ```text
//! catdet-serve --streams 32 --workers 8 --frames 60 --batch 8 \
//!              --window-ms 5 --queue 64 --policy round-robin --drop newest \
//!              --system catdet-a --workload bursty \
//!              --autoscale hysteresis --min-workers 1 --max-workers 8 \
//!              --admission priority --watermark 32
//! ```

use catdet_serve::{
    bursty_workload, mixed_workload, serve, serve_fleet, AdmissionConfig, AdmissionKind,
    AutoscaleConfig, BurstProfile, DropPolicy, PartitionKind, ScalePolicyKind, SchedulePolicy,
    ServeConfig, ShardConfig, StreamSpec, SystemKind,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum WorkloadKind {
    Mixed,
    Bursty,
}

impl WorkloadKind {
    fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Mixed => "mixed",
            WorkloadKind::Bursty => "bursty",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "mixed" => Some(WorkloadKind::Mixed),
            "bursty" => Some(WorkloadKind::Bursty),
            _ => None,
        }
    }
}

struct Args {
    streams: usize,
    workers: usize,
    frames: usize,
    max_batch: usize,
    window_ms: f64,
    fuse_refinement: bool,
    refine_window_ms: f64,
    queue: usize,
    policy: SchedulePolicy,
    drop: DropPolicy,
    system: SystemKind,
    seed: u64,
    workload: WorkloadKind,
    autoscale: ScalePolicyKind,
    min_workers: usize,
    max_workers: usize,
    interval_ms: f64,
    admission: AdmissionKind,
    admit_rate: f64,
    admit_burst: f64,
    watermark: usize,
    shards: usize,
    partition: PartitionKind,
    rebalance_ms: f64,
    migration_cost: usize,
    no_fuse_across_shards: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            streams: 8,
            workers: 4,
            frames: 60,
            max_batch: 4,
            window_ms: 0.0,
            fuse_refinement: false,
            refine_window_ms: 0.0,
            queue: 64,
            policy: SchedulePolicy::RoundRobin,
            drop: DropPolicy::Newest,
            system: SystemKind::CatdetA,
            seed: 2019,
            workload: WorkloadKind::Mixed,
            autoscale: ScalePolicyKind::Fixed,
            min_workers: 1,
            max_workers: 8,
            interval_ms: 250.0,
            admission: AdmissionKind::AdmitAll,
            admit_rate: 30.0,
            admit_burst: 10.0,
            watermark: 32,
            shards: 1,
            partition: PartitionKind::StaticHash,
            rebalance_ms: 0.0,
            migration_cost: 8,
            no_fuse_across_shards: false,
        }
    }
}

const USAGE: &str = "catdet-serve — concurrent multi-camera CaTDet serving

USAGE:
    catdet-serve [OPTIONS]

  workload (what the fleet serves):
    --streams <N>       camera count [8]
    --frames <N>        frames per camera [60]
    --system <S>        catdet-a | catdet-b | cascade-a | cascade-b |
                        single-resnet50 [catdet-a]
    --seed <N>          workload seed [2019]
    --workload <W>      mixed (KITTI/CityPersons fleet) | bursty
                        (quiet/stampede arrival cycles) [mixed]

  scheduler (batching, queues, backpressure — per shard):
    --workers <N>       initial worker threads / modelled executors [4]
    --batch <N>         max frames fused per proposal micro-batch [4]
    --window-ms <MS>    batch window in milliseconds [0]
    --fuse-refinement   fuse refinement launches across streams into one
                        GPU dispatch (staged-detector suspend points) [off]
    --refine-batch-window-ms <MS>
                        how long a frame may wait at its refinement
                        boundary for co-dispatching streams [0]
    --queue <N>         bounded per-stream queue capacity [64]
    --policy <P>        round-robin | least-backlog [round-robin]
    --drop <P>          newest | oldest (backpressure policy) [newest]

  autoscale (feedback control on drop-rate + window p99 — per shard):
    --autoscale <P>     fixed | hysteresis | proportional [fixed]
    --min-workers <N>   autoscale floor [1]
    --max-workers <N>   autoscale ceiling [8]
    --interval-ms <MS>  control-loop interval, virtual time [250]

  admission (gates arrivals before queueing — per shard):
    --admission <P>     admit-all | token-bucket | priority [admit-all]
    --admit-rate <FPS>  token-bucket sustained rate per stream [30]
    --admit-burst <N>   token-bucket burst capacity per stream [10]
    --watermark <N>     priority: fleet backlog per shed level [32]

  shard (fleet partitioning and live rebalancing):
    --shards <N>        independent scheduler shards, each with its own
                        worker pool / queues / control plane [1]
    --partition <P>     static-hash | least-loaded | consistent-hash
                        [static-hash]
    --rebalance-interval-ms <MS>
                        live-rebalance tick spacing, virtual time
                        (0 disables migration) [0]
    --migration-cost-frames <N>
                        min backlog imbalance before a migration pays [8]
    --no-fuse-across-shards
                        keep refinement fusion within each shard instead
                        of pooling work items fleet-wide [fleet-wide]

    -h, --help          print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--fuse-refinement" {
            args.fuse_refinement = true;
            continue;
        }
        if flag == "--no-fuse-across-shards" {
            args.no_fuse_across_shards = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--streams" => args.streams = parse_num(&flag, &value)?,
            "--workers" => args.workers = parse_num(&flag, &value)?,
            "--frames" => args.frames = parse_num(&flag, &value)?,
            "--batch" => args.max_batch = parse_num(&flag, &value)?,
            "--queue" => args.queue = parse_num(&flag, &value)?,
            "--seed" => args.seed = parse_num(&flag, &value)?,
            "--window-ms" => args.window_ms = parse_num(&flag, &value)?,
            "--refine-batch-window-ms" => args.refine_window_ms = parse_num(&flag, &value)?,
            "--min-workers" => args.min_workers = parse_num(&flag, &value)?,
            "--max-workers" => args.max_workers = parse_num(&flag, &value)?,
            "--interval-ms" => args.interval_ms = parse_num(&flag, &value)?,
            "--admit-rate" => args.admit_rate = parse_num(&flag, &value)?,
            "--admit-burst" => args.admit_burst = parse_num(&flag, &value)?,
            "--watermark" => args.watermark = parse_num(&flag, &value)?,
            "--shards" => args.shards = parse_num(&flag, &value)?,
            "--rebalance-interval-ms" => args.rebalance_ms = parse_num(&flag, &value)?,
            "--migration-cost-frames" => args.migration_cost = parse_num(&flag, &value)?,
            "--partition" => {
                args.partition = PartitionKind::from_name(&value)
                    .ok_or_else(|| format!("--partition: unknown policy {value}"))?
            }
            "--policy" => {
                args.policy = SchedulePolicy::from_name(&value)
                    .ok_or_else(|| format!("--policy: unknown policy {value}"))?
            }
            "--drop" => {
                args.drop = DropPolicy::from_name(&value)
                    .ok_or_else(|| format!("--drop: unknown policy {value}"))?
            }
            "--workload" => {
                args.workload = WorkloadKind::from_name(&value)
                    .ok_or_else(|| format!("--workload: unknown workload {value}"))?
            }
            "--autoscale" => {
                args.autoscale = ScalePolicyKind::from_name(&value)
                    .ok_or_else(|| format!("--autoscale: unknown policy {value}"))?
            }
            "--admission" => {
                args.admission = AdmissionKind::from_name(&value)
                    .ok_or_else(|| format!("--admission: unknown policy {value}"))?
            }
            "--system" => {
                args.system = SystemKind::from_name(&value).ok_or_else(|| {
                    format!(
                        "--system: unknown system {value} (expected one of: {})",
                        SystemKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if args.max_batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if args.queue == 0 {
        return Err("--queue must be at least 1".into());
    }
    if !args.window_ms.is_finite() || args.window_ms < 0.0 {
        return Err(format!(
            "--window-ms must be a finite, non-negative number (got {})",
            args.window_ms
        ));
    }
    if !args.refine_window_ms.is_finite() || args.refine_window_ms < 0.0 {
        return Err(format!(
            "--refine-batch-window-ms must be a finite, non-negative number (got {})",
            args.refine_window_ms
        ));
    }
    if args.min_workers == 0 || args.max_workers < args.min_workers {
        return Err("--min-workers must be >= 1 and <= --max-workers".into());
    }
    if !args.interval_ms.is_finite() || args.interval_ms <= 0.0 {
        return Err("--interval-ms must be a finite, positive number".into());
    }
    if !args.admit_rate.is_finite() || args.admit_rate <= 0.0 {
        return Err("--admit-rate must be a finite, positive number".into());
    }
    if !args.admit_burst.is_finite() || args.admit_burst < 1.0 {
        return Err("--admit-burst must be at least 1".into());
    }
    if args.watermark == 0 {
        return Err("--watermark must be at least 1".into());
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if !args.rebalance_ms.is_finite() || args.rebalance_ms < 0.0 {
        return Err(format!(
            "--rebalance-interval-ms must be a finite, non-negative number (got {})",
            args.rebalance_ms
        ));
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: not a number: {value}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut autoscale = match args.autoscale {
        ScalePolicyKind::Fixed => AutoscaleConfig::fixed(),
        ScalePolicyKind::Hysteresis => {
            AutoscaleConfig::hysteresis(args.min_workers, args.max_workers)
        }
        ScalePolicyKind::Proportional => {
            AutoscaleConfig::proportional(args.min_workers, args.max_workers, 0.05)
        }
    };
    autoscale = autoscale.with_control_interval_s(args.interval_ms / 1e3);
    let admission = match args.admission {
        AdmissionKind::AdmitAll => AdmissionConfig::admit_all(),
        AdmissionKind::TokenBucket => {
            AdmissionConfig::token_bucket(args.admit_rate, args.admit_burst)
        }
        AdmissionKind::Priority => AdmissionConfig::priority(args.watermark),
    };
    let cfg = ServeConfig::new()
        .with_workers(args.workers)
        .with_max_batch(args.max_batch)
        .with_batch_window_s(args.window_ms / 1e3)
        .with_queue_capacity(args.queue)
        .with_fuse_refinement(args.fuse_refinement)
        .with_refine_batch_window_s(args.refine_window_ms / 1e3)
        .with_policy(args.policy)
        .with_drop_policy(args.drop)
        .with_autoscale(autoscale)
        .with_admission(admission)
        .with_shard(
            ShardConfig::sharded(args.shards)
                .with_partition(args.partition)
                .with_rebalance_interval_s(args.rebalance_ms / 1e3)
                .with_migration_cost_frames(args.migration_cost)
                .with_fuse_across_shards(!args.no_fuse_across_shards),
        );

    println!(
        "spinning up {} streams ({} frames each, {} workload), {} shards x {} workers \
         ({} partition), {} scheduling, autoscale {}, admission {}, refinement fusion {}, \
         system {}",
        args.streams,
        args.frames,
        args.workload.name(),
        args.shards,
        args.workers,
        args.partition.name(),
        args.policy.name(),
        args.autoscale.name(),
        args.admission.name(),
        if args.fuse_refinement { "on" } else { "off" },
        args.system.name(),
    );
    let streams: Vec<StreamSpec> = match args.workload {
        WorkloadKind::Mixed => mixed_workload(args.streams, args.frames, args.seed, args.system),
        WorkloadKind::Bursty => bursty_workload(
            args.streams,
            args.frames,
            args.seed,
            args.system,
            BurstProfile::demo(),
        ),
    };
    if args.shards > 1 {
        let report = serve_fleet(streams, &cfg);
        print!("{}", report.summary());
        if !report.migrations.is_empty() {
            println!("migration timeline:");
            print!("{}", report.migration_timeline());
        }
        let scale = report.scale_timeline();
        if !scale.is_empty() {
            println!("scale-event timeline (shard, t, change):");
            for (shard, e) in scale {
                println!(
                    "  shard {shard}  t={:>8.3}s  {:>2} -> {:<2} ({})",
                    e.t_s,
                    e.from_workers,
                    e.to_workers,
                    e.reason.label()
                );
            }
        }
    } else {
        let report = serve(streams, &cfg);
        print!("{}", report.summary());
        if !report.scale_events.is_empty() {
            println!("scale-event timeline:");
            print!("{}", report.scale_timeline());
        }
    }
}
