//! `catdet-serve`: run a multi-camera workload through the serving
//! subsystem and print the throughput/latency report, optionally with
//! feedback-driven autoscaling and admission control.
//!
//! ```text
//! catdet-serve --streams 32 --workers 8 --frames 60 --batch 8 \
//!              --window-ms 5 --queue 64 --schedule round-robin --drop newest \
//!              --system catdet-a --workload bursty \
//!              --policy confidence-trigger --policy-confidence 1.5 \
//!              --autoscale hysteresis --min-workers 1 --max-workers 8 \
//!              --admission priority --watermark 32 --admit-downgrade
//! ```

use catdet_recorder::{read_file, Event, EventKind, Query};
use catdet_serve::{
    bursty_workload, mixed_workload, ramp_workload, serve, serve_fleet, serve_fleet_with_recorder,
    serve_net_fleet, serve_net_fleet_with_recorder, serve_with_recorder, sine_workload,
    AdmissionConfig, AdmissionKind, AdmissionReason, AutoscaleConfig, BurstPhase, BurstProfile,
    ConnEventKind, DropPolicy, ForecastConfig, IngestConfig, IngestKind, PartitionKind,
    PolicyConfig, PolicyDecision, PolicyKind, RebalanceSignal, RecorderConfig, ScalePolicyKind,
    ScaleReason, SchedulePolicy, ServeConfig, ShardConfig, StreamSpec, SystemKind,
};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkloadKind {
    Mixed,
    Bursty,
    Ramp,
    Sine,
}

impl WorkloadKind {
    fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Mixed => "mixed",
            WorkloadKind::Bursty => "bursty",
            WorkloadKind::Ramp => "ramp",
            WorkloadKind::Sine => "sine",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "mixed" => Some(WorkloadKind::Mixed),
            "bursty" => Some(WorkloadKind::Bursty),
            "ramp" => Some(WorkloadKind::Ramp),
            "sine" => Some(WorkloadKind::Sine),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Args {
    streams: usize,
    workers: usize,
    frames: usize,
    max_batch: usize,
    window_ms: f64,
    fuse_refinement: bool,
    refine_window_ms: f64,
    queue: usize,
    schedule: SchedulePolicy,
    drop: DropPolicy,
    policy: PolicyKind,
    policy_stride: usize,
    policy_confidence: f64,
    admit_downgrade: bool,
    system: SystemKind,
    seed: u64,
    workload: WorkloadKind,
    autoscale: ScalePolicyKind,
    min_workers: usize,
    max_workers: usize,
    interval_ms: f64,
    admission: AdmissionKind,
    admit_rate: f64,
    admit_burst: f64,
    watermark: usize,
    shards: usize,
    partition: PartitionKind,
    rebalance_ms: f64,
    migration_cost: usize,
    rebalance_signal: RebalanceSignal,
    migration_cooldown: usize,
    no_fuse_across_shards: bool,
    threads: usize,
    record: Option<String>,
    record_chunk_events: usize,
    record_retention_chunks: usize,
    record_snapshot_every: usize,
    ingest: IngestKind,
    clients: usize,
    conn_jitter_ms: f64,
    disconnect_rate: f64,
    reorder_rate: f64,
    door_rate: f64,
    door_burst: f64,
    forecast_bucket_ms: f64,
    forecast_buckets: usize,
    forecast_horizon_ms: f64,
    forecast_confidence: f64,
    // Which flags the user actually passed — the net-only knobs conflict
    // with direct ingest (and vice versa), and that is only decidable if
    // defaults and explicit values are distinguishable.
    streams_set: bool,
    workload_set: bool,
    policy_set: bool,
    policy_stride_set: bool,
    policy_confidence_set: bool,
    clients_set: bool,
    conn_jitter_set: bool,
    disconnect_rate_set: bool,
    reorder_rate_set: bool,
    door_rate_set: bool,
    door_burst_set: bool,
    forecast_bucket_set: bool,
    forecast_buckets_set: bool,
    forecast_horizon_set: bool,
    forecast_confidence_set: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            streams: 8,
            workers: 4,
            frames: 60,
            max_batch: 4,
            window_ms: 0.0,
            fuse_refinement: false,
            refine_window_ms: 0.0,
            queue: 64,
            schedule: SchedulePolicy::RoundRobin,
            drop: DropPolicy::Newest,
            policy: PolicyKind::AlwaysDetect,
            policy_stride: 3,
            policy_confidence: 1.0,
            admit_downgrade: false,
            system: SystemKind::CatdetA,
            seed: 2019,
            workload: WorkloadKind::Mixed,
            autoscale: ScalePolicyKind::Fixed,
            min_workers: 1,
            max_workers: 8,
            interval_ms: 250.0,
            admission: AdmissionKind::AdmitAll,
            admit_rate: 30.0,
            admit_burst: 10.0,
            watermark: 32,
            shards: 1,
            partition: PartitionKind::StaticHash,
            rebalance_ms: 0.0,
            migration_cost: 8,
            rebalance_signal: RebalanceSignal::Backlog,
            migration_cooldown: 2,
            no_fuse_across_shards: false,
            threads: 1,
            record: None,
            record_chunk_events: 512,
            record_retention_chunks: usize::MAX,
            record_snapshot_every: 0,
            ingest: IngestKind::Direct,
            clients: 8,
            conn_jitter_ms: 0.0,
            disconnect_rate: 0.0,
            reorder_rate: 0.0,
            door_rate: 120.0,
            door_burst: 16.0,
            forecast_bucket_ms: 250.0,
            forecast_buckets: 32,
            forecast_horizon_ms: 500.0,
            forecast_confidence: 0.35,
            streams_set: false,
            workload_set: false,
            policy_set: false,
            policy_stride_set: false,
            policy_confidence_set: false,
            clients_set: false,
            conn_jitter_set: false,
            disconnect_rate_set: false,
            reorder_rate_set: false,
            door_rate_set: false,
            door_burst_set: false,
            forecast_bucket_set: false,
            forecast_buckets_set: false,
            forecast_horizon_set: false,
            forecast_confidence_set: false,
        }
    }
}

const USAGE: &str = "catdet-serve — concurrent multi-camera CaTDet serving

USAGE:
    catdet-serve [OPTIONS]

  workload (what the fleet serves):
    --streams <N>       camera count [8]
    --frames <N>        frames per camera [60]
    --system <S>        catdet-a | catdet-b | cascade-a | cascade-b |
                        single-resnet50 [catdet-a]
    --seed <N>          workload seed [2019]
    --workload <W>      mixed (KITTI/CityPersons fleet) | bursty
                        (quiet/stampede arrival cycles) | ramp (rate climbs
                        2 -> 20 fps over 3 s) | sine (rate swings 10 +/- 6
                        fps on a 2 s period) [mixed]

  scheduler (batching, queues, backpressure — per shard):
    --workers <N>       initial worker threads / modelled executors [4]
    --batch <N>         max frames fused per proposal micro-batch [4]
    --window-ms <MS>    batch window in milliseconds [0]
    --fuse-refinement   fuse refinement launches across streams into one
                        GPU dispatch (staged-detector suspend points) [off]
    --refine-batch-window-ms <MS>
                        how long a frame may wait at its refinement
                        boundary for co-dispatching streams [0]
    --queue <N>         bounded per-stream queue capacity [64]
    --schedule <P>      round-robin | least-backlog [round-robin]
    --drop <P>          newest | oldest (backpressure policy) [newest]

  frame policy (detect-or-track scheduling, per frame, per stream):
    --policy <P>        always-detect | fixed-stride | confidence-trigger
                        [always-detect]
    --policy-stride <K> fixed-stride: detect every Kth frame, skip the
                        rest (requires --policy fixed-stride) [3]
    --policy-confidence <C>
                        confidence-trigger: coast on tracker predictions
                        while mean track confidence stays >= C (requires
                        --policy confidence-trigger) [1]

  autoscale (feedback control on drop-rate + window p99 — per shard):
    --autoscale <P>     fixed | hysteresis | proportional | predictive
                        (scale ahead of the forecast arrival rate, falling
                        back to hysteresis at low confidence) [fixed]
    --min-workers <N>   autoscale floor [1]
    --max-workers <N>   autoscale ceiling [8]
    --interval-ms <MS>  control-loop interval, virtual time [250]

  forecast (per-stream arrival-rate forecaster feeding the predictive
  control plane; requires --autoscale predictive or --rebalance predicted):
    --forecast-bucket-ms <MS>
                        arrival-history bucket width, virtual time [250]
    --forecast-buckets <N>
                        complete buckets of history kept per stream [32]
    --forecast-horizon-ms <MS>
                        how far ahead the forecast looks [500]
    --forecast-confidence <C>
                        confidence floor in [0, 1]; below it the
                        predictive policy falls back to hysteresis [0.35]

  admission (gates arrivals before queueing — per shard):
    --admission <P>     admit-all | token-bucket | priority [admit-all]
    --admit-rate <FPS>  token-bucket sustained rate per stream [30]
    --admit-burst <N>   token-bucket burst capacity per stream [10]
    --watermark <N>     priority: fleet backlog per shed level [32]
    --admit-downgrade   downgrade a shed stream's frame policy one rung
                        instead of dropping its frame, restoring it when
                        admission clears (requires --admission priority)
                        [off]

  shard (fleet partitioning and live rebalancing):
    --shards <N>        independent scheduler shards, each with its own
                        worker pool / queues / control plane [1]
    --partition <P>     static-hash | least-loaded | consistent-hash
                        [static-hash]
    --rebalance-interval-ms <MS>
                        live-rebalance tick spacing, virtual time
                        (0 disables migration) [0]
    --migration-cost-frames <N>
                        min backlog imbalance before a migration pays [8]
    --rebalance <S>     backlog (queued frames now) | predicted (queued
                        frames plus forecast arrivals over the forecast
                        horizon) [backlog]
    --migration-cooldown-ticks <N>
                        rebalance ticks a freshly moved stream sits out
                        before it may migrate again (0 restores the
                        cooldown-free rule) [2]
    --no-fuse-across-shards
                        keep refinement fusion within each shard instead
                        of pooling work items fleet-wide [fleet-wide]
    --threads <N>       OS threads advancing shard engines between
                        barriers (0 = auto, one per host core; capped at
                        the shard count). Bit-identical results at every
                        setting -- threads only change wall-clock time [1]

  ingest (how frames reach the partition layer):
    --ingest <K>        direct (in-memory timelines) | net (simulated
                        CamLink camera connections: checksummed frame
                        records over a jittery, faulty wire into a bounded
                        receive window and a per-client rate-limited door)
                        [direct]
    --clients <N>       camera connections with --ingest net; replaces
                        --streams there [8]
    --conn-jitter-ms <MS>
                        max extra per-chunk delivery jitter [0]
    --disconnect-rate <P>
                        per-record mid-send disconnect probability; the
                        camera reconnects and resumes from its cursor [0]
    --reorder-rate <P>  probability adjacent wire chunks swap in flight
                        (corrupts the record; the frame is lost) [0]
    --door-rate <FPS>   sustained per-client frame rate admitted past the
                        door [120]
    --door-burst <N>    door token-bucket burst, in frames [16]

  flight recorder (chunked columnar telemetry + time-travel replay):
    --record <FILE>     record every detection/track/batch/scale/admission/
                        migration event and save the chunk store to FILE
    --record-chunk-events <N>
                        events per chunk before sealing [512]
    --record-retention-chunks <N>
                        sealed-chunk budget; least-recently-touched chunks
                        are evicted beyond it [unbounded]
    --record-snapshot-every <N>
                        capture a replay snapshot every N completed frames
                        per stream (0 disables snapshots) [0]

    -h, --help          print this help

SUBCOMMANDS:
    query <FILE> [--kind detection|track|batch|scale|admission|migration|conn|policy|forecast]
                 [--stream <N>] [--shard <N>] [--from <S>] [--to <S>]
                 [--limit <N>]
        scan a saved recording: print matching events in time order and,
        for detection events, the recorded latency percentiles over the
        matched window (identical to the live report's figures)
";

fn parse_args() -> Result<Args, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(it: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = it;
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--fuse-refinement" {
            args.fuse_refinement = true;
            continue;
        }
        if flag == "--no-fuse-across-shards" {
            args.no_fuse_across_shards = true;
            continue;
        }
        if flag == "--admit-downgrade" {
            args.admit_downgrade = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--streams" => {
                args.streams = parse_num(&flag, &value)?;
                args.streams_set = true;
            }
            "--clients" => {
                args.clients = parse_num(&flag, &value)?;
                args.clients_set = true;
            }
            "--conn-jitter-ms" => {
                args.conn_jitter_ms = parse_num(&flag, &value)?;
                args.conn_jitter_set = true;
            }
            "--disconnect-rate" => {
                args.disconnect_rate = parse_num(&flag, &value)?;
                args.disconnect_rate_set = true;
            }
            "--reorder-rate" => {
                args.reorder_rate = parse_num(&flag, &value)?;
                args.reorder_rate_set = true;
            }
            "--door-rate" => {
                args.door_rate = parse_num(&flag, &value)?;
                args.door_rate_set = true;
            }
            "--door-burst" => {
                args.door_burst = parse_num(&flag, &value)?;
                args.door_burst_set = true;
            }
            "--ingest" => {
                args.ingest = IngestKind::from_name(&value)
                    .ok_or_else(|| format!("--ingest: unknown kind {value} (direct | net)"))?
            }
            "--workers" => args.workers = parse_num(&flag, &value)?,
            "--frames" => args.frames = parse_num(&flag, &value)?,
            "--batch" => args.max_batch = parse_num(&flag, &value)?,
            "--queue" => args.queue = parse_num(&flag, &value)?,
            "--seed" => args.seed = parse_num(&flag, &value)?,
            "--window-ms" => args.window_ms = parse_num(&flag, &value)?,
            "--refine-batch-window-ms" => args.refine_window_ms = parse_num(&flag, &value)?,
            "--min-workers" => args.min_workers = parse_num(&flag, &value)?,
            "--max-workers" => args.max_workers = parse_num(&flag, &value)?,
            "--interval-ms" => args.interval_ms = parse_num(&flag, &value)?,
            "--admit-rate" => args.admit_rate = parse_num(&flag, &value)?,
            "--admit-burst" => args.admit_burst = parse_num(&flag, &value)?,
            "--watermark" => args.watermark = parse_num(&flag, &value)?,
            "--shards" => args.shards = parse_num(&flag, &value)?,
            "--rebalance-interval-ms" => args.rebalance_ms = parse_num(&flag, &value)?,
            "--migration-cost-frames" => args.migration_cost = parse_num(&flag, &value)?,
            "--migration-cooldown-ticks" => args.migration_cooldown = parse_num(&flag, &value)?,
            "--rebalance" => {
                args.rebalance_signal = RebalanceSignal::from_name(&value).ok_or_else(|| {
                    format!("--rebalance: unknown signal {value} (backlog | predicted)")
                })?
            }
            "--forecast-bucket-ms" => {
                args.forecast_bucket_ms = parse_num(&flag, &value)?;
                args.forecast_bucket_set = true;
            }
            "--forecast-buckets" => {
                args.forecast_buckets = parse_num(&flag, &value)?;
                args.forecast_buckets_set = true;
            }
            "--forecast-horizon-ms" => {
                args.forecast_horizon_ms = parse_num(&flag, &value)?;
                args.forecast_horizon_set = true;
            }
            "--forecast-confidence" => {
                args.forecast_confidence = parse_num(&flag, &value)?;
                args.forecast_confidence_set = true;
            }
            "--threads" => args.threads = parse_num(&flag, &value)?,
            "--record" => args.record = Some(value),
            "--record-chunk-events" => args.record_chunk_events = parse_num(&flag, &value)?,
            "--record-retention-chunks" => args.record_retention_chunks = parse_num(&flag, &value)?,
            "--record-snapshot-every" => args.record_snapshot_every = parse_num(&flag, &value)?,
            "--partition" => {
                args.partition = PartitionKind::from_name(&value)
                    .ok_or_else(|| format!("--partition: unknown policy {value}"))?
            }
            "--schedule" => {
                args.schedule = SchedulePolicy::from_name(&value)
                    .ok_or_else(|| format!("--schedule: unknown policy {value}"))?
            }
            "--policy" => {
                args.policy = PolicyKind::from_name(&value).ok_or_else(|| {
                    format!(
                        "--policy: unknown frame policy {value} (expected one of: {})",
                        PolicyKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
                args.policy_set = true;
            }
            "--policy-stride" => {
                args.policy_stride = parse_num(&flag, &value)?;
                args.policy_stride_set = true;
            }
            "--policy-confidence" => {
                args.policy_confidence = parse_num(&flag, &value)?;
                args.policy_confidence_set = true;
            }
            "--drop" => {
                args.drop = DropPolicy::from_name(&value)
                    .ok_or_else(|| format!("--drop: unknown policy {value}"))?
            }
            "--workload" => {
                args.workload = WorkloadKind::from_name(&value)
                    .ok_or_else(|| format!("--workload: unknown workload {value}"))?;
                args.workload_set = true;
            }
            "--autoscale" => {
                args.autoscale = ScalePolicyKind::from_name(&value)
                    .ok_or_else(|| format!("--autoscale: unknown policy {value}"))?
            }
            "--admission" => {
                args.admission = AdmissionKind::from_name(&value)
                    .ok_or_else(|| format!("--admission: unknown policy {value}"))?
            }
            "--system" => {
                args.system = SystemKind::from_name(&value).ok_or_else(|| {
                    format!(
                        "--system: unknown system {value} (expected one of: {})",
                        SystemKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if args.max_batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if args.queue == 0 {
        return Err("--queue must be at least 1".into());
    }
    if !args.window_ms.is_finite() || args.window_ms < 0.0 {
        return Err(format!(
            "--window-ms must be a finite, non-negative number (got {})",
            args.window_ms
        ));
    }
    if !args.refine_window_ms.is_finite() || args.refine_window_ms < 0.0 {
        return Err(format!(
            "--refine-batch-window-ms must be a finite, non-negative number (got {})",
            args.refine_window_ms
        ));
    }
    if args.min_workers == 0 || args.max_workers < args.min_workers {
        return Err("--min-workers must be >= 1 and <= --max-workers".into());
    }
    if !args.interval_ms.is_finite() || args.interval_ms <= 0.0 {
        return Err("--interval-ms must be a finite, positive number".into());
    }
    if !args.admit_rate.is_finite() || args.admit_rate <= 0.0 {
        return Err("--admit-rate must be a finite, positive number".into());
    }
    if !args.admit_burst.is_finite() || args.admit_burst < 1.0 {
        return Err("--admit-burst must be at least 1".into());
    }
    if args.watermark == 0 {
        return Err("--watermark must be at least 1".into());
    }
    if args.policy_stride_set && args.policy != PolicyKind::FixedStride {
        return Err(
            "--policy-stride only applies to the fixed-stride frame policy; add \
             --policy fixed-stride"
                .into(),
        );
    }
    if args.policy_confidence_set && args.policy != PolicyKind::ConfidenceTrigger {
        return Err(
            "--policy-confidence only applies to the confidence-trigger frame policy; \
             add --policy confidence-trigger"
                .into(),
        );
    }
    if args.policy_stride == 0 {
        return Err("--policy-stride must be at least 1".into());
    }
    if !args.policy_confidence.is_finite() || args.policy_confidence < 0.0 {
        return Err(format!(
            "--policy-confidence must be a finite, non-negative number (got {})",
            args.policy_confidence
        ));
    }
    if args.admit_downgrade && args.admission != AdmissionKind::Priority {
        return Err(
            "--admit-downgrade needs a shedding admission gate; add --admission priority".into(),
        );
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if !args.rebalance_ms.is_finite() || args.rebalance_ms < 0.0 {
        return Err(format!(
            "--rebalance-interval-ms must be a finite, non-negative number (got {})",
            args.rebalance_ms
        ));
    }
    // The forecast knobs steer the predictive control plane; with neither
    // predictive consumer enabled they would silently do nothing.
    let forecasting = args.autoscale == ScalePolicyKind::Predictive
        || args.rebalance_signal == RebalanceSignal::Predicted;
    if !forecasting {
        let forecast_only: [(&str, bool); 4] = [
            ("--forecast-bucket-ms", args.forecast_bucket_set),
            ("--forecast-buckets", args.forecast_buckets_set),
            ("--forecast-horizon-ms", args.forecast_horizon_set),
            ("--forecast-confidence", args.forecast_confidence_set),
        ];
        if let Some((flag, _)) = forecast_only.iter().find(|(_, set)| *set) {
            return Err(format!(
                "{flag} only applies to the predictive control plane; add \
                 --autoscale predictive or --rebalance predicted"
            ));
        }
    }
    if !args.forecast_bucket_ms.is_finite() || args.forecast_bucket_ms <= 0.0 {
        return Err(format!(
            "--forecast-bucket-ms must be a finite, positive number (got {})",
            args.forecast_bucket_ms
        ));
    }
    if args.forecast_buckets < 2 {
        return Err("--forecast-buckets must be at least 2".into());
    }
    if !args.forecast_horizon_ms.is_finite() || args.forecast_horizon_ms < 0.0 {
        return Err(format!(
            "--forecast-horizon-ms must be a finite, non-negative number (got {})",
            args.forecast_horizon_ms
        ));
    }
    if !args.forecast_confidence.is_finite() || !(0.0..=1.0).contains(&args.forecast_confidence) {
        return Err(format!(
            "--forecast-confidence must be in [0, 1] (got {})",
            args.forecast_confidence
        ));
    }
    if args.record_chunk_events == 0 {
        return Err("--record-chunk-events must be at least 1".into());
    }
    if args.record_snapshot_every > 0 && args.record_retention_chunks == 0 {
        return Err(
            "--record-retention-chunks 0 cannot feed replay: snapshots need their \
             recorded events kept; raise the retention budget or drop \
             --record-snapshot-every"
                .into(),
        );
    }
    // Flag-combination conflicts: every net-only knob requires
    // `--ingest net`, and the net path names its cameras with --clients.
    // Reject the combination with an actionable error instead of letting
    // a config assert panic later.
    if args.ingest == IngestKind::Net {
        if args.workload_set {
            return Err(
                "--workload cannot be combined with --ingest net: the front door \
                 generates its own capture schedule from the mixed workload; drop \
                 --workload"
                    .into(),
            );
        }
        if args.streams_set {
            return Err(
                "--streams cannot be combined with --ingest net: cameras are \
                 connections there; use --clients instead"
                    .into(),
            );
        }
    } else {
        let net_only: [(&str, bool); 6] = [
            ("--clients", args.clients_set),
            ("--conn-jitter-ms", args.conn_jitter_set),
            ("--disconnect-rate", args.disconnect_rate_set),
            ("--reorder-rate", args.reorder_rate_set),
            ("--door-rate", args.door_rate_set),
            ("--door-burst", args.door_burst_set),
        ];
        if let Some((flag, _)) = net_only.iter().find(|(_, set)| *set) {
            return Err(format!(
                "{flag} only applies to the network front door; add --ingest net"
            ));
        }
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    if !args.conn_jitter_ms.is_finite() || args.conn_jitter_ms < 0.0 {
        return Err(format!(
            "--conn-jitter-ms must be a finite, non-negative number (got {})",
            args.conn_jitter_ms
        ));
    }
    if !args.disconnect_rate.is_finite() || !(0.0..1.0).contains(&args.disconnect_rate) {
        return Err(format!(
            "--disconnect-rate must be a probability below 1 (got {})",
            args.disconnect_rate
        ));
    }
    if !args.reorder_rate.is_finite() || !(0.0..=1.0).contains(&args.reorder_rate) {
        return Err(format!(
            "--reorder-rate must be a probability (got {})",
            args.reorder_rate
        ));
    }
    if !args.door_rate.is_finite() || args.door_rate <= 0.0 {
        return Err("--door-rate must be a finite, positive number".into());
    }
    if !args.door_burst.is_finite() || args.door_burst < 1.0 {
        return Err("--door-burst must be at least 1".into());
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: not a number: {value}"))
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("query") {
        if let Err(e) = run_query(std::env::args().skip(2)) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut autoscale = match args.autoscale {
        ScalePolicyKind::Fixed => AutoscaleConfig::fixed(),
        ScalePolicyKind::Hysteresis => {
            AutoscaleConfig::hysteresis(args.min_workers, args.max_workers)
        }
        ScalePolicyKind::Proportional => {
            AutoscaleConfig::proportional(args.min_workers, args.max_workers, 0.05)
        }
        ScalePolicyKind::Predictive => {
            AutoscaleConfig::predictive(args.min_workers, args.max_workers)
        }
    };
    autoscale = autoscale.with_control_interval_s(args.interval_ms / 1e3);
    let admission = match args.admission {
        AdmissionKind::AdmitAll => AdmissionConfig::admit_all(),
        AdmissionKind::TokenBucket => {
            AdmissionConfig::token_bucket(args.admit_rate, args.admit_burst)
        }
        AdmissionKind::Priority => {
            AdmissionConfig::priority(args.watermark).with_downgrade(args.admit_downgrade)
        }
    };
    let policy = match args.policy {
        PolicyKind::AlwaysDetect => PolicyConfig::always_detect(),
        PolicyKind::FixedStride => PolicyConfig::fixed_stride(args.policy_stride),
        PolicyKind::ConfidenceTrigger => PolicyConfig::confidence_trigger(args.policy_confidence),
    };
    let cfg = ServeConfig::new()
        .with_workers(args.workers)
        .with_max_batch(args.max_batch)
        .with_batch_window_s(args.window_ms / 1e3)
        .with_queue_capacity(args.queue)
        .with_fuse_refinement(args.fuse_refinement)
        .with_refine_batch_window_s(args.refine_window_ms / 1e3)
        .with_schedule(args.schedule)
        .with_policy(policy)
        .with_drop_policy(args.drop)
        .with_autoscale(autoscale)
        .with_admission(admission)
        .with_forecast(
            ForecastConfig::new()
                .with_bucket_s(args.forecast_bucket_ms / 1e3)
                .with_history_buckets(args.forecast_buckets)
                .with_horizon_s(args.forecast_horizon_ms / 1e3)
                .with_min_confidence(args.forecast_confidence),
        )
        .with_shard(
            ShardConfig::sharded(args.shards)
                .with_partition(args.partition)
                .with_rebalance_interval_s(args.rebalance_ms / 1e3)
                .with_migration_cost_frames(args.migration_cost)
                .with_rebalance_signal(args.rebalance_signal)
                .with_migration_cooldown_ticks(args.migration_cooldown)
                .with_fuse_across_shards(!args.no_fuse_across_shards)
                .with_threads(args.threads),
        )
        .with_recorder(if args.record.is_some() {
            RecorderConfig::on()
                .with_chunk_events(args.record_chunk_events)
                .with_retention_chunks(args.record_retention_chunks)
                .with_snapshot_every_frames(args.record_snapshot_every)
        } else {
            RecorderConfig::off()
        })
        .with_ingest(if args.ingest == IngestKind::Net {
            IngestConfig::net()
                .with_conn_jitter_s(args.conn_jitter_ms / 1e3)
                .with_disconnect_rate(args.disconnect_rate)
                .with_reorder_rate(args.reorder_rate)
                .with_door_rate_fps(args.door_rate)
                .with_door_burst(args.door_burst)
        } else {
            IngestConfig::direct()
        });

    let net = args.ingest == IngestKind::Net;
    println!(
        "spinning up {} {} ({} frames each, {} workload), {} shards x {} workers \
         ({} partition), {} scheduling, {} frame policy, autoscale {}, admission {}, \
         refinement fusion {}, system {}",
        if net { args.clients } else { args.streams },
        if net { "camera connections" } else { "streams" },
        args.frames,
        if net { "mixed" } else { args.workload.name() },
        args.shards,
        args.workers,
        args.partition.name(),
        args.schedule.name(),
        args.policy.name(),
        args.autoscale.name(),
        args.admission.name(),
        if args.fuse_refinement { "on" } else { "off" },
        args.system.name(),
    );
    if net {
        println!(
            "front door: jitter {} ms, disconnect rate {}, reorder rate {}, \
             door {} fps (burst {})",
            args.conn_jitter_ms,
            args.disconnect_rate,
            args.reorder_rate,
            args.door_rate,
            args.door_burst,
        );
    }
    let streams: Vec<StreamSpec> = if net {
        mixed_workload(args.clients, args.frames, args.seed, args.system)
    } else {
        match args.workload {
            WorkloadKind::Mixed => {
                mixed_workload(args.streams, args.frames, args.seed, args.system)
            }
            WorkloadKind::Bursty => bursty_workload(
                args.streams,
                args.frames,
                args.seed,
                args.system,
                BurstProfile::demo(),
            ),
            WorkloadKind::Ramp => ramp_workload(
                args.streams,
                args.frames,
                args.seed,
                args.system,
                2.0,
                20.0,
                3.0,
            ),
            WorkloadKind::Sine => sine_workload(
                args.streams,
                args.frames,
                args.seed,
                args.system,
                10.0,
                6.0,
                2.0,
            ),
        }
    };
    let recorder = args.record.as_ref().map(|_| cfg.recorder.build());
    if net || args.shards > 1 {
        let report = match (&recorder, net) {
            (Some(r), true) => serve_net_fleet_with_recorder(streams, &cfg, args.seed, r),
            (None, true) => serve_net_fleet(streams, &cfg, args.seed),
            (Some(r), false) => serve_fleet_with_recorder(streams, &cfg, r),
            (None, false) => serve_fleet(streams, &cfg),
        };
        print!("{}", report.summary());
        if !report.migrations.is_empty() {
            println!("migration timeline:");
            print!("{}", report.migration_timeline());
        }
        let scale = report.scale_timeline();
        if !scale.is_empty() {
            println!("scale-event timeline (shard, t, change):");
            for (shard, e) in scale {
                println!(
                    "  shard {shard}  t={:>8.3}s  {:>2} -> {:<2} ({})",
                    e.t_s,
                    e.from_workers,
                    e.to_workers,
                    e.reason.label()
                );
            }
        }
    } else {
        let report = match &recorder {
            Some(r) => serve_with_recorder(streams, &cfg, r),
            None => serve(streams, &cfg),
        };
        print!("{}", report.summary());
        if !report.scale_events.is_empty() {
            println!("scale-event timeline:");
            print!("{}", report.scale_timeline());
        }
    }
    if let (Some(recorder), Some(path)) = (&recorder, &args.record) {
        let stats = recorder.stats();
        println!(
            "recorder: {} events in {} chunks ({} evicted, {} events lost to eviction), \
             {} snapshots, {} encoded bytes",
            stats.events,
            stats.open_chunks + stats.sealed_chunks,
            stats.chunks_evicted,
            stats.events_evicted,
            stats.snapshots,
            stats.encoded_bytes,
        );
        match recorder.save(Path::new(path)) {
            Ok(()) => {
                println!("telemetry saved to {path} (inspect with: catdet-serve query {path})")
            }
            Err(e) => {
                eprintln!("error: could not save recording to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The `query` subcommand: scan a saved recording and print matching
/// events, plus recorded latency percentiles for detection scans.
fn run_query(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let file = it
        .next()
        .ok_or("query needs a recording file (catdet-serve query <FILE> ...)")?;
    let mut query = Query::all();
    let mut limit = 40usize;
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--kind" => {
                let kind = EventKind::from_name(&value).ok_or_else(|| {
                    format!(
                        "--kind: unknown kind {value} (expected one of: {})",
                        EventKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
                query = query.kind(kind);
            }
            "--stream" => query = query.stream(parse_num(&flag, &value)?),
            "--shard" => query = query.shard(parse_num(&flag, &value)?),
            "--from" => {
                let t: f64 = parse_num(&flag, &value)?;
                query.t0 = t;
            }
            "--to" => {
                let t: f64 = parse_num(&flag, &value)?;
                query.t1 = t;
            }
            "--limit" => limit = parse_num(&flag, &value)?,
            other => return Err(format!("unknown query flag {other} (try --help)")),
        }
    }
    let mut store =
        read_file(Path::new(&file)).map_err(|e| format!("could not read {file}: {e}"))?;
    let stats = store.stats();
    println!(
        "{file}: {} events in {} chunks, {} encoded bytes",
        stats.events,
        stats.open_chunks + stats.sealed_chunks,
        stats.encoded_bytes,
    );
    let events = store.scan(&query);
    println!("{} events match", events.len());
    for r in events.iter().take(limit) {
        println!(
            "  t={:>9.4}s  shard {}  {}",
            r.t_s,
            r.shard,
            describe(&r.event)
        );
    }
    if events.len() > limit {
        println!(
            "  ... {} more (raise --limit to see them)",
            events.len() - limit
        );
    }
    if query.kind.is_none_or(|k| k == EventKind::Detection) {
        let l = store.latency_stats(&query);
        if l.samples > 0 {
            println!(
                "recorded latency over {} samples: mean {:.1} ms | p50 {:.1} ms | \
                 p95 {:.1} ms | p99 {:.1} ms | max {:.1} ms",
                l.samples,
                l.mean_s * 1e3,
                l.p50_s * 1e3,
                l.p95_s * 1e3,
                l.p99_s * 1e3,
                l.max_s * 1e3,
            );
        }
    }
    Ok(())
}

/// One-line human rendering of a recorded event, decoding the producer's
/// reason codes back to their labels.
fn describe(event: &Event) -> String {
    match *event {
        Event::Detection {
            stream,
            seq,
            frame_index,
            detections,
            latency_s,
            output_hash,
        } => format!(
            "detection: stream {stream} #{seq} frame {frame_index} -> {detections} boxes, \
             {:.1} ms, hash {output_hash:016x}",
            latency_s * 1e3
        ),
        Event::Track {
            stream,
            frame_index,
            live_tracks,
        } => format!("track: stream {stream} frame {frame_index} -> {live_tracks} live tracks"),
        Event::Batch {
            stream,
            worker,
            stage,
            size,
        } => format!(
            "batch: stream {stream} rode a {}-stream {} dispatch on worker {worker}",
            size,
            if stage == catdet_recorder::STAGE_PROPOSAL {
                "proposal"
            } else {
                "refinement"
            },
        ),
        Event::Scale {
            from_workers,
            to_workers,
            reason,
        } => format!(
            "scale: {from_workers} -> {to_workers} workers ({})",
            ScaleReason::from_code(reason).map_or("unknown", |r| r.label())
        ),
        Event::Admission { stream, reason } => format!(
            "admission: stream {stream} refused ({})",
            AdmissionReason::from_code(reason).map_or("unknown", |r| r.label())
        ),
        Event::Migration {
            stream,
            from_shard,
            to_shard,
            backlog_moved,
        } => format!(
            "migration: stream {stream} shard {from_shard} -> {to_shard} \
             ({backlog_moved} queued frames moved)"
        ),
        Event::Conn {
            stream,
            code,
            frame,
            detail,
        } => match ConnEventKind::from_code(code) {
            Some(ConnEventKind::Connect) => {
                format!("conn: client {stream} connected ({detail} frames offered)")
            }
            Some(ConnEventKind::Disconnect) => {
                format!("conn: client {stream} dropped mid-send at frame {frame}")
            }
            Some(ConnEventKind::Throttle) => format!(
                "conn: client {stream} throttled (window full at {detail}, head frame {frame})"
            ),
            Some(ConnEventKind::Resume) => {
                format!("conn: client {stream} resumed from frame {frame}")
            }
            Some(ConnEventKind::DoorReject) => {
                format!("conn: client {stream} frame {frame} rejected at the door")
            }
            None => format!("conn: client {stream} unknown lifecycle code {code}"),
        },
        Event::Policy {
            stream,
            frame_index,
            decision,
            streak,
        } => match decision {
            catdet_recorder::POLICY_DEGRADED_ON => {
                format!("policy: stream {stream} downgraded one rung (admission shedding)")
            }
            catdet_recorder::POLICY_DEGRADED_OFF => {
                format!("policy: stream {stream} restored to its configured policy")
            }
            _ => match PolicyDecision::from_code(decision) {
                Some(d) => format!(
                    "policy: stream {stream} frame {frame_index} {} (coast streak {streak})",
                    d.label()
                ),
                None => format!("policy: stream {stream} unknown decision code {decision}"),
            },
        },
        Event::Forecast {
            stream,
            rate_fps,
            confidence,
            phase,
        } => format!(
            "forecast: stream {stream} -> {rate_fps:.2} fps over the horizon \
             ({} phase, confidence {confidence:.2})",
            BurstPhase::from_code(phase).map_or("unknown", |p| p.label())
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Args, String> {
        parse_args_from(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn net_ingest_conflicts_with_workload() {
        let err = parse(&["--ingest", "net", "--workload", "bursty"]).unwrap_err();
        assert!(err.contains("--workload"), "{err}");
        assert!(err.contains("--ingest net"), "{err}");
    }

    #[test]
    fn net_ingest_conflicts_with_streams() {
        let err = parse(&["--ingest", "net", "--streams", "4"]).unwrap_err();
        assert!(err.contains("--streams"), "{err}");
        assert!(err.contains("--clients"), "{err}");
    }

    #[test]
    fn clients_requires_net_ingest() {
        let err = parse(&["--clients", "4"]).unwrap_err();
        assert!(err.contains("--clients"), "{err}");
        assert!(err.contains("--ingest net"), "{err}");
    }

    #[test]
    fn conn_jitter_requires_net_ingest() {
        let err = parse(&["--conn-jitter-ms", "5"]).unwrap_err();
        assert!(err.contains("--conn-jitter-ms"), "{err}");
        assert!(err.contains("--ingest net"), "{err}");
    }

    #[test]
    fn disconnect_rate_requires_net_ingest() {
        let err = parse(&["--disconnect-rate", "0.1"]).unwrap_err();
        assert!(err.contains("--disconnect-rate"), "{err}");
        assert!(err.contains("--ingest net"), "{err}");
    }

    #[test]
    fn reorder_rate_requires_net_ingest() {
        let err = parse(&["--reorder-rate", "0.1"]).unwrap_err();
        assert!(err.contains("--reorder-rate"), "{err}");
        assert!(err.contains("--ingest net"), "{err}");
    }

    #[test]
    fn door_flags_require_net_ingest() {
        let err = parse(&["--door-rate", "30"]).unwrap_err();
        assert!(err.contains("--door-rate"), "{err}");
        assert!(err.contains("--ingest net"), "{err}");
        let err = parse(&["--door-burst", "4"]).unwrap_err();
        assert!(err.contains("--door-burst"), "{err}");
        assert!(err.contains("--ingest net"), "{err}");
    }

    #[test]
    fn net_flag_ranges_are_checked() {
        let err = parse(&["--ingest", "net", "--disconnect-rate", "1.0"]).unwrap_err();
        assert!(err.contains("--disconnect-rate"), "{err}");
        let err = parse(&["--ingest", "net", "--reorder-rate", "1.5"]).unwrap_err();
        assert!(err.contains("--reorder-rate"), "{err}");
        let err = parse(&["--ingest", "net", "--conn-jitter-ms", "-1"]).unwrap_err();
        assert!(err.contains("--conn-jitter-ms"), "{err}");
        let err = parse(&["--ingest", "net", "--door-rate", "0"]).unwrap_err();
        assert!(err.contains("--door-rate"), "{err}");
        let err = parse(&["--ingest", "net", "--clients", "0"]).unwrap_err();
        assert!(err.contains("--clients"), "{err}");
    }

    #[test]
    fn policy_stride_requires_fixed_stride_policy() {
        let err = parse(&["--policy-stride", "4"]).unwrap_err();
        assert!(err.contains("--policy-stride"), "{err}");
        assert!(err.contains("--policy fixed-stride"), "{err}");
        // Wrong policy kind is as invalid as no policy at all.
        let err = parse(&["--policy", "confidence-trigger", "--policy-stride", "4"]).unwrap_err();
        assert!(err.contains("--policy fixed-stride"), "{err}");
    }

    #[test]
    fn policy_confidence_requires_confidence_trigger_policy() {
        let err = parse(&["--policy-confidence", "1.5"]).unwrap_err();
        assert!(err.contains("--policy-confidence"), "{err}");
        assert!(err.contains("--policy confidence-trigger"), "{err}");
        let err = parse(&["--policy", "fixed-stride", "--policy-confidence", "1.5"]).unwrap_err();
        assert!(err.contains("--policy confidence-trigger"), "{err}");
    }

    #[test]
    fn policy_flag_ranges_are_checked() {
        let err = parse(&["--policy", "fixed-stride", "--policy-stride", "0"]).unwrap_err();
        assert!(err.contains("--policy-stride"), "{err}");
        let err = parse(&[
            "--policy",
            "confidence-trigger",
            "--policy-confidence",
            "-1",
        ])
        .unwrap_err();
        assert!(err.contains("--policy-confidence"), "{err}");
        let err = parse(&["--policy", "nope"]).unwrap_err();
        assert!(err.contains("unknown frame policy"), "{err}");
    }

    #[test]
    fn admit_downgrade_requires_priority_admission() {
        let err = parse(&["--admit-downgrade"]).unwrap_err();
        assert!(err.contains("--admit-downgrade"), "{err}");
        assert!(err.contains("--admission priority"), "{err}");
        let args = parse(&["--admission", "priority", "--admit-downgrade"]).unwrap();
        assert!(args.admit_downgrade);
        assert_eq!(args.admission, AdmissionKind::Priority);
    }

    #[test]
    fn valid_policy_invocations_parse() {
        let args = parse(&["--policy", "fixed-stride", "--policy-stride", "5"]).unwrap();
        assert_eq!(args.policy, PolicyKind::FixedStride);
        assert_eq!(args.policy_stride, 5);
        let args = parse(&[
            "--policy",
            "confidence-trigger",
            "--policy-confidence",
            "1.5",
            "--schedule",
            "least-backlog",
        ])
        .unwrap();
        assert_eq!(args.policy, PolicyKind::ConfidenceTrigger);
        assert_eq!(args.policy_confidence, 1.5);
        assert_eq!(args.schedule, SchedulePolicy::LeastBacklog);
        // Defaults: always-detect, no downgrade.
        let args = parse(&[]).unwrap();
        assert_eq!(args.policy, PolicyKind::AlwaysDetect);
        assert!(!args.admit_downgrade);
    }

    #[test]
    fn valid_net_invocations_parse() {
        let args = parse(&[
            "--ingest",
            "net",
            "--clients",
            "10",
            "--conn-jitter-ms",
            "8",
            "--disconnect-rate",
            "0.05",
            "--reorder-rate",
            "0.02",
            "--door-rate",
            "60",
            "--door-burst",
            "8",
        ])
        .unwrap();
        assert_eq!(args.ingest, IngestKind::Net);
        assert_eq!(args.clients, 10);
        assert_eq!(args.conn_jitter_ms, 8.0);
        assert_eq!(args.disconnect_rate, 0.05);
        assert_eq!(args.reorder_rate, 0.02);
        assert_eq!(args.door_rate, 60.0);
        assert_eq!(args.door_burst, 8.0);
        // Direct invocations are untouched by the new flags.
        let args = parse(&["--streams", "4", "--workload", "bursty"]).unwrap();
        assert_eq!(args.ingest, IngestKind::Direct);
        assert_eq!(args.streams, 4);
    }

    #[test]
    fn forecast_flags_require_a_predictive_consumer() {
        for flag in [
            ["--forecast-bucket-ms", "100"],
            ["--forecast-buckets", "16"],
            ["--forecast-horizon-ms", "400"],
            ["--forecast-confidence", "0.5"],
        ] {
            let err = parse(&flag).unwrap_err();
            assert!(err.contains(flag[0]), "{err}");
            assert!(err.contains("--autoscale predictive"), "{err}");
        }
        // Either predictive consumer unlocks them.
        let args = parse(&["--autoscale", "predictive", "--forecast-horizon-ms", "400"]).unwrap();
        assert_eq!(args.autoscale, ScalePolicyKind::Predictive);
        assert_eq!(args.forecast_horizon_ms, 400.0);
        let args = parse(&["--rebalance", "predicted", "--forecast-buckets", "16"]).unwrap();
        assert_eq!(args.rebalance_signal, RebalanceSignal::Predicted);
        assert_eq!(args.forecast_buckets, 16);
    }

    #[test]
    fn forecast_flag_ranges_are_checked() {
        let err = parse(&["--autoscale", "predictive", "--forecast-bucket-ms", "0"]).unwrap_err();
        assert!(err.contains("--forecast-bucket-ms"), "{err}");
        let err = parse(&["--autoscale", "predictive", "--forecast-buckets", "1"]).unwrap_err();
        assert!(err.contains("--forecast-buckets"), "{err}");
        let err = parse(&["--autoscale", "predictive", "--forecast-horizon-ms", "-1"]).unwrap_err();
        assert!(err.contains("--forecast-horizon-ms"), "{err}");
        let err =
            parse(&["--autoscale", "predictive", "--forecast-confidence", "1.5"]).unwrap_err();
        assert!(err.contains("--forecast-confidence"), "{err}");
    }

    #[test]
    fn rebalance_signal_and_cooldown_parse() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.rebalance_signal, RebalanceSignal::Backlog);
        assert_eq!(args.migration_cooldown, 2);
        let args = parse(&[
            "--rebalance",
            "predicted",
            "--migration-cooldown-ticks",
            "0",
        ])
        .unwrap();
        assert_eq!(args.rebalance_signal, RebalanceSignal::Predicted);
        assert_eq!(args.migration_cooldown, 0);
        let err = parse(&["--rebalance", "nope"]).unwrap_err();
        assert!(err.contains("unknown signal"), "{err}");
    }

    #[test]
    fn ramp_and_sine_workloads_parse() {
        let args = parse(&["--workload", "ramp"]).unwrap();
        assert_eq!(args.workload, WorkloadKind::Ramp);
        let args = parse(&["--workload", "sine"]).unwrap();
        assert_eq!(args.workload, WorkloadKind::Sine);
        for k in [
            WorkloadKind::Mixed,
            WorkloadKind::Bursty,
            WorkloadKind::Ramp,
            WorkloadKind::Sine,
        ] {
            assert_eq!(WorkloadKind::from_name(k.name()), Some(k));
        }
    }
}
