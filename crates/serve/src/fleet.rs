//! The sharded serving fleet: N independent scheduler shards, a live
//! rebalancer, cross-shard refinement fusion, and merged reporting.
//!
//! # Execution model
//!
//! [`serve_fleet`] partitions the streams across
//! [`ShardConfig::shards`](crate::ShardConfig::shards) embedded scheduler
//! engines (each with its own worker pool, bounded queues, admission gate
//! and autoscaler — every [`ServeConfig`] knob applies **per shard**), then
//! advances them on one shared fleet clock:
//!
//! * **Independent phases** — between coordination points, every shard
//!   runs its own virtual-time event loop; shards share no state, so the
//!   fleet is exactly as deterministic as one scheduler.
//! * **Live rebalancing** — at every
//!   [`rebalance_interval_s`](crate::ShardConfig::rebalance_interval_s)
//!   tick the fleet compares shard loads — queued backlog, or (with the
//!   [`RebalanceSignal::Predicted`](crate::RebalanceSignal) signal)
//!   backlog plus each stream's forecast arrivals over the forecast
//!   horizon; when the hottest shard leads the coolest by more than
//!   [`migration_cost_frames`](crate::ShardConfig::migration_cost_frames),
//!   the best-balancing *migratable* stream moves (streams that just
//!   moved sit out a per-stream cooldown). Migration happens at a
//!   stage-boundary suspend point: the stream's suspended pipeline (tracker
//!   state, frame scratch), queued backlog, undelivered frames and every
//!   counter relocate wholesale, so **no frame is ever lost or duplicated**
//!   (a property test pins exact conservation under random fleets).
//! * **Cross-shard refinement fusion** — with
//!   [`fuse_refinement`](ServeConfig::fuse_refinement) on and
//!   [`fuse_across_shards`](crate::ShardConfig::fuse_across_shards) set,
//!   the fleet advances shards in lock-step at event granularity and
//!   drains their refinement fuse pools into **one** shared GPU dispatch
//!   per deadline — the cross-stream amortisation from the staged-detector
//!   protocol survives sharding.
//!
//! A 1-shard fleet takes none of the coordination paths and is
//! **bit-identical** to [`serve`](crate::serve) (golden test).
//!
//! # Reporting
//!
//! Each shard produces its own [`ServeReport`]; [`FleetReport`] merges
//! them *correctly*: latency percentiles are recomputed from pooled raw
//! samples (never averaged from per-shard percentiles), counts and
//! integrals add, timelines interleave in time order, and the migration /
//! fused-dispatch histories are fleet-level records.

use crate::config::ServeConfig;
use crate::report::{
    merge_timelines, BatchRecord, BatchStats, LatencyStats, ServeReport, StreamReport,
};
use crate::scheduler::{panic_message, Engine, StreamSpec, EPS};
use crate::shard::{build_partition, MigrationEvent, RebalanceSignal};
use catdet_recorder::{Event, FlightRecorder, NullRecorder, SharedRecorder};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One cross-shard fused refinement dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRefineRecord {
    /// Virtual dispatch time.
    pub t_s: f64,
    /// Fleet-wide stream ids whose refinement launches rode the dispatch.
    pub streams: Vec<usize>,
    /// Contributing shards (one entry per stream, aligned with
    /// [`streams`](FleetRefineRecord::streams)).
    pub shards: Vec<usize>,
}

/// Aggregate result of a sharded serving run: per-shard reports plus the
/// fleet-level histories, with merge accessors that aggregate correctly.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-shard reports, indexed by shard id. Stream ids inside are
    /// fleet-wide; a migrated stream appears once, on its final shard.
    pub shards: Vec<ServeReport>,
    /// Live migrations, in time order.
    pub migrations: Vec<MigrationEvent>,
    /// Cross-shard fused refinement dispatches, in time order (empty
    /// unless fleet-wide fusion ran).
    pub fused_refinements: Vec<FleetRefineRecord>,
    /// Summed virtual GPU time of the cross-shard dispatches (accounted
    /// here once, not in any shard's `gpu_dispatch_s`).
    pub fused_gpu_dispatch_s: f64,
    /// Front-door accounting when the run ingested over the network
    /// (`None` for direct ingest). Frames this report counts as rejected
    /// at the door never reached the shards — they are separate from,
    /// and in addition to, the admission-shed frames below.
    pub ingest: Option<catdet_net::IngestReport>,
}

impl FleetReport {
    /// Total frames that arrived across the fleet.
    pub fn frames_arrived(&self) -> usize {
        self.shards.iter().map(|s| s.frames_arrived).sum()
    }

    /// Total frames processed across the fleet.
    pub fn frames_processed(&self) -> usize {
        self.shards.iter().map(|s| s.frames_processed).sum()
    }

    /// Total frames shed across the fleet (backpressure + admission).
    pub fn frames_dropped(&self) -> usize {
        self.shards.iter().map(|s| s.frames_dropped).sum()
    }

    /// Of the dropped frames, total refused by admission control.
    pub fn frames_rejected(&self) -> usize {
        self.shards.iter().map(|s| s.frames_rejected).sum()
    }

    /// Of the processed frames, total served by coasting the tracker
    /// (track-only frames under a non-default frame policy).
    pub fn frames_coasted(&self) -> usize {
        self.shards.iter().map(|s| s.frames_coasted).sum()
    }

    /// Of the processed frames, total skipped by policy stride.
    pub fn frames_skipped(&self) -> usize {
        self.shards.iter().map(|s| s.frames_skipped).sum()
    }

    /// Total frames served with a full detection pass.
    pub fn frames_detected(&self) -> usize {
        self.frames_processed() - self.frames_coasted() - self.frames_skipped()
    }

    /// Fleet drop rate over arrived frames.
    pub fn drop_rate(&self) -> f64 {
        let arrived = self.frames_arrived();
        if arrived == 0 {
            0.0
        } else {
            self.frames_dropped() as f64 / arrived as f64
        }
    }

    /// Fleet makespan: the slowest shard bounds the run.
    pub fn makespan_s(&self) -> f64 {
        self.shards.iter().map(|s| s.makespan_s).fold(0.0, f64::max)
    }

    /// Fleet throughput: processed frames over the fleet makespan.
    pub fn throughput_fps(&self) -> f64 {
        let makespan = self.makespan_s();
        if makespan > 0.0 {
            self.frames_processed() as f64 / makespan
        } else {
            0.0
        }
    }

    /// Summed provisioned worker-seconds across shards.
    pub fn worker_seconds(&self) -> f64 {
        self.shards.iter().map(|s| s.worker_seconds).sum()
    }

    /// Summed priced GPU dispatch time: every shard's own dispatches plus
    /// the cross-shard fused ones (accounted once, fleet-level).
    pub fn gpu_dispatch_s(&self) -> f64 {
        self.shards.iter().map(|s| s.gpu_dispatch_s).sum::<f64>() + self.fused_gpu_dispatch_s
    }

    /// Fleet latency distribution, merged **from raw samples**: the pooled
    /// nearest-rank percentiles over every stream's `latency_samples`.
    /// Averaging per-shard percentiles would be wrong (see
    /// [`LatencyStats::merged`]); this is the correct aggregation, and a
    /// property test pins it to the naive pooled reference. `None` when no
    /// stream in the fleet completed a frame — shards that served zero
    /// frames contribute nothing rather than 0-valued stats.
    pub fn merged_latency(&self) -> Option<LatencyStats> {
        LatencyStats::merged(
            self.shards
                .iter()
                .flat_map(|s| s.streams.iter())
                .map(|s| s.latency_samples.as_slice()),
        )
    }

    /// Merged batching statistics: shard counters add (maxima take the
    /// max), and the cross-shard fused dispatches are folded in as
    /// refinement batches.
    pub fn merged_batch(&self) -> BatchStats {
        let mut out = BatchStats::default();
        for s in &self.shards {
            out.batches += s.batch.batches;
            out.batched_frames += s.batch.batched_frames;
            out.max_batch_seen = out.max_batch_seen.max(s.batch.max_batch_seen);
            out.proposal_launches_saved += s.batch.proposal_launches_saved;
            out.refine_batches += s.batch.refine_batches;
            out.refined_frames += s.batch.refined_frames;
            out.max_refine_batch_seen =
                out.max_refine_batch_seen.max(s.batch.max_refine_batch_seen);
            out.refinement_launches_saved += s.batch.refinement_launches_saved;
        }
        for r in &self.fused_refinements {
            out.refine_batches += 1;
            out.refined_frames += r.streams.len();
            out.max_refine_batch_seen = out.max_refine_batch_seen.max(r.streams.len());
            out.refinement_launches_saved += r.streams.len() - 1;
        }
        out
    }

    /// Every stream report across the fleet, ordered by fleet-wide stream
    /// id (each stream appears exactly once, on the shard that finished
    /// it).
    pub fn streams(&self) -> Vec<&StreamReport> {
        let mut out: Vec<&StreamReport> =
            self.shards.iter().flat_map(|s| s.streams.iter()).collect();
        out.sort_by_key(|s| s.stream_id);
        out
    }

    /// Worst per-stream p99 across the fleet (`None` when nothing
    /// completed), mirroring [`ServeReport::worst_p99_s`].
    pub fn worst_p99_s(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(|s| s.worst_p99_s())
            .reduce(f64::max)
    }

    /// All scale events across shards as `(shard, event)`, merged in time
    /// order (ties keep shard order).
    pub fn scale_timeline(&self) -> Vec<(usize, crate::ScaleEvent)> {
        let lanes: Vec<&[crate::ScaleEvent]> = self
            .shards
            .iter()
            .map(|s| s.scale_events.as_slice())
            .collect();
        merge_timelines(&lanes)
    }

    /// All admission rejections across shards as `(shard, event)`, merged
    /// in time order (ties keep shard order).
    pub fn admission_timeline(&self) -> Vec<(usize, crate::AdmissionEvent)> {
        let lanes: Vec<&[crate::AdmissionEvent]> = self
            .shards
            .iter()
            .map(|s| s.admission_events.as_slice())
            .collect();
        merge_timelines(&lanes)
    }

    /// All downgrade-before-drop transitions across shards as
    /// `(shard, event)`, merged in time order (ties keep shard order).
    pub fn downgrade_timeline(&self) -> Vec<(usize, crate::admission::DowngradeEvent)> {
        let lanes: Vec<&[crate::admission::DowngradeEvent]> = self
            .shards
            .iter()
            .map(|s| s.downgrade_events.as_slice())
            .collect();
        merge_timelines(&lanes)
    }

    /// All dispatched batches across shards as `(shard, record)`, merged
    /// in time order (ties keep shard order). Per-shard logs are in
    /// dispatch order, which can run slightly ahead of time order (a
    /// per-frame refinement is priced at its future completion cursor), so
    /// each lane is time-sorted (stably) before the merge.
    pub fn batch_timeline(&self) -> Vec<(usize, BatchRecord)> {
        let mut lanes: Vec<Vec<BatchRecord>> =
            self.shards.iter().map(|s| s.batch_log.clone()).collect();
        for lane in &mut lanes {
            lane.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        }
        let refs: Vec<&[BatchRecord]> = lanes.iter().map(|l| l.as_slice()).collect();
        merge_timelines(&refs)
    }

    /// Human-readable migration timeline, one line per event.
    pub fn migration_timeline(&self) -> String {
        let mut out = String::new();
        for m in &self.migrations {
            let _ = writeln!(
                out,
                "  t={:>8.3}s  stream {:>3}: shard {} -> {} ({} queued frames moved)",
                m.t_s, m.stream, m.from_shard, m.to_shard, m.backlog_moved
            );
        }
        out
    }

    /// Human-readable multi-line fleet summary (what the `catdet-serve`
    /// binary prints for sharded runs).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let (p50, p95, p99) = self
            .merged_latency()
            .map_or((0.0, 0.0, 0.0), |l| (l.p50_s, l.p95_s, l.p99_s));
        let batch = self.merged_batch();
        let _ = writeln!(
            out,
            "fleet: {} shards | {} streams | {:.1} virtual s | {} processed / {} arrived \
             ({} dropped: {} backpressure + {} admission-shed, {:.1}%)",
            self.shards.len(),
            self.streams().len(),
            self.makespan_s(),
            self.frames_processed(),
            self.frames_arrived(),
            self.frames_dropped(),
            self.frames_dropped() - self.frames_rejected(),
            self.frames_rejected(),
            100.0 * self.drop_rate(),
        );
        if let Some(ingest) = &self.ingest {
            let _ = writeln!(out, "{}", ingest.summary());
        }
        let _ = writeln!(
            out,
            "throughput: {:.2} frames/s | merged latency p50/p95/p99: {:.1}/{:.1}/{:.1} ms | gpu dispatch time: {:.3} s",
            self.throughput_fps(),
            p50 * 1e3,
            p95 * 1e3,
            p99 * 1e3,
            self.gpu_dispatch_s(),
        );
        let _ = writeln!(
            out,
            "refinement: {} dispatches (mean {:.2}, max {}, {} launches saved; {} cross-shard)",
            batch.refine_batches,
            batch.mean_refine_batch(),
            batch.max_refine_batch_seen,
            batch.refinement_launches_saved,
            self.fused_refinements.len(),
        );
        if self.frames_coasted() + self.frames_skipped() > 0 {
            let _ = writeln!(
                out,
                "policy: {} detected | {} coasted | {} stride-skipped",
                self.frames_detected(),
                self.frames_coasted(),
                self.frames_skipped(),
            );
        }
        let downgrades = self.downgrade_timeline();
        if !downgrades.is_empty() {
            let _ = writeln!(
                out,
                "downgrade: {} transitions (downgrade-before-drop)",
                downgrades.len(),
            );
        }
        if !self.migrations.is_empty() {
            let _ = writeln!(
                out,
                "rebalancer: {} migrations ({} queued frames moved)",
                self.migrations.len(),
                self.migrations
                    .iter()
                    .map(|m| m.backlog_moved)
                    .sum::<usize>(),
            );
        }
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>8} {:>8} {:>9} {:>9} {:>9}",
            "shard", "procd", "dropped", "batches", "p99 ms", "wrk-s", "gpu s"
        );
        for (k, s) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>6} {:>6} {:>8} {:>8} {:>9.1} {:>9.1} {:>9.3}",
                k,
                s.frames_processed,
                s.frames_dropped,
                s.batch.batches,
                s.worst_p99_s().unwrap_or(0.0) * 1e3,
                s.worker_seconds,
                s.gpu_dispatch_s,
            );
        }
        out
    }
}

/// Runs a sharded serving fleet to completion and reports.
///
/// Streams are partitioned across [`ShardConfig::shards`](crate::ShardConfig::shards)
/// embedded engines by the configured [`PartitionPolicy`](crate::shard::PartitionPolicy);
/// each engine gets its own worker pool ([`ServeConfig::workers`] threads
/// **per shard**), queues, admission gate and autoscaler. See the module
/// docs for the coordination model.
///
/// With one shard this is bit-identical to [`serve`](crate::serve).
///
/// # Panics
///
/// Panics on an invalid configuration or if a detection system panics on
/// a worker thread.
pub fn serve_fleet(streams: Vec<StreamSpec>, cfg: &ServeConfig) -> FleetReport {
    if cfg.recorder.enabled {
        cfg.validate();
        // Config-enabled recording without a caller-held handle (see
        // [`serve`](crate::serve)); pass a recorder via
        // [`serve_fleet_with_recorder`] to keep the store.
        let recorder = cfg.recorder.build();
        return serve_fleet_with_recorder(streams, cfg, &recorder);
    }
    serve_fleet_impl(streams, cfg, None)
}

/// Runs a sharded fleet with every event booked into `recorder`: each
/// shard's engine stamps its shard id, and migrations are recorded
/// fleet-level. Scheduling decisions (and the returned [`FleetReport`])
/// are bit-identical to an unrecorded run.
pub fn serve_fleet_with_recorder(
    streams: Vec<StreamSpec>,
    cfg: &ServeConfig,
    recorder: &SharedRecorder,
) -> FleetReport {
    let report = serve_fleet_impl(streams, cfg, Some(recorder));
    recorder.seal_open_chunks();
    report
}

/// One unit of pool work: advance shard `idx`'s engine to the barrier.
type ShardJob = (usize, Engine, f64);
/// What comes back: the engine (or a worker-panic message) and whether it
/// still has work.
type ShardResult = (usize, Result<(Engine, bool), String>);

/// A persistent pool of OS threads that advance whole shard engines
/// between fleet barriers.
///
/// Engines move **by value** through the channels: a pool thread owns the
/// engine outright while stepping it — its scratch buffers, its recorder
/// writing end, its internal worker pool — so there is no shared mutable
/// state and nothing to lock on the simulation path. The fleet's
/// coordination points (fuse deadlines, rebalance ticks, recorder
/// flushes) all happen on the control thread after every engine has been
/// reassembled, which is the whole determinism argument: threads change
/// *when* wall-clock work happens, never *what* the simulation computes.
struct ShardPool {
    job_tx: Option<Sender<ShardJob>>,
    result_rx: Receiver<ShardResult>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    fn new(threads: usize) -> Self {
        let (job_tx, job_rx) = channel::<ShardJob>();
        let (result_tx, result_rx) = channel::<ShardResult>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..threads)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                std::thread::spawn(move || loop {
                    let job = job_rx.lock().expect("shard pool queue").recv();
                    let Ok((idx, mut engine, limit)) = job else {
                        return; // fleet dropped the sender: run is over
                    };
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        let more = engine.run_until(limit);
                        (engine, more)
                    }))
                    .map_err(|e| panic_message(&*e));
                    let _ = result_tx.send((idx, out));
                })
            })
            .collect();
        ShardPool {
            job_tx: Some(job_tx),
            result_rx,
            workers,
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Resolves [`ShardConfig::threads`](crate::ShardConfig::threads) against
/// the shard count: `0` means the host's available parallelism, and no
/// run ever uses more threads than it has shards.
fn resolve_threads(threads: usize, shards: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    t.clamp(1, shards.max(1))
}

/// Advances every engine to `limit` — on the pool when one exists, in
/// shard order on the control thread otherwise — and reports whether any
/// shard still has work. Both paths compute the identical result; the
/// pool path scatters the engines to worker threads and reassembles them
/// **by shard index**, so downstream code never observes thread
/// scheduling order.
///
/// # Panics
///
/// Re-raises (with its message) any panic a shard engine hit on a pool
/// thread, after every surviving engine has been collected.
fn run_all(pool: Option<&ShardPool>, engines: &mut Vec<Engine>, limit: f64) -> bool {
    let Some(pool) = pool else {
        let mut work_left = false;
        for e in engines.iter_mut() {
            work_left |= e.run_until(limit);
        }
        return work_left;
    };
    let n = engines.len();
    let job_tx = pool.job_tx.as_ref().expect("pool alive");
    for (idx, engine) in engines.drain(..).enumerate() {
        job_tx.send((idx, engine, limit)).expect("pool alive");
    }
    let mut slots: Vec<Option<Engine>> = (0..n).map(|_| None).collect();
    let mut work_left = false;
    let mut panicked: Option<String> = None;
    for _ in 0..n {
        let (idx, res) = pool.result_rx.recv().expect("pool alive");
        match res {
            Ok((engine, more)) => {
                work_left |= more;
                slots[idx] = Some(engine);
            }
            Err(msg) => panicked = Some(msg),
        }
    }
    if let Some(msg) = panicked {
        panic!("shard engine panicked on a pool thread: {msg}");
    }
    engines.extend(
        slots
            .into_iter()
            .map(|s| s.expect("every shard sent its engine back")),
    );
    work_left
}

fn serve_fleet_impl(
    streams: Vec<StreamSpec>,
    cfg: &ServeConfig,
    recorder: Option<&SharedRecorder>,
) -> FleetReport {
    cfg.validate();
    let sc = cfg.shard;
    let shards = sc.shards;

    // Placement.
    let mut policy = build_partition(sc.partition);
    let mut groups: Vec<Vec<StreamSpec>> = (0..shards).map(|_| Vec::new()).collect();
    for spec in streams {
        let k = policy.place(spec.source.stream_id, spec.source.len(), shards);
        groups[k].push(spec);
    }

    // A 1-shard fleet takes no coordination path at all: the engine fuses
    // its own pool internally and runs to completion in one call, which is
    // what makes it bit-identical to `serve`.
    let fleet_fuse = cfg.fuse_refinement && sc.fuse_across_shards && shards > 1;
    let rebalance_on = sc.rebalance_interval_s > 0.0 && shards > 1;

    let mut engines: Vec<Engine> = groups
        .into_iter()
        .enumerate()
        .map(|(k, g)| {
            // Fleets hand engines the *barrier* writing end: everything
            // buffers locally and reaches the shared store only at the
            // in-shard-order flushes below, so the store's ingest order is
            // identical at every thread count.
            let sink: Box<dyn FlightRecorder> = match recorder {
                Some(r) => Box::new(r.barrier_handle(k)),
                None => Box::new(NullRecorder),
            };
            Engine::new(g, cfg, 0.0, fleet_fuse, sink)
        })
        .collect();

    // Real-thread execution: between barriers, whole engines move to pool
    // threads. One thread (the default) keeps the plain sequential loop —
    // no pool, no channels.
    let threads = resolve_threads(sc.threads, shards);
    let pool = (threads > 1).then(|| ShardPool::new(threads));
    // Drains every engine's recorder buffer in shard-id order; called at
    // each barrier so store ingest order is thread-count-independent.
    let flush_in_order = |engines: &mut [Engine]| {
        if recorder.is_some() {
            for e in engines.iter_mut() {
                e.flush_recorder();
            }
        }
    };

    let mut migrations: Vec<MigrationEvent> = Vec::new();
    let mut fused_refinements: Vec<FleetRefineRecord> = Vec::new();
    let mut fused_gpu = 0.0_f64;
    let mut rebalance_state = RebalanceState::default();
    let mut next_rebalance = if rebalance_on {
        sc.rebalance_interval_s
    } else {
        f64::INFINITY
    };

    if fleet_fuse {
        // Lock-step global discrete-event loop: every engine advances to
        // the fleet-wide next event, then due fuse deadlines fire across
        // shards. This is what lets a frame suspended on shard 0 share a
        // dispatch with one on shard 3.
        loop {
            // Fire only deadlines at or before the pending rebalance tick:
            // a dispatch semantically at t > tick must not execute first
            // (it returns systems to their slots, and the earlier-in-time
            // rebalancer would then observe post-dispatch state).
            fire_fleet_refinements(
                cfg,
                &mut engines,
                next_rebalance,
                &mut fused_refinements,
                &mut fused_gpu,
            );
            let mut next = f64::INFINITY;
            for e in &engines {
                if let Some(t) = e.next_event_time() {
                    next = next.min(t);
                }
            }
            if !next.is_finite() {
                break;
            }
            let next = next.min(next_rebalance);
            run_all(pool.as_ref(), &mut engines, next);
            if rebalance_on && next_rebalance <= next + EPS {
                flush_in_order(&mut engines);
                rebalance(
                    &sc,
                    &mut engines,
                    next_rebalance,
                    &mut migrations,
                    recorder,
                    &mut rebalance_state,
                );
                next_rebalance += sc.rebalance_interval_s;
            }
        }
        // Late stragglers: deadlines due exactly at the final instant.
        fire_fleet_refinements(
            cfg,
            &mut engines,
            f64::INFINITY,
            &mut fused_refinements,
            &mut fused_gpu,
        );
    } else {
        // Shards are fully independent between rebalance ticks: run each
        // to the next tick (or completion when rebalancing is off). This
        // is the embarrassingly parallel phase — with a pool, every shard
        // advances a whole tick of virtual time on its own OS thread.
        loop {
            let work_left = run_all(pool.as_ref(), &mut engines, next_rebalance);
            if !work_left {
                break;
            }
            flush_in_order(&mut engines);
            rebalance(
                &sc,
                &mut engines,
                next_rebalance,
                &mut migrations,
                recorder,
                &mut rebalance_state,
            );
            next_rebalance += sc.rebalance_interval_s;
        }
    }

    // Shutdown flushes each engine's recorder; `engines` is in shard-id
    // order, so the final drains are too.
    let shards = engines
        .iter_mut()
        .map(|e| {
            let report = e.finish_report();
            e.shutdown();
            report
        })
        .collect();
    FleetReport {
        shards,
        migrations,
        fused_refinements,
        fused_gpu_dispatch_s: fused_gpu,
        ingest: None,
    }
}

/// Fires every cross-shard fused refinement dispatch whose deadline is
/// due (and at or before `limit`, the next fleet coordination point): all
/// frames ready by the deadline — on any shard — ride one priced launch;
/// each shard then executes and books its own frames.
fn fire_fleet_refinements(
    cfg: &ServeConfig,
    engines: &mut [Engine],
    limit: f64,
    log: &mut Vec<FleetRefineRecord>,
    fused_gpu: &mut f64,
) {
    loop {
        let due = engines
            .iter()
            .map(|e| e.refine_deadline())
            .fold(f64::INFINITY, f64::min);
        if !due.is_finite() || due > limit + EPS {
            return;
        }
        // Only fire deadlines every engine has reached (in the lock-step
        // loop all clocks are equal, so this is simply "due now").
        if engines
            .iter()
            .any(|e| e.next_event_time().is_some_and(|t| t + EPS < due))
        {
            return;
        }
        let per_shard: Vec<_> = engines
            .iter_mut()
            .map(|e| e.take_ready_refinements(due))
            .collect();
        let mut streams = Vec::new();
        let mut shard_ids = Vec::new();
        let mut fused_macs = 0.0;
        for (k, items) in per_shard.iter().enumerate() {
            for p in items {
                streams.push(engines[k].global_stream_id(p.stream()));
                shard_ids.push(k);
                fused_macs += p.macs();
            }
        }
        debug_assert!(!streams.is_empty(), "deadline fired with nothing ready");
        let gpu = cfg.timing.launch_time(fused_macs) + cfg.timing.stage_overhead_s;
        *fused_gpu += gpu;
        log.push(FleetRefineRecord {
            t_s: due,
            streams,
            shards: shard_ids,
        });
        for (k, items) in per_shard.into_iter().enumerate() {
            if !items.is_empty() {
                engines[k].complete_external_refinement(due, gpu, items);
            }
        }
    }
}

/// Cross-tick rebalancer memory: the tick counter and, per fleet-wide
/// stream id, the tick of the stream's last migration. The per-stream
/// cooldown is what breaks the two-shard ping-pong: without it, a stream
/// whose queue sits near half the imbalance can be the best candidate in
/// *both* directions on alternating ticks under symmetric load, bouncing
/// forever while paying the migration cost twice per cycle.
#[derive(Debug, Default)]
struct RebalanceState {
    /// Rebalance ticks fired so far (the cooldown clock).
    tick: u64,
    /// Fleet-wide stream id → tick of its last migration.
    last_move: std::collections::BTreeMap<usize, u64>,
}

impl RebalanceState {
    /// Whether a stream may migrate at the current tick: more than
    /// `cooldown` ticks must have passed since it last moved.
    fn eligible(&self, global_id: usize, cooldown: u64) -> bool {
        match self.last_move.get(&global_id) {
            Some(&moved) => self.tick - moved > cooldown,
            None => true,
        }
    }
}

/// Picks the (hot, cool) shard pair for one rebalance tick, or `None`
/// when no pair is worth a migration.
///
/// The selection is explicitly deterministic: hot is the *lowest shard
/// id* among the maximum loads, cool the *lowest shard id* among the
/// minimum loads. An earlier version leaned on iterator scan order
/// and a `usize::MAX - k` key inversion to break ties, which was easy to
/// regress when the scan changed; the tie rule is now spelled out in one
/// place and pinned by unit tests. The pair is rejected unless the
/// load gap strictly exceeds `migration_cost` — a migration must buy
/// more balance than it costs. Loads are `f64` so the predicted signal
/// (fractional forecast frames) and the exact integer backlog signal
/// share one selection rule; integer inputs order exactly as they did
/// when this took `usize`.
fn pick_rebalance_pair_by(loads: &[f64], migration_cost: f64) -> Option<(usize, usize)> {
    let (mut hot, mut cool) = (0, 0);
    for k in 1..loads.len() {
        // Strict comparisons keep the earliest (lowest-id) extremum.
        if loads[k] > loads[hot] {
            hot = k;
        }
        if loads[k] < loads[cool] {
            cool = k;
        }
    }
    if loads.is_empty() || hot == cool || loads[hot] - loads[cool] <= migration_cost {
        return None;
    }
    Some((hot, cool))
}

/// The integer-backlog entry point to [`pick_rebalance_pair_by`]: the
/// pinned legacy tests drive it to prove the `f64` generalisation keeps
/// the reactive signal's exact historical semantics.
#[cfg(test)]
fn pick_rebalance_pair(loads: &[usize], migration_cost_frames: usize) -> Option<(usize, usize)> {
    let loads: Vec<f64> = loads.iter().map(|&q| q as f64).collect();
    pick_rebalance_pair_by(&loads, migration_cost_frames as f64)
}

/// One rebalance tick: if the hottest shard's load leads the coolest by
/// more than the migration cost, move the migratable stream whose load
/// best evens the pair out. One migration per tick keeps the control
/// loop gentle and every decision attributable.
///
/// The load is the configured [`RebalanceSignal`]: queued backlog
/// (reactive), or queued backlog plus forecast arrivals over the
/// forecast horizon (predictive) — with the predicted signal,
/// `migration_cost_frames` is priced against the *predicted* gain, and a
/// shard about to burst sheds a stream before its queues show damage.
///
/// Three guards make the controller thrash-free:
/// * only streams whose load is **strictly smaller than the imbalance**
///   are candidates — moving a larger one would just flip the imbalance
///   (and a stream that *is* the entire backlog gains nothing from a
///   move: its frames face one worker pool either way);
/// * among candidates, the load closest to half the imbalance wins (ties
///   to the lowest stream id), so the post-move imbalance is minimal and
///   the same stream can never satisfy the candidate rule again at the
///   next tick unless real load shifted;
/// * a stream that just moved is ineligible for
///   [`migration_cooldown_ticks`](crate::ShardConfig::migration_cooldown_ticks)
///   further ticks, so symmetric load can never bounce one stream
///   between two shards on alternating ticks.
fn rebalance(
    sc: &crate::ShardConfig,
    engines: &mut [Engine],
    t: f64,
    migrations: &mut Vec<MigrationEvent>,
    recorder: Option<&SharedRecorder>,
    state: &mut RebalanceState,
) {
    state.tick += 1;
    let predicted = sc.rebalance_signal == RebalanceSignal::Predicted;
    let loads: Vec<f64> = engines
        .iter()
        .map(|e| {
            if predicted {
                e.predicted_backlog(t)
            } else {
                e.backlog() as f64
            }
        })
        .collect();
    let Some((hot, cool)) = pick_rebalance_pair_by(&loads, sc.migration_cost_frames as f64) else {
        return;
    };
    let imbalance = loads[hot] - loads[cool];
    let cooldown = sc.migration_cooldown_ticks as u64;
    // Best-balancing migratable stream: load in (0, imbalance), residual
    // |imbalance − 2·load| minimal, ties to the lowest global id.
    let candidate = engines[hot]
        .migratable_streams()
        .map(|local| {
            let q = if predicted {
                engines[hot].predicted_stream_backlog(local, t)
            } else {
                engines[hot].stream_backlog(local) as f64
            };
            (q, local)
        })
        .filter(|&(q, local)| {
            q > 0.0
                && q < imbalance
                && state.eligible(engines[hot].global_stream_id(local), cooldown)
        })
        .min_by(|&(qa, la), &(qb, lb)| {
            (imbalance - 2.0 * qa)
                .abs()
                .total_cmp(&(imbalance - 2.0 * qb).abs())
                .then_with(|| {
                    engines[hot]
                        .global_stream_id(la)
                        .cmp(&engines[hot].global_stream_id(lb))
                })
        });
    let Some((_, local)) = candidate else {
        return; // nothing movable improves balance right now; next tick
    };
    let Some(m) = engines[hot].extract_stream(local) else {
        return;
    };
    state.last_move.insert(m.global_id(), state.tick);
    migrations.push(MigrationEvent {
        t_s: t,
        stream: m.global_id(),
        from_shard: hot,
        to_shard: cool,
        backlog_moved: m.queued(),
    });
    if let Some(r) = recorder {
        // Migrations are fleet-level decisions; they book under the shard
        // the stream left.
        r.record(
            t,
            hot,
            Event::Migration {
                stream: m.global_id(),
                from_shard: hot,
                to_shard: cool,
                backlog_moved: m.queued(),
            },
        );
    }
    engines[cool].admit_stream(m, t);
}

#[cfg(test)]
mod tests {
    use super::{pick_rebalance_pair, pick_rebalance_pair_by, RebalanceState};

    #[test]
    fn rebalance_pair_ties_break_to_lowest_shard_id() {
        // Tied hot shards: 1 and 2 share the maximum — 1 wins. Tied cool
        // shards: 0 and 3 share the minimum — 0 wins.
        assert_eq!(pick_rebalance_pair(&[0, 9, 9, 0], 0), Some((1, 0)));
        // The same loads permuted must move the *ids*, not the positions.
        assert_eq!(pick_rebalance_pair(&[9, 0, 0, 9], 0), Some((0, 1)));
        assert_eq!(pick_rebalance_pair(&[9, 9, 0, 0], 0), Some((0, 2)));
        // All-tied fleets never pick a pair, whatever the cost.
        assert_eq!(pick_rebalance_pair(&[5, 5, 5], 0), None);
    }

    #[test]
    fn rebalance_pair_respects_migration_cost() {
        // The gap must *strictly* exceed the cost to justify a move.
        assert_eq!(pick_rebalance_pair(&[8, 2], 6), None);
        assert_eq!(pick_rebalance_pair(&[8, 2], 5), Some((0, 1)));
    }

    #[test]
    fn rebalance_pair_handles_degenerate_fleets() {
        assert_eq!(pick_rebalance_pair(&[], 0), None);
        assert_eq!(pick_rebalance_pair(&[7], 0), None);
    }

    #[test]
    fn rebalance_pair_by_prices_fractional_predicted_loads() {
        // The predicted signal produces fractional loads: the gap must
        // still strictly exceed the cost.
        assert_eq!(pick_rebalance_pair_by(&[8.5, 2.0], 6.5), None);
        assert_eq!(pick_rebalance_pair_by(&[8.5, 2.0], 6.4), Some((0, 1)));
        // Tie rules match the integer path.
        assert_eq!(
            pick_rebalance_pair_by(&[0.5, 9.5, 9.5, 0.5], 0.0),
            Some((1, 0))
        );
    }

    #[test]
    fn cooldown_blocks_a_fresh_mover_until_the_ticks_pass() {
        let mut state = RebalanceState {
            tick: 5,
            ..Default::default()
        };
        state.last_move.insert(7, 5);
        // Cooldown 2: ineligible at ticks 6 and 7, eligible again at 8.
        for (tick, want) in [(6, false), (7, false), (8, true)] {
            state.tick = tick;
            assert_eq!(state.eligible(7, 2), want, "tick {tick}");
        }
        // A stream that never moved is always eligible.
        assert!(state.eligible(9, 2));
        // Cooldown 0 is the legacy rule: eligible on the very next tick.
        state.tick = 6;
        assert!(state.eligible(7, 0));
    }
}
