//! Arrival-rate forecasting: the predictive half of the control plane.
//!
//! CaTDet's core move is predict-then-refine — use cheap temporal history
//! (the tracker) to decide where expensive compute will pay off. This
//! module applies the same idea to the *workload*: each stream keeps a
//! cheap [`ArrivalHistory`] (O(1) per frame, a bucketed ring of arrival
//! counts on the virtual clock), and a [`RateForecaster`] turns that
//! history into a rate forecast that both control-plane consumers read —
//! the [`PredictiveScale`](crate::autoscale::PredictiveScale) autoscaler
//! (scale up *before* the queue shows damage) and the predicted-load
//! rebalancer (move streams on where load is going, not where it was).
//!
//! Two estimators run over the same history:
//!
//! * **Holt's linear smoothing** — an EWMA level plus an EWMA trend over
//!   per-bucket arrival rates, extrapolated over the configured horizon.
//!   This tracks ramps and steps within one bucket of lag.
//! * **A burst-phase detector** — the bursty/step generators produce an
//!   on/off regime; when the observed rates split into two clusters, the
//!   detector measures completed run lengths per phase and predicts the
//!   next phase *edge*. If the edge lands inside the horizon, the
//!   forecast is the other phase's rate — capacity arrives before the
//!   burst does.
//!
//! Every output is a pure function of (config, history, now): no
//! wall-clock, no ambient state. Histories live on the stream runtime and
//! migrate with it, so a forecast is bit-identical before and after an
//! `extract_stream`/`admit_stream` move and at every `--threads` setting
//! (property-tested). Only *complete* buckets feed the forecast — a
//! bucket still accumulating arrivals is never read — which makes the
//! forecast invariant under how arrivals interleave with control ticks
//! inside the current bucket.

use serde::{Deserialize, Serialize};

/// Forecaster configuration: history shape, smoothing factors, horizon.
///
/// All times are virtual seconds. The defaults pair one bucket with the
/// default autoscale control interval (0.25 s) and keep an 8-second
/// history window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastConfig {
    /// Width of one arrival-count bucket on the virtual clock.
    pub bucket_s: f64,
    /// Ring capacity: how many completed buckets of history each stream
    /// retains (and the forecaster may read).
    pub history_buckets: usize,
    /// EWMA smoothing factor for the rate level, in `(0, 1]`.
    pub alpha: f64,
    /// EWMA smoothing factor for the rate trend, in `(0, 1]`.
    pub beta: f64,
    /// How far ahead the forecast looks: the trend is extrapolated (and
    /// phase edges are considered imminent) over this many seconds.
    pub horizon_s: f64,
    /// Confidence floor in `[0, 1]`: consumers treat forecasts below it
    /// as unreliable (the predictive autoscaler falls back to hysteresis
    /// semantics).
    pub min_confidence: f64,
}

impl ForecastConfig {
    /// Defaults matched to the autoscaler: 0.25 s buckets, 32-bucket
    /// (8 s) history, a half-second horizon.
    pub fn new() -> Self {
        Self {
            bucket_s: 0.25,
            history_buckets: 32,
            alpha: 0.4,
            beta: 0.2,
            horizon_s: 0.5,
            min_confidence: 0.35,
        }
    }

    /// Returns a copy with a different bucket width.
    pub fn with_bucket_s(mut self, bucket_s: f64) -> Self {
        self.bucket_s = bucket_s;
        self
    }

    /// Returns a copy with a different history capacity.
    pub fn with_history_buckets(mut self, history_buckets: usize) -> Self {
        self.history_buckets = history_buckets;
        self
    }

    /// Returns a copy with different smoothing factors.
    pub fn with_smoothing(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Returns a copy with a different forecast horizon.
    pub fn with_horizon_s(mut self, horizon_s: f64) -> Self {
        self.horizon_s = horizon_s;
        self
    }

    /// Returns a copy with a different confidence floor.
    pub fn with_min_confidence(mut self, min_confidence: f64) -> Self {
        self.min_confidence = min_confidence;
        self
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(
            self.bucket_s > 0.0 && self.bucket_s.is_finite(),
            "forecast bucket must be finite and positive"
        );
        assert!(
            self.history_buckets >= 2,
            "forecast history needs at least two buckets"
        );
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0 && self.beta > 0.0 && self.beta <= 1.0,
            "forecast smoothing factors must be in (0, 1]"
        );
        assert!(
            self.horizon_s >= 0.0 && self.horizon_s.is_finite(),
            "forecast horizon must be finite and non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.min_confidence),
            "forecast confidence floor must be in [0, 1]"
        );
    }
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-stream arrival history: a ring of bucketed arrival counts on the
/// virtual clock.
///
/// Recording is O(1) per frame (bucket index arithmetic plus at most a
/// ring advance). The history is owned by the stream runtime and moves
/// with the stream on migration, so the forecaster sees one unbroken
/// history wherever the stream is served.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalHistory {
    bucket_s: f64,
    counts: Vec<u32>,
    /// Ring position of the newest stored bucket.
    head: usize,
    /// Absolute bucket index of the newest stored bucket.
    newest: i64,
    /// Stored buckets, `<= counts.len()`; `0` means nothing recorded yet.
    filled: usize,
}

impl ArrivalHistory {
    /// An empty history shaped by `cfg`.
    pub fn new(cfg: &ForecastConfig) -> Self {
        Self {
            bucket_s: cfg.bucket_s,
            counts: vec![0; cfg.history_buckets],
            head: 0,
            newest: 0,
            filled: 0,
        }
    }

    /// The bucket width this history was built with.
    pub fn bucket_s(&self) -> f64 {
        self.bucket_s
    }

    /// Whether any arrival has been recorded.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    fn bucket_index(&self, t_s: f64) -> i64 {
        (t_s / self.bucket_s).floor() as i64
    }

    /// Records one arrival at virtual time `t_s`. Arrivals are expected
    /// in non-decreasing time order (the scheduler guarantees it);
    /// an out-of-order arrival still lands in its own bucket if that
    /// bucket is retained, and is dropped from history otherwise.
    pub fn record(&mut self, t_s: f64) {
        let b = self.bucket_index(t_s);
        if self.filled == 0 {
            self.head = 0;
            self.counts[0] = 1;
            self.newest = b;
            self.filled = 1;
            return;
        }
        let len = self.counts.len();
        if b > self.newest {
            let advance = (b - self.newest) as usize;
            if advance >= len {
                self.counts.iter_mut().for_each(|c| *c = 0);
                self.head = 0;
                self.filled = len;
            } else {
                for _ in 0..advance {
                    self.head = (self.head + 1) % len;
                    self.counts[self.head] = 0;
                    self.filled = (self.filled + 1).min(len);
                }
            }
            self.newest = b;
            self.counts[self.head] += 1;
        } else {
            let offset = (self.newest - b) as usize;
            if offset < self.filled {
                let idx = (self.head + len - offset % len) % len;
                self.counts[idx] += 1;
            }
        }
    }

    /// Appends the per-bucket arrival rates (frames/s) of every
    /// *complete* bucket — strictly before the bucket containing
    /// `now_s` — oldest first, into `out`. Buckets newer than the last
    /// recorded arrival count as zero-rate (nothing arrived); buckets
    /// older than the retained window are unavailable and skipped. The
    /// result is a pure function of the recorded arrival times and
    /// `now_s`, independent of how arrivals were interleaved with reads.
    pub fn complete_rates(&self, now_s: f64, out: &mut Vec<f64>) {
        out.clear();
        if self.filled == 0 {
            return;
        }
        let len = self.counts.len();
        let cur = self.bucket_index(now_s);
        let oldest = self.newest - (self.filled as i64 - 1);
        let lo = oldest.max(cur - len as i64);
        let hi = cur - 1;
        for b in lo..=hi {
            let count = if b <= self.newest {
                let offset = (self.newest - b) as usize;
                self.counts[(self.head + len - offset) % len]
            } else {
                0
            };
            out.push(f64::from(count) / self.bucket_s);
        }
    }
}

/// Which arrival regime the forecaster believes the stream is in (and
/// will be in over the horizon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstPhase {
    /// No bimodal structure detected: rates look unimodal (steady, ramp,
    /// or not enough history to tell).
    Steady,
    /// Bimodal regime, low-rate phase expected over the horizon.
    Quiet,
    /// Bimodal regime, high-rate phase expected over the horizon.
    Burst,
}

impl BurstPhase {
    /// Short label used in timeline printouts.
    pub fn label(&self) -> &'static str {
        match self {
            BurstPhase::Steady => "steady",
            BurstPhase::Quiet => "quiet",
            BurstPhase::Burst => "burst",
        }
    }

    /// Stable integer code used in flight-recorder forecast events.
    pub fn code(&self) -> u64 {
        match self {
            BurstPhase::Steady => 0,
            BurstPhase::Quiet => 1,
            BurstPhase::Burst => 2,
        }
    }

    /// Parses a flight-recorder phase code.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(BurstPhase::Steady),
            1 => Some(BurstPhase::Quiet),
            2 => Some(BurstPhase::Burst),
            _ => None,
        }
    }
}

/// One forecast: the expected arrival rate over the horizon, with the
/// estimator internals exposed for telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Forecast {
    /// Expected arrival rate (frames/s) over the horizon. Always within
    /// the observed per-bucket rate range (never an extrapolation beyond
    /// what the stream has actually done).
    pub rate_fps: f64,
    /// Smoothed rate level (frames/s), clamped to the observed range.
    pub level_fps: f64,
    /// Smoothed rate trend (frames/s per second).
    pub trend_fps_per_s: f64,
    /// Forecaster confidence in `[0, 1]`: history coverage scaled by how
    /// well recent rates fit the model. Low during warmup.
    pub confidence: f64,
    /// The regime the forecast assumes over the horizon.
    pub phase: BurstPhase,
}

impl Forecast {
    /// The no-information forecast: zero rate, zero confidence.
    pub fn none() -> Self {
        Self {
            rate_fps: 0.0,
            level_fps: 0.0,
            trend_fps_per_s: 0.0,
            confidence: 0.0,
            phase: BurstPhase::Steady,
        }
    }
}

/// Turns an [`ArrivalHistory`] into a [`Forecast`] — a pure function of
/// (config, history, now).
#[derive(Debug, Clone, Copy)]
pub struct RateForecaster {
    cfg: ForecastConfig,
}

impl RateForecaster {
    /// Builds a forecaster from its configuration.
    pub fn new(cfg: ForecastConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this forecaster runs.
    pub fn config(&self) -> &ForecastConfig {
        &self.cfg
    }

    /// Forecasts the arrival rate over the configured horizon from the
    /// complete buckets of `history` at virtual time `now_s`.
    pub fn forecast(&self, history: &ArrivalHistory, now_s: f64) -> Forecast {
        let mut rates = Vec::new();
        history.complete_rates(now_s, &mut rates);
        self.forecast_rates(&rates, now_s)
    }

    /// The estimator body, over an explicit complete-bucket rate series
    /// (oldest first). Split out so tests can drive synthetic series.
    pub fn forecast_rates(&self, rates: &[f64], now_s: f64) -> Forecast {
        if rates.is_empty() {
            return Forecast::none();
        }
        let min_r = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max_r = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Holt's linear smoothing over the bucket rates.
        let mut level = rates[0];
        let mut trend = 0.0;
        let mut abs_err = 0.0;
        for &r in &rates[1..] {
            let pred = level + trend;
            abs_err += (r - pred).abs();
            let prev = level;
            level = self.cfg.alpha * r + (1.0 - self.cfg.alpha) * pred;
            trend = self.cfg.beta * (level - prev) + (1.0 - self.cfg.beta) * trend;
        }
        level = level.clamp(min_r, max_r);
        let coverage = rates.len() as f64 / self.cfg.history_buckets as f64;
        let mean_abs_err = if rates.len() > 1 {
            abs_err / (rates.len() - 1) as f64
        } else {
            0.0
        };

        // Burst-phase detection: when the rates split into two clusters,
        // measure completed run lengths and predict the next phase edge.
        if let Some(f) = self.forecast_phases(rates, now_s, min_r, max_r, level, trend, coverage) {
            return f;
        }

        // Unimodal: trend-extrapolate, clamped to the observed range.
        let rate = (level + trend * self.cfg.horizon_s).clamp(min_r, max_r);
        let fit = if max_r > 0.0 {
            (1.0 - mean_abs_err / max_r).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Forecast {
            rate_fps: rate,
            level_fps: level,
            trend_fps_per_s: trend,
            confidence: (coverage * fit).clamp(0.0, 1.0),
            phase: BurstPhase::Steady,
        }
    }

    /// The bimodal estimator: `None` when the rates do not show a usable
    /// two-phase structure.
    #[allow(clippy::too_many_arguments)]
    fn forecast_phases(
        &self,
        rates: &[f64],
        now_s: f64,
        min_r: f64,
        max_r: f64,
        level: f64,
        trend: f64,
        coverage: f64,
    ) -> Option<Forecast> {
        let spread = max_r - min_r;
        if rates.len() < 4 || max_r <= 0.0 || spread <= 0.5 * max_r {
            return None;
        }
        let mid = 0.5 * (min_r + max_r);
        // Split the series into runs of the same phase (high >= mid).
        let mut runs: Vec<(bool, usize)> = Vec::new();
        for &r in rates {
            let high = r >= mid;
            match runs.last_mut() {
                Some((phase, len)) if *phase == high => *len += 1,
                _ => runs.push((high, 1)),
            }
        }
        if runs.len() < 3 {
            // Fewer than two completed runs: a step, not a cycle — let
            // the trend estimator handle it.
            return None;
        }
        let (cur_phase, cur_len) = *runs.last().expect("non-empty runs");
        let completed = &runs[..runs.len() - 1];
        let mean_run = |phase: bool| {
            let (sum, n) = completed
                .iter()
                .filter(|(p, _)| *p == phase)
                .fold((0usize, 0usize), |(s, n), (_, l)| (s + l, n + 1));
            (n > 0).then(|| sum as f64 / n as f64)
        };
        let expected_run = mean_run(cur_phase)?;
        // Phase means, the forecast values for either side of the edge.
        let phase_mean = |phase: bool| {
            let picked: Vec<f64> = rates
                .iter()
                .copied()
                .filter(|&r| (r >= mid) == phase)
                .collect();
            picked.iter().sum::<f64>() / picked.len() as f64
        };
        // Time left in the current run: buckets the run is expected to
        // span minus the time already spent in it (completed buckets of
        // the run plus the fraction elapsed in the current bucket).
        let bucket_s = self.cfg.bucket_s;
        let run_start_s = (now_s / bucket_s).floor() * bucket_s - cur_len as f64 * bucket_s;
        let elapsed_s = now_s - run_start_s;
        let remaining_s = expected_run * bucket_s - elapsed_s;
        let edge_within_horizon = remaining_s <= self.cfg.horizon_s;
        let forecast_high = if edge_within_horizon {
            !cur_phase
        } else {
            cur_phase
        };
        let rate = phase_mean(forecast_high).clamp(min_r, max_r);
        Some(Forecast {
            rate_fps: rate,
            level_fps: level,
            trend_fps_per_s: trend,
            confidence: coverage.clamp(0.0, 1.0),
            phase: if forecast_high {
                BurstPhase::Burst
            } else {
                BurstPhase::Quiet
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ForecastConfig {
        ForecastConfig::new()
    }

    fn record_all(history: &mut ArrivalHistory, arrivals: &[f64]) {
        for &t in arrivals {
            history.record(t);
        }
    }

    #[test]
    fn empty_history_forecasts_nothing() {
        let history = ArrivalHistory::new(&cfg());
        let f = RateForecaster::new(cfg()).forecast(&history, 10.0);
        assert_eq!(f, Forecast::none());
        assert!(history.is_empty());
    }

    #[test]
    fn bucket_counts_follow_arrival_times() {
        let c = cfg().with_bucket_s(1.0).with_history_buckets(4);
        let mut h = ArrivalHistory::new(&c);
        record_all(&mut h, &[0.1, 0.2, 1.5, 3.9]);
        let mut rates = Vec::new();
        // At t=4.0 buckets 0..=3 are complete: counts 2, 1, 0, 1.
        h.complete_rates(4.0, &mut rates);
        assert_eq!(rates, vec![2.0, 1.0, 0.0, 1.0]);
        // The current bucket is never read: at t=3.5 bucket 3 is still
        // accumulating.
        h.complete_rates(3.5, &mut rates);
        assert_eq!(rates, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn ring_evicts_beyond_capacity() {
        let c = cfg().with_bucket_s(1.0).with_history_buckets(3);
        let mut h = ArrivalHistory::new(&c);
        record_all(&mut h, &[0.5, 1.5, 2.5, 3.5, 4.5]);
        let mut rates = Vec::new();
        h.complete_rates(5.0, &mut rates);
        // Only the last three buckets (2, 3, 4) are retained.
        assert_eq!(rates, vec![1.0, 1.0, 1.0]);
        // A jump far past the window clears it: the idle gap is known
        // zero-rate, and only the new bucket has arrivals.
        h.record(100.25);
        h.complete_rates(101.0, &mut rates);
        assert_eq!(rates, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn idle_gap_reads_as_zero_rate() {
        let c = cfg().with_bucket_s(1.0).with_history_buckets(8);
        let mut h = ArrivalHistory::new(&c);
        record_all(&mut h, &[0.5, 0.7]);
        let mut rates = Vec::new();
        // Nothing arrived in buckets 1..=3; they are known-zero.
        h.complete_rates(4.0, &mut rates);
        assert_eq!(rates, vec![2.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn steady_rate_converges_to_level() {
        let c = cfg().with_bucket_s(0.25).with_history_buckets(32);
        let mut h = ArrivalHistory::new(&c);
        let arrivals: Vec<f64> = (0..160).map(|i| i as f64 * 0.05).collect(); // 20 fps
        record_all(&mut h, &arrivals);
        let f = RateForecaster::new(c).forecast(&h, 8.0);
        assert!((f.rate_fps - 20.0).abs() < 1e-9, "rate {}", f.rate_fps);
        assert_eq!(f.phase, BurstPhase::Steady);
        assert!(f.confidence > 0.9, "confidence {}", f.confidence);
    }

    #[test]
    fn warmup_confidence_is_low() {
        let c = cfg().with_bucket_s(0.25).with_history_buckets(32);
        let mut h = ArrivalHistory::new(&c);
        record_all(&mut h, &[0.0, 0.05, 0.1, 0.15, 0.2]);
        let f = RateForecaster::new(c).forecast(&h, 0.3);
        assert!(f.confidence < 0.1, "confidence {}", f.confidence);
    }

    #[test]
    fn trend_tracks_a_ramp_within_observed_bounds() {
        let c = cfg().with_bucket_s(1.0).with_history_buckets(32);
        let fc = RateForecaster::new(c);
        // Rates ramping 1, 2, ..., 12: the trend is positive and the
        // forecast leans above the level but never past the observed max.
        let rates: Vec<f64> = (1..=12).map(f64::from).collect();
        let f = fc.forecast_rates(&rates, 12.0);
        assert!(f.trend_fps_per_s > 0.5, "trend {}", f.trend_fps_per_s);
        assert!(f.rate_fps >= f.level_fps);
        assert!(f.rate_fps <= 12.0);
    }

    #[test]
    fn burst_detector_predicts_the_next_edge() {
        let c = cfg().with_bucket_s(1.0).with_history_buckets(32);
        let fc = RateForecaster::new(c);
        // 3-quiet / 2-burst cycle, currently 3 buckets into a quiet run:
        // the edge is due within the next bucket.
        let rates = vec![
            1.0, 1.0, 1.0, 30.0, 30.0, //
            1.0, 1.0, 1.0, 30.0, 30.0, //
            1.0, 1.0, 1.0,
        ];
        let f = fc.forecast_rates(&rates, 13.0);
        assert_eq!(f.phase, BurstPhase::Burst, "edge imminent: {f:?}");
        assert!((f.rate_fps - 30.0).abs() < 1e-9, "rate {}", f.rate_fps);
        // One bucket into the quiet run the edge is far: forecast quiet.
        let early = vec![
            1.0, 1.0, 1.0, 30.0, 30.0, //
            1.0, 1.0, 1.0, 30.0, 30.0, //
            1.0,
        ];
        let f = fc.forecast_rates(&early, 11.0);
        assert_eq!(f.phase, BurstPhase::Quiet, "mid-run: {f:?}");
        assert!((f.rate_fps - 1.0).abs() < 1e-9, "rate {}", f.rate_fps);
    }

    #[test]
    fn forecast_is_a_pure_function_of_history() {
        let c = cfg();
        let mut a = ArrivalHistory::new(&c);
        let mut b = ArrivalHistory::new(&c);
        let arrivals: Vec<f64> = (0..100).map(|i| i as f64 * 0.033).collect();
        record_all(&mut a, &arrivals);
        record_all(&mut b, &arrivals);
        assert_eq!(a, b);
        let fc = RateForecaster::new(c);
        assert_eq!(fc.forecast(&a, 3.3), fc.forecast(&b, 3.3));
    }

    #[test]
    fn phase_codes_round_trip() {
        for p in [BurstPhase::Steady, BurstPhase::Quiet, BurstPhase::Burst] {
            assert_eq!(BurstPhase::from_code(p.code()), Some(p));
        }
        assert_eq!(BurstPhase::from_code(9), None);
    }

    #[test]
    #[should_panic(expected = "forecast bucket must be finite and positive")]
    fn zero_bucket_is_rejected() {
        ForecastConfig::new().with_bucket_s(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "at least two buckets")]
    fn one_bucket_history_is_rejected() {
        ForecastConfig::new().with_history_buckets(1).validate();
    }

    #[test]
    #[should_panic(expected = "confidence floor")]
    fn out_of_range_confidence_is_rejected() {
        ForecastConfig::new().with_min_confidence(1.5).validate();
    }
}
