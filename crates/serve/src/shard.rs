//! The partition layer of the sharded fleet: stream → shard placement
//! policies and the live-migration event record.
//!
//! CaTDet's heavy per-stream state (tracker, detector noise, frame
//! scratch) is fully owned by each stream's pipeline, so a **stream is the
//! unit of sharding**: any stream can live on any shard, and moving one
//! between shards at a stage-boundary suspend point moves all of its
//! state. A [`PartitionPolicy`] decides initial placement;
//! [`serve_fleet`](crate::serve_fleet)'s rebalancer may later override it
//! with live migrations, each stamped as a [`MigrationEvent`].

use crate::config::PartitionKind;
use serde::{Deserialize, Serialize};

/// Assigns streams to shards at fleet construction.
///
/// Policies are deterministic functions of the stream identity/size and
/// their own accumulated state (never of wall-clock or randomness), so a
/// fleet layout is reproducible run to run.
pub trait PartitionPolicy: Send {
    /// Stable policy name (reports, CLI).
    fn name(&self) -> &'static str;

    /// Chooses the shard (in `0..shards`) for a stream, given its
    /// fleet-wide id and total frame count.
    fn place(&mut self, stream_id: usize, frames: usize, shards: usize) -> usize;
}

/// SplitMix64 finalizer: the well-mixed stateless hash behind the hash
/// partitions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stateless `hash(stream_id) mod shards` placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticHash;

impl PartitionPolicy for StaticHash {
    fn name(&self) -> &'static str {
        "static-hash"
    }

    fn place(&mut self, stream_id: usize, _frames: usize, shards: usize) -> usize {
        (mix(stream_id as u64) % shards as u64) as usize
    }
}

/// Greedy least-loaded placement: each stream lands on the shard with the
/// fewest total frames assigned so far (ties break to the lowest shard
/// id). Balances heterogeneous stream lengths that a hash would spread
/// unevenly.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded {
    frames_per_shard: Vec<u64>,
}

impl PartitionPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&mut self, _stream_id: usize, frames: usize, shards: usize) -> usize {
        self.frames_per_shard
            .resize(shards.max(self.frames_per_shard.len()), 0);
        let shard = (0..shards)
            .min_by_key(|&k| (self.frames_per_shard[k], k))
            .expect("at least one shard");
        self.frames_per_shard[shard] += frames as u64;
        shard
    }
}

/// Points per shard on the consistent-hash ring. More virtual nodes give
/// a smoother split at the cost of a larger ring.
const VIRTUAL_NODES: usize = 64;

/// Consistent-hash ring with `VIRTUAL_NODES` points per shard: a stream
/// maps to the first ring point clockwise of its hash. Adding or removing
/// a shard relocates only ~1/N of the streams — the property that makes
/// this the policy of choice for a fleet whose shard count changes while
/// stream identities persist.
#[derive(Debug, Clone, Default)]
pub struct ConsistentHashRing {
    /// `(point, shard)` sorted by point; rebuilt when `shards` changes.
    ring: Vec<(u64, usize)>,
    shards: usize,
}

impl ConsistentHashRing {
    fn rebuild(&mut self, shards: usize) {
        self.shards = shards;
        self.ring.clear();
        for shard in 0..shards {
            for vnode in 0..VIRTUAL_NODES {
                self.ring
                    .push((mix((shard as u64) << 32 | vnode as u64), shard));
            }
        }
        self.ring.sort_unstable();
    }
}

impl PartitionPolicy for ConsistentHashRing {
    fn name(&self) -> &'static str {
        "consistent-hash"
    }

    fn place(&mut self, stream_id: usize, _frames: usize, shards: usize) -> usize {
        if self.shards != shards || self.ring.is_empty() {
            self.rebuild(shards);
        }
        // Salted differently from the vnode hashes so a stream id never
        // collides with a ring point by construction.
        let h = mix(mix(stream_id as u64) ^ 0xC0A5_1575_u64);
        let i = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[i % self.ring.len()].1
    }
}

/// Instantiates the configured partition policy.
pub fn build_partition(kind: PartitionKind) -> Box<dyn PartitionPolicy> {
    match kind {
        PartitionKind::StaticHash => Box::new(StaticHash),
        PartitionKind::LeastLoaded => Box::new(LeastLoaded::default()),
        PartitionKind::ConsistentHash => Box::new(ConsistentHashRing::default()),
    }
}

/// Which load signal the live rebalancer compares across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebalanceSignal {
    /// Queued backlog right now — the reactive signal (the default): a
    /// shard must already be behind before any stream moves.
    Backlog,
    /// Queued backlog plus each stream's forecast arrivals over the
    /// forecast horizon — the predictive signal: a shard whose streams
    /// are *about* to burst reads hot before its queues show it, and the
    /// migration cost is priced against the predicted (not merely
    /// current) gain.
    Predicted,
}

impl RebalanceSignal {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            RebalanceSignal::Backlog => "backlog",
            RebalanceSignal::Predicted => "predicted",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "backlog" => Some(RebalanceSignal::Backlog),
            "predicted" => Some(RebalanceSignal::Predicted),
            _ => None,
        }
    }
}

/// One live stream migration, stamped in fleet virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// Rebalance tick at which the stream moved.
    pub t_s: f64,
    /// Fleet-wide stream id.
    pub stream: usize,
    /// Shard the stream left.
    pub from_shard: usize,
    /// Shard the stream joined.
    pub to_shard: usize,
    /// Queued frames relocated with the stream.
    pub backlog_moved: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_hash_is_deterministic_and_in_range() {
        let mut p = StaticHash;
        for id in 0..100 {
            let a = p.place(id, 10, 7);
            assert!(a < 7);
            assert_eq!(a, StaticHash.place(id, 99, 7), "frames must not matter");
        }
        // Spread: 100 ids over 7 shards must touch every shard.
        let mut seen = [false; 7];
        for id in 0..100 {
            seen[p.place(id, 1, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn least_loaded_balances_heterogeneous_streams() {
        let mut p = LeastLoaded::default();
        // One long stream then many short ones: the long one must not
        // attract more work.
        let mut load = [0u64; 3];
        load[p.place(0, 1000, 3)] += 1000;
        for id in 1..13 {
            load[p.place(id, 100, 3)] += 100;
        }
        let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(
            max - min <= 500,
            "least-loaded left the fleet skewed: {load:?}"
        );
    }

    #[test]
    fn consistent_hash_moves_few_streams_when_a_shard_is_added() {
        let mut before = ConsistentHashRing::default();
        let mut after = ConsistentHashRing::default();
        let ids: Vec<usize> = (0..400).collect();
        let moved = ids
            .iter()
            .filter(|&&id| before.place(id, 1, 8) != after.place(id, 1, 9))
            .count();
        // Ideal is 1/9 ≈ 44; allow generous slack but far below the ~355
        // a modulo hash would relocate.
        assert!(
            moved < 150,
            "consistent hashing relocated {moved}/400 streams"
        );
        // And placements are deterministic.
        let mut again = ConsistentHashRing::default();
        for &id in &ids {
            assert_eq!(before.place(id, 1, 8), again.place(id, 1, 8));
        }
    }

    #[test]
    fn build_partition_selects_the_kind() {
        assert_eq!(
            build_partition(PartitionKind::StaticHash).name(),
            "static-hash"
        );
        assert_eq!(
            build_partition(PartitionKind::LeastLoaded).name(),
            "least-loaded"
        );
        assert_eq!(
            build_partition(PartitionKind::ConsistentHash).name(),
            "consistent-hash"
        );
    }

    #[test]
    fn partition_names_round_trip() {
        for k in [
            PartitionKind::StaticHash,
            PartitionKind::LeastLoaded,
            PartitionKind::ConsistentHash,
        ] {
            assert_eq!(PartitionKind::from_name(k.name()), Some(k));
        }
        assert_eq!(PartitionKind::from_name("nope"), None);
    }

    #[test]
    fn rebalance_signal_names_round_trip() {
        for s in [RebalanceSignal::Backlog, RebalanceSignal::Predicted] {
            assert_eq!(RebalanceSignal::from_name(s.name()), Some(s));
        }
        assert_eq!(RebalanceSignal::from_name("nope"), None);
    }
}
