//! # catdet-serve — multi-stream serving for CaTDet pipelines
//!
//! The paper's systems (see `catdet-core`) process one video, one frame at
//! a time. This crate is the serving layer above them: it runs **N
//! independent camera streams concurrently**, each with its own
//! [`DetectionSystem`](catdet_core::DetectionSystem) instance stamped out
//! by a [`SystemFactory`], fed by a frame
//! scheduler over a worker-thread pool.
//!
//! Key mechanisms:
//!
//! * **Scheduling** — [`SchedulePolicy::RoundRobin`] shares workers evenly
//!   across cameras; [`SchedulePolicy::LeastBacklog`] serves the freshest
//!   cameras first and concentrates overload where it originates.
//! * **Cross-stream micro-batching** — proposal-network invocations from
//!   different streams are fused into one modelled GPU dispatch within a
//!   configurable [`batch window`](ServeConfig::batch_window_s),
//!   amortising the per-launch overhead of the `core::timing` model.
//! * **Staged execution & refinement fusion** — pipelines advance through
//!   the resumable [`StagedDetector`](catdet_core::StagedDetector)
//!   protocol, so the scheduler can suspend a frame at its refinement
//!   boundary; with [`fuse_refinement`](ServeConfig::fuse_refinement) on,
//!   suspended frames' priced
//!   [`RefinementWork`](catdet_core::RefinementWork) items are flushed
//!   (after at most
//!   [`refine_batch_window_s`](ServeConfig::refine_batch_window_s)) as
//!   one shared GPU dispatch spanning batches and workers.
//! * **Backpressure** — every stream has a bounded queue with an explicit
//!   [`DropPolicy`]; shed frames are counted exactly, never silently lost.
//! * **Admission control** — arrivals pass an [`AdmissionPolicy`] before
//!   entering their queue: per-stream token-bucket rate limiting, or
//!   priority classes shed lowest-first under fleet-wide overload.
//! * **Autoscaling** — a [`ScalePolicy`] control loop (hysteresis on
//!   drop-rate + window p99, or step-load-aware proportional tracking)
//!   grows and shrinks the active worker set at a configurable control
//!   interval, on the virtual clock.
//! * **Predictive control plane** — every stream carries an
//!   [`ArrivalHistory`] ring that a shared [`RateForecaster`] (EWMA
//!   level + trend with a burst-phase detector) turns into per-stream
//!   arrival forecasts; [`PredictiveScale`] scales up *ahead* of a
//!   forecast breach, and the fleet rebalancer can weigh shards by
//!   predicted (not merely current) load.
//! * **Reporting** — [`ServeReport`] carries aggregate throughput
//!   (frames/s of virtual time), per-stream latency percentiles
//!   (p50/p95/p99) with their raw samples, ops totals, drop/reject
//!   counts, worker-seconds, and the exact
//!   [`ScaleEvent`]/[`AdmissionEvent`] timelines.
//! * **Sharding** — [`serve_fleet`] partitions streams across N
//!   independent scheduler shards (a [`PartitionPolicy`]: static hash,
//!   least-loaded, consistent-hash ring), live-rebalances them between
//!   shards at stage-boundary suspend points with exact frame
//!   conservation, pools refinement work fleet-wide, and merges shard
//!   reports into a [`FleetReport`] whose percentiles are recomputed
//!   from pooled raw samples. A 1-shard fleet is bit-identical to
//!   [`serve`].
//! * **Flight recorder** — [`serve_with_recorder`] /
//!   [`serve_fleet_with_recorder`] book every detection, track, batch,
//!   scale, admission and migration event into a chunked columnar store
//!   ([`SharedRecorder`]) with bounded retention. Recording never perturbs
//!   scheduling (a recorded run's report is bit-identical to an unrecorded
//!   one's), recorded latencies answer telemetry [`Query`]s with exactly
//!   the report's percentiles, and periodic [`StreamSnapshot`]s let
//!   [`replay_stream`] re-drive any stream bit-exactly from mid-run.
//! * **Network front door** — [`serve_net_fleet`] ingests every camera
//!   over a simulated CamLink connection (`catdet-net`): a virtual-time
//!   reactor drives length-prefixed, checksummed frame records through
//!   per-connection jitter, partial writes, reordering and
//!   disconnect/resume, onto a bounded receive window (backpressure
//!   pushes back to the socket) and a per-client token-bucket door.
//!   Connection events land in the flight recorder as
//!   [`Event::Conn`], and the whole ingest
//!   timeline is a pure function of the workload seed.
//!
//! Scheduling runs in deterministic virtual time while detector compute
//! runs for real on the pool, so results are reproducible bit-for-bit at
//! any worker count — see the `scheduler` module docs for the execution
//! model, and the integration tests for the state-isolation guarantee.
//!
//! # Example
//!
//! ```
//! use catdet_serve::{mixed_workload, serve, ServeConfig, SystemKind};
//!
//! // 4 cameras (KITTI-like and CityPersons-like interleaved), CaTDet-A
//! // pipelines, 2 workers, micro-batches of up to 4.
//! let streams = mixed_workload(4, 10, 42, SystemKind::CatdetA);
//! let report = serve(streams, &ServeConfig::new().with_workers(2));
//! assert_eq!(report.frames_processed, 40);
//! assert!(report.throughput_fps > 0.0);
//! println!("{}", report.summary());
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod autoscale;
pub mod config;
pub mod fleet;
pub mod forecast;
pub mod ingest;
pub mod replay;
pub mod report;
pub mod scheduler;
pub mod shard;
pub mod workload;

pub use admission::{
    AdmissionContext, AdmissionEvent, AdmissionPolicy, AdmissionReason, AdmitAll, DowngradeEvent,
    PriorityShed, TokenBucket,
};
pub use autoscale::{
    ControlSample, FixedScale, HysteresisScale, PredictiveScale, ProportionalScale, ScaleEvent,
    ScalePolicy, ScaleReason,
};
pub use config::{
    AdmissionConfig, AdmissionKind, AutoscaleConfig, DropPolicy, IngestConfig, IngestKind,
    PartitionKind, RecorderConfig, ScalePolicyKind, SchedulePolicy, ServeConfig, ShardConfig,
};
pub use fleet::{serve_fleet, serve_fleet_with_recorder, FleetRefineRecord, FleetReport};
pub use forecast::{ArrivalHistory, BurstPhase, Forecast, ForecastConfig, RateForecaster};
pub use ingest::{serve_net_fleet, serve_net_fleet_with_recorder};
pub use replay::{replay_stream, ReplayError, ReplayReport, ReplayedFrame, StreamSnapshot};
pub use report::{
    merge_timelines, BatchRecord, BatchStage, BatchStats, LatencyStats, ServeReport, StreamReport,
    TimestampedEvent,
};
pub use scheduler::{serve, serve_with_recorder, StreamSpec};
pub use shard::{
    build_partition, ConsistentHashRing, LeastLoaded, MigrationEvent, PartitionPolicy,
    RebalanceSignal, StaticHash,
};
pub use workload::{
    bursty_workload, kitti_workload, mixed_workload, ramp_workload, sine_workload, step_workload,
    BurstProfile,
};

// Re-export the pieces callers almost always need alongside.
pub use catdet_core::{
    PolicedPipeline, PolicyConfig, PolicyDecision, PolicyKind, PresetFactory, SystemFactory,
    SystemKind,
};
pub use catdet_data::{StreamFrame, StreamSource};
pub use catdet_net::{ClientReport, ConnEvent, ConnEventKind, IngestReport, NetParams};
pub use catdet_recorder::{
    Event, EventKind, FlightRecorder, LatencySummary, NullRecorder, Query, RecordedEvent,
    SharedRecorder, StoreStats,
};
