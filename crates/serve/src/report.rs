//! Serving reports: per-stream latency percentiles, aggregate throughput,
//! and the control-plane timelines (scale and admission events).

use crate::admission::{AdmissionEvent, DowngradeEvent};
use crate::autoscale::ScaleEvent;
use catdet_core::OpsBreakdown;
use catdet_metrics::Detection;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Latency distribution of one stream, in modelled (virtual) seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Worst observed.
    pub max_s: f64,
}

impl LatencyStats {
    /// Nearest-rank percentiles pooled over several sample sets — the
    /// only correct way to aggregate latency distributions across streams
    /// or shards. Percentiles are **not** mergeable from percentiles:
    /// averaging two p99s can sit arbitrarily far from the pooled p99
    /// (consider one idle stream at 1 ms and one overloaded at 1 s), which
    /// is why [`StreamReport`] exposes its raw
    /// [`latency_samples`](StreamReport::latency_samples) and the fleet
    /// report merges through this function; a property test pins it to the
    /// naive concatenate-then-rank reference.
    ///
    /// Returns `None` when the pooled set is empty (e.g. every shard
    /// served zero frames) — like the per-stream stats, an absent
    /// distribution is not a 0-valued one.
    pub fn merged<'a>(sample_sets: impl IntoIterator<Item = &'a [f64]>) -> Option<Self> {
        let pooled: Vec<f64> = sample_sets
            .into_iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        Self::from_samples(&pooled)
    }

    /// Nearest-rank percentiles over a sample set, or `None` when it is
    /// empty. The rank math (`ceil(p·n)` clamped to `1..=n`) assumes a
    /// non-empty set; folding emptiness into all-zero stats used to let
    /// a zero-throughput stream masquerade as a zero-latency one.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pick = |p: f64| {
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(Self {
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: pick(0.50),
            p95_s: pick(0.95),
            p99_s: pick(0.99),
            max_s: *sorted.last().expect("non-empty"),
        })
    }
}

/// Micro-batching statistics of one run, split by pipeline stage:
/// proposal batches are formed by workers from queued frames, refinement
/// dispatches are the per-region (or full-frame) launches that resume
/// frames suspended at the refinement boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BatchStats {
    /// Dispatched proposal batches.
    pub batches: usize,
    /// Frames carried by those batches.
    pub batched_frames: usize,
    /// Largest proposal batch observed.
    pub max_batch_seen: usize,
    /// Proposal-network launches avoided by fusion: `Σ (batch_size − 1)`.
    pub proposal_launches_saved: usize,
    /// Priced refinement dispatches (singletons when
    /// [`fuse_refinement`](crate::ServeConfig::fuse_refinement) is off;
    /// shared cross-stream launches when it is on). Frames with no
    /// refinement work dispatch nothing and are not counted.
    pub refine_batches: usize,
    /// Frames whose refinement launch rode those dispatches.
    pub refined_frames: usize,
    /// Largest refinement dispatch observed.
    pub max_refine_batch_seen: usize,
    /// Refinement launches avoided by fusion: `Σ (dispatch_size − 1)`.
    pub refinement_launches_saved: usize,
}

impl BatchStats {
    /// Mean frames per proposal batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_frames as f64 / self.batches as f64
        }
    }

    /// Mean frames per refinement dispatch.
    pub fn mean_refine_batch(&self) -> f64 {
        if self.refine_batches == 0 {
            0.0
        } else {
            self.refined_frames as f64 / self.refine_batches as f64
        }
    }
}

/// Which pipeline stage a dispatched batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchStage {
    /// A worker-formed micro-batch whose proposal launches were fused.
    Proposal,
    /// A priced refinement dispatch resuming frames suspended at the
    /// refinement boundary (cross-worker when refinement fusion is on).
    Refinement,
}

/// One dispatched batch: which streams shared a launch, when, at which
/// stage, on which worker. The full log makes batching invariants (one
/// frame per stream per batch, proposal sizes within `max_batch`)
/// directly assertable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Virtual dispatch time.
    pub t_s: f64,
    /// Worker slot that ran the batch. A fused refinement dispatch can
    /// span batches held open by several workers; its record names the
    /// slot whose frame opened the dispatch.
    pub worker: usize,
    /// Pipeline stage the dispatch belongs to.
    pub stage: BatchStage,
    /// Contributing streams (fleet-wide ids, matching
    /// [`StreamReport::stream_id`]), in schedule order.
    pub streams: Vec<usize>,
}

/// Everything measured for one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Stream identity.
    pub stream_id: usize,
    /// Name of the detection system serving the stream.
    pub system_name: String,
    /// Frames that arrived from the camera.
    pub arrived: usize,
    /// Frames processed to completion.
    pub processed: usize,
    /// Frames shed before completion — queue backpressure plus admission
    /// rejections (`arrived == processed + dropped` always holds).
    pub dropped: usize,
    /// Of the dropped frames, how many were refused by admission control
    /// (always `<= dropped`).
    pub rejected: usize,
    /// Of the processed frames, how many the frame policy served by
    /// coasting the tracker instead of detecting (always `<= processed`).
    pub coasted: usize,
    /// Of the processed frames, how many the frame policy skipped by
    /// stride, completing with an empty output (always `<= processed`).
    pub skipped: usize,
    /// Mean per-frame ops actually spent. All-zero when `processed == 0`
    /// (a stream can legitimately complete nothing under overload) — gate
    /// on `processed` before reading this as a measurement.
    pub mean_ops: OpsBreakdown,
    /// Latency distribution (completion − arrival, virtual seconds), or
    /// `None` when the stream completed no frame (overload can
    /// legitimately shed everything; an absent distribution must not read
    /// as a measured zero latency).
    pub latency: Option<LatencyStats>,
    /// The raw latency samples behind [`latency`](StreamReport::latency),
    /// in completion order. Kept so higher-level aggregations (the sharded
    /// fleet's merged report) can compute pooled nearest-rank percentiles
    /// instead of incorrectly averaging precomputed ones — see
    /// [`LatencyStats::merged`].
    pub latency_samples: Vec<f64>,
    /// Per-frame detections `(frame_index, detections)` in processing
    /// order — the stream's system output, used for evaluation and for
    /// state-isolation checks.
    pub outputs: Vec<(usize, Vec<Detection>)>,
}

/// Aggregate result of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Virtual time from start until the last frame completed.
    pub makespan_s: f64,
    /// Total frames that arrived across streams.
    pub frames_arrived: usize,
    /// Total frames processed.
    pub frames_processed: usize,
    /// Total frames shed (backpressure + admission).
    pub frames_dropped: usize,
    /// Of the dropped frames, total refused by admission control.
    pub frames_rejected: usize,
    /// Of the processed frames, total served by coasting the tracker
    /// (track-only frames under a non-default frame policy).
    pub frames_coasted: usize,
    /// Of the processed frames, total skipped by policy stride.
    pub frames_skipped: usize,
    /// Aggregate modelled throughput: processed frames / makespan.
    pub throughput_fps: f64,
    /// Integral of the provisioned worker count over virtual time (the
    /// active set plus deactivated slots still draining a batch), in
    /// worker-seconds. Lets autoscaled and fixed runs be compared at
    /// equal spend — drain time after a scale-down is still paid for.
    pub worker_seconds: f64,
    /// Summed virtual time of every priced GPU dispatch (launch time
    /// `αW + b` plus the per-stage framework overhead), proposal and
    /// refinement alike. Fusing launches shrinks exactly this figure: a
    /// dispatch of `k` launches pays `b` + stage overhead once instead of
    /// `k` times.
    pub gpu_dispatch_s: f64,
    /// Summed ops across all processed frames.
    pub total_ops: OpsBreakdown,
    /// Micro-batching statistics.
    pub batch: BatchStats,
    /// Every dispatched micro-batch, in dispatch order.
    pub batch_log: Vec<BatchRecord>,
    /// Worker-count changes decided by the autoscaler, in time order
    /// (empty when autoscaling is off).
    pub scale_events: Vec<ScaleEvent>,
    /// Admission rejections, in time order (empty under admit-all).
    pub admission_events: Vec<AdmissionEvent>,
    /// Downgrade-before-drop transitions, in time order (empty unless
    /// [`AdmissionConfig::downgrade`](crate::AdmissionConfig::downgrade)
    /// is on).
    pub downgrade_events: Vec<DowngradeEvent>,
    /// Per-stream breakdowns, ordered by stream id.
    pub streams: Vec<StreamReport>,
}

impl ServeReport {
    /// Drop rate over arrived frames.
    pub fn drop_rate(&self) -> f64 {
        if self.frames_arrived == 0 {
            0.0
        } else {
            self.frames_dropped as f64 / self.frames_arrived as f64
        }
    }

    /// Worst per-stream p99 latency, or `None` when no stream completed a
    /// single frame. (Streams without completions carry no
    /// [`StreamReport::latency`] at all, so a negative-clock bug can no
    /// longer hide behind a `0.0` fold seed.)
    pub fn worst_p99_s(&self) -> Option<f64> {
        self.streams
            .iter()
            .filter_map(|s| s.latency.map(|l| l.p99_s))
            .reduce(f64::max)
    }

    /// Mean provisioned workers over the run (worker-seconds / makespan).
    pub fn mean_workers(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.worker_seconds / self.makespan_s
        } else {
            0.0
        }
    }

    /// Total frames the policy served with a full detection pass.
    pub fn frames_detected(&self) -> usize {
        self.frames_processed - self.frames_coasted - self.frames_skipped
    }

    /// Human-readable downgrade timeline, one line per transition (empty
    /// string when downgrade-before-drop never engaged).
    pub fn downgrade_timeline(&self) -> String {
        let mut out = String::new();
        for e in &self.downgrade_events {
            let _ = writeln!(
                out,
                "  t={:>8.3}s  stream {:>3} {}",
                e.t_s,
                e.stream,
                if e.on { "downgraded" } else { "restored" },
            );
        }
        out
    }

    /// Human-readable scale-event timeline, one line per event (empty
    /// string when autoscaling never acted).
    pub fn scale_timeline(&self) -> String {
        let mut out = String::new();
        for e in &self.scale_events {
            let _ = writeln!(
                out,
                "  t={:>8.3}s  {:>2} -> {:<2} ({})",
                e.t_s,
                e.from_workers,
                e.to_workers,
                e.reason.label()
            );
        }
        out
    }

    /// Human-readable multi-line summary (what the `catdet-serve` binary
    /// prints).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve: {} streams | {:.1} virtual s | {} processed / {} arrived ({} dropped, {:.1}%)",
            self.streams.len(),
            self.makespan_s,
            self.frames_processed,
            self.frames_arrived,
            self.frames_dropped,
            100.0 * self.drop_rate(),
        );
        let _ = writeln!(
            out,
            "throughput: {:.2} frames/s | mean ops/frame: {:.1} G | batches: {} (mean {:.2}, max {}, {} launches saved)",
            self.throughput_fps,
            self.total_ops.total() / self.frames_processed.max(1) as f64 / 1e9,
            self.batch.batches,
            self.batch.mean_batch(),
            self.batch.max_batch_seen,
            self.batch.proposal_launches_saved,
        );
        let _ = writeln!(
            out,
            "refinement: {} dispatches (mean {:.2}, max {}, {} launches saved) | gpu dispatch time: {:.3} s",
            self.batch.refine_batches,
            self.batch.mean_refine_batch(),
            self.batch.max_refine_batch_seen,
            self.batch.refinement_launches_saved,
            self.gpu_dispatch_s,
        );
        if !self.scale_events.is_empty() {
            let _ = writeln!(
                out,
                "autoscale: {} scale events | mean {:.2} workers | {:.1} worker-seconds",
                self.scale_events.len(),
                self.mean_workers(),
                self.worker_seconds,
            );
        }
        if self.frames_coasted + self.frames_skipped > 0 {
            let _ = writeln!(
                out,
                "policy: {} detected | {} coasted | {} stride-skipped",
                self.frames_detected(),
                self.frames_coasted,
                self.frames_skipped,
            );
        }
        if self.frames_rejected > 0 {
            let _ = writeln!(
                out,
                "admission: {} frames rejected ({} events recorded)",
                self.frames_rejected,
                self.admission_events.len(),
            );
        }
        if !self.downgrade_events.is_empty() {
            let _ = writeln!(
                out,
                "downgrade: {} transitions (downgrade-before-drop)",
                self.downgrade_events.len(),
            );
        }
        let _ = writeln!(
            out,
            "{:>6} {:>28} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "stream", "system", "proc", "drop", "p50 ms", "p95 ms", "p99 ms", "ops G"
        );
        for s in &self.streams {
            // Streams that completed nothing print 0.0 columns; the
            // structured report keeps them distinguishable (`latency` is
            // `None`, not zero-valued stats).
            let (p50, p95, p99) = s
                .latency
                .map_or((0.0, 0.0, 0.0), |l| (l.p50_s, l.p95_s, l.p99_s));
            let _ = writeln!(
                out,
                "{:>6} {:>28} {:>8} {:>8} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                s.stream_id,
                truncate(&s.system_name, 28),
                s.processed,
                s.dropped,
                p50 * 1e3,
                p95 * 1e3,
                p99 * 1e3,
                s.mean_ops.total() / 1e9,
            );
        }
        out
    }
}

/// Anything stamped with a virtual-time instant: the shared shape of the
/// control-plane and dispatch histories ([`ScaleEvent`], [`AdmissionEvent`],
/// [`BatchRecord`], [`MigrationEvent`](crate::MigrationEvent)). One generic
/// k-way merge ([`merge_timelines`]) interleaves per-shard timelines of any
/// such type, replacing a hand-rolled merge loop per event kind.
pub trait TimestampedEvent {
    /// The event's virtual-time stamp.
    fn t_s(&self) -> f64;
}

impl TimestampedEvent for ScaleEvent {
    fn t_s(&self) -> f64 {
        self.t_s
    }
}

impl TimestampedEvent for AdmissionEvent {
    fn t_s(&self) -> f64 {
        self.t_s
    }
}

impl TimestampedEvent for DowngradeEvent {
    fn t_s(&self) -> f64 {
        self.t_s
    }
}

impl TimestampedEvent for BatchRecord {
    fn t_s(&self) -> f64 {
        self.t_s
    }
}

impl TimestampedEvent for crate::shard::MigrationEvent {
    fn t_s(&self) -> f64 {
        self.t_s
    }
}

/// K-way merges per-shard event timelines — each lane already in time
/// order — into one `(shard, event)` timeline ordered by time, with ties
/// keeping shard order (and within a shard, lane order). This is the
/// single merge behind every [`FleetReport`](crate::FleetReport) timeline
/// accessor.
pub fn merge_timelines<E: TimestampedEvent + Clone>(lanes: &[&[E]]) -> Vec<(usize, E)> {
    let mut cursors = vec![0usize; lanes.len()];
    let total = lanes.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<(f64, usize)> = None;
        for (k, lane) in lanes.iter().enumerate() {
            let Some(e) = lane.get(cursors[k]) else {
                continue;
            };
            let t = e.t_s();
            // Strict less keeps the lowest shard on time ties.
            if best.is_none_or(|(bt, _)| t.total_cmp(&bt).is_lt()) {
                best = Some((t, k));
            }
        }
        let (_, k) = best.expect("events remain");
        out.push((k, lanes[k][cursors[k]].clone()));
        cursors[k] += 1;
    }
    out
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let tail: String = s
            .chars()
            .rev()
            .take(width.saturating_sub(1))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        format!("…{tail}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let l = LatencyStats::from_samples(&samples).expect("non-empty");
        assert_eq!(l.p50_s, 50.0);
        assert_eq!(l.p95_s, 95.0);
        assert_eq!(l.p99_s, 99.0);
        assert_eq!(l.max_s, 100.0);
        assert!((l.mean_s - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let l = LatencyStats::from_samples(&[0.25]).expect("non-empty");
        assert_eq!(l.p50_s, 0.25);
        assert_eq!(l.p99_s, 0.25);
        assert_eq!(l.max_s, 0.25);
    }

    #[test]
    fn empty_samples_are_absent_not_zero() {
        assert_eq!(LatencyStats::from_samples(&[]), None);
        assert_eq!(LatencyStats::merged([]), None);
        assert_eq!(LatencyStats::merged([[].as_slice(), &[]]), None);
        // One empty lane must not perturb the pooled distribution.
        let merged = LatencyStats::merged([[].as_slice(), &[0.5]]).expect("one sample");
        assert_eq!(merged.p99_s, 0.5);
    }

    #[test]
    fn batch_stats_mean() {
        let b = BatchStats {
            batches: 4,
            batched_frames: 10,
            max_batch_seen: 4,
            proposal_launches_saved: 6,
            ..Default::default()
        };
        assert!((b.mean_batch() - 2.5).abs() < 1e-12);
        assert_eq!(BatchStats::default().mean_batch(), 0.0);
    }

    #[test]
    fn refine_batch_stats_mean() {
        let b = BatchStats {
            refine_batches: 3,
            refined_frames: 9,
            max_refine_batch_seen: 5,
            refinement_launches_saved: 6,
            ..Default::default()
        };
        assert!((b.mean_refine_batch() - 3.0).abs() < 1e-12);
        assert_eq!(BatchStats::default().mean_refine_batch(), 0.0);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let report = ServeReport {
            makespan_s: 2.0,
            frames_arrived: 10,
            frames_processed: 8,
            frames_dropped: 2,
            frames_rejected: 1,
            frames_coasted: 3,
            frames_skipped: 1,
            throughput_fps: 4.0,
            worker_seconds: 8.0,
            gpu_dispatch_s: 1.25,
            total_ops: OpsBreakdown::default(),
            batch: BatchStats {
                refine_batches: 2,
                refined_frames: 6,
                max_refine_batch_seen: 4,
                refinement_launches_saved: 4,
                ..Default::default()
            },
            batch_log: vec![BatchRecord {
                t_s: 0.25,
                worker: 1,
                stage: BatchStage::Refinement,
                streams: vec![0, 2],
            }],
            scale_events: vec![ScaleEvent {
                t_s: 0.5,
                from_workers: 4,
                to_workers: 6,
                reason: crate::autoscale::ScaleReason::DropRate,
            }],
            admission_events: vec![],
            downgrade_events: vec![DowngradeEvent {
                t_s: 0.75,
                stream: 0,
                on: true,
            }],
            streams: vec![StreamReport {
                stream_id: 0,
                system_name: "test-system".into(),
                arrived: 10,
                processed: 8,
                dropped: 2,
                rejected: 1,
                coasted: 3,
                skipped: 1,
                mean_ops: OpsBreakdown::default(),
                latency: LatencyStats::from_samples(&[0.1, 0.2]),
                latency_samples: vec![0.1, 0.2],
                outputs: vec![],
            }],
        };
        let s = report.summary();
        assert!(s.contains("8 processed / 10 arrived"));
        assert!(s.contains("test-system"));
        assert!(s.contains("autoscale: 1 scale events"));
        assert!(s.contains("admission: 1 frames rejected"));
        assert!(s.contains("policy: 4 detected | 3 coasted | 1 stride-skipped"));
        assert!(s.contains("downgrade: 1 transitions"));
        assert_eq!(report.frames_detected(), 4);
        let dg = report.downgrade_timeline();
        assert!(dg.contains("stream   0 downgraded"));
        assert!(s.contains("refinement: 2 dispatches (mean 3.00, max 4, 4 launches saved)"));
        assert!(s.contains("gpu dispatch time: 1.250 s"));
        assert!((report.batch.mean_refine_batch() - 3.0).abs() < 1e-12);
        assert!((report.drop_rate() - 0.2).abs() < 1e-12);
        assert!((report.mean_workers() - 4.0).abs() < 1e-12);
        let timeline = report.scale_timeline();
        assert!(timeline.contains("4 -> 6"));
        assert!(timeline.contains("(drop-rate)"));
    }

    #[test]
    fn merge_timelines_interleaves_sorted_lanes() {
        use crate::admission::AdmissionReason;
        let ev = |t| AdmissionEvent {
            t_s: t,
            stream: 0,
            reason: AdmissionReason::Shed,
        };
        let a = [ev(0.1), ev(0.3), ev(0.3)];
        let b = [ev(0.2), ev(0.3)];
        let merged = merge_timelines(&[a.as_slice(), b.as_slice()]);
        let shards: Vec<usize> = merged.iter().map(|(k, _)| *k).collect();
        // Ties at t=0.3 keep shard order (both of shard 0's before shard 1's).
        assert_eq!(shards, vec![0, 1, 0, 0, 1]);
        let times: Vec<f64> = merged.iter().map(|(_, e)| e.t_s).collect();
        assert_eq!(times, vec![0.1, 0.2, 0.3, 0.3, 0.3]);
        assert!(merge_timelines::<AdmissionEvent>(&[]).is_empty());
    }

    #[test]
    fn worst_p99_skips_streams_without_completions() {
        let stream = |processed: usize, samples: &[f64]| StreamReport {
            stream_id: 0,
            system_name: "s".into(),
            arrived: processed,
            processed,
            dropped: 0,
            rejected: 0,
            coasted: 0,
            skipped: 0,
            mean_ops: OpsBreakdown::default(),
            latency: LatencyStats::from_samples(samples),
            latency_samples: samples.to_vec(),
            outputs: vec![],
        };
        let mut report = ServeReport {
            makespan_s: 0.0,
            frames_arrived: 0,
            frames_processed: 0,
            frames_dropped: 0,
            frames_rejected: 0,
            frames_coasted: 0,
            frames_skipped: 0,
            throughput_fps: 0.0,
            worker_seconds: 0.0,
            gpu_dispatch_s: 0.0,
            total_ops: OpsBreakdown::default(),
            batch: BatchStats::default(),
            batch_log: vec![],
            scale_events: vec![],
            admission_events: vec![],
            downgrade_events: vec![],
            streams: vec![],
        };
        // No streams at all: no p99 to report.
        assert_eq!(report.worst_p99_s(), None);
        // Only an empty stream: still no p99 (the all-zero placeholder
        // stats must not masquerade as a measured latency).
        report.streams = vec![stream(0, &[])];
        assert_eq!(report.worst_p99_s(), None);
        report.streams = vec![stream(0, &[]), stream(2, &[0.3, 0.4])];
        assert_eq!(report.worst_p99_s(), Some(0.4));
    }
}
