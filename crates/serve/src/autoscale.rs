//! Feedback-driven autoscaling: worker-count control from serving signals.
//!
//! CaTDet spends detector compute only where the tracker says it pays off;
//! this module applies the same idea at fleet level — workers are added
//! only where drop-rate and tail latency say they are needed, and returned
//! when the fleet is idle. The scheduler samples a [`ControlSample`] every
//! [`control interval`](crate::config::AutoscaleConfig::control_interval_s)
//! of *virtual* time and asks a [`ScalePolicy`] for the desired worker
//! count. Every input to the policy is derived from virtual-time counters,
//! so a controller run is bit-reproducible at any host parallelism — the
//! exact [`ScaleEvent`] timeline can be locked in by a golden test.

use crate::config::AutoscaleConfig;
use crate::report::LatencyStats;
use serde::{Deserialize, Serialize};

/// What the scheduler measured over one control window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSample {
    /// Virtual time of the control tick.
    pub now_s: f64,
    /// Workers currently eligible for scheduling.
    pub active_workers: usize,
    /// Of those, workers busy with a batch right now.
    pub busy_workers: usize,
    /// Frames queued across all streams right now.
    pub backlog: usize,
    /// Frames that arrived during the window.
    pub window_arrived: usize,
    /// Frames shed during the window (queue drops + admission rejects).
    pub window_shed: usize,
    /// Nearest-rank p99 of latencies completed during the window, if any
    /// frame completed.
    pub window_p99_s: Option<f64>,
}

impl ControlSample {
    /// Fraction of window arrivals that were shed.
    pub fn window_shed_rate(&self) -> f64 {
        if self.window_arrived == 0 {
            0.0
        } else {
            self.window_shed as f64 / self.window_arrived as f64
        }
    }
}

/// Why a scale decision was taken (recorded on every [`ScaleEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleReason {
    /// The window shed rate exceeded the scale-up threshold.
    DropRate,
    /// The window p99 latency exceeded the scale-up threshold.
    TailLatency,
    /// The fleet was calm and under-utilised; a worker was returned.
    Idle,
    /// A load-tracking policy re-targeted the fleet to the arrival rate.
    LoadTracking,
}

impl ScaleReason {
    /// Short label used in timeline printouts.
    pub fn label(&self) -> &'static str {
        match self {
            ScaleReason::DropRate => "drop-rate",
            ScaleReason::TailLatency => "tail-latency",
            ScaleReason::Idle => "idle",
            ScaleReason::LoadTracking => "load-tracking",
        }
    }

    /// Stable integer code used in flight-recorder scale events.
    pub fn code(&self) -> u64 {
        match self {
            ScaleReason::DropRate => 0,
            ScaleReason::TailLatency => 1,
            ScaleReason::Idle => 2,
            ScaleReason::LoadTracking => 3,
        }
    }

    /// Parses a flight-recorder reason code.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(ScaleReason::DropRate),
            1 => Some(ScaleReason::TailLatency),
            2 => Some(ScaleReason::Idle),
            3 => Some(ScaleReason::LoadTracking),
            _ => None,
        }
    }
}

/// One worker-count change, stamped in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Virtual time of the control tick that decided the change.
    pub t_s: f64,
    /// Active workers before.
    pub from_workers: usize,
    /// Active workers after.
    pub to_workers: usize,
    /// What triggered it.
    pub reason: ScaleReason,
}

/// A worker-count controller consulted at every control tick.
///
/// Implementations must be deterministic functions of the sample history:
/// no wall-clock, no ambient randomness. Returning `None` keeps the
/// current worker count.
pub trait ScalePolicy: Send {
    /// Stable policy name (reports, CLI).
    fn name(&self) -> &'static str;

    /// Desired worker count and the reason, or `None` to hold steady. The
    /// scheduler clamps the result to the configured `[min, max]` range.
    fn desired_workers(&mut self, sample: &ControlSample) -> Option<(usize, ScaleReason)>;
}

/// Never changes the worker count (the no-autoscaling baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedScale;

impl ScalePolicy for FixedScale {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn desired_workers(&mut self, _sample: &ControlSample) -> Option<(usize, ScaleReason)> {
        None
    }
}

/// Hysteresis controller on window shed-rate and window p99.
///
/// Scales up by `step` when the shed rate or the window p99 cross their
/// *up* thresholds; scales down by `step` only when the window is
/// completely calm (nothing shed, no backlog, p99 below the *down*
/// threshold, at least one worker idle). The gap between the up and down
/// thresholds plus a cooldown of `cooldown_ticks` control ticks after any
/// change is what prevents oscillation on a steady workload.
#[derive(Debug, Clone, Copy)]
pub struct HysteresisScale {
    min: usize,
    max: usize,
    step: usize,
    up_shed_rate: f64,
    up_p99_s: f64,
    down_p99_s: f64,
    cooldown_ticks: usize,
    ticks_since_change: usize,
}

impl HysteresisScale {
    /// Builds the controller from its configuration.
    pub fn from_config(cfg: &AutoscaleConfig) -> Self {
        Self {
            min: cfg.min_workers,
            max: cfg.max_workers,
            step: cfg.scale_step,
            up_shed_rate: cfg.up_shed_rate,
            up_p99_s: cfg.up_p99_s,
            down_p99_s: cfg.down_p99_s,
            cooldown_ticks: cfg.cooldown_ticks,
            // The first tick is allowed to act immediately.
            ticks_since_change: cfg.cooldown_ticks,
        }
    }
}

impl ScalePolicy for HysteresisScale {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn desired_workers(&mut self, s: &ControlSample) -> Option<(usize, ScaleReason)> {
        if self.ticks_since_change < self.cooldown_ticks {
            self.ticks_since_change += 1;
            return None;
        }
        let shedding = s.window_shed_rate() > self.up_shed_rate;
        let slow = s.window_p99_s.is_some_and(|p| p > self.up_p99_s);
        if (shedding || slow) && s.active_workers < self.max {
            self.ticks_since_change = 0;
            let reason = if shedding {
                ScaleReason::DropRate
            } else {
                ScaleReason::TailLatency
            };
            return Some(((s.active_workers + self.step).min(self.max), reason));
        }
        let calm = s.window_shed == 0
            && s.backlog == 0
            && s.window_p99_s.is_none_or(|p| p < self.down_p99_s)
            && s.busy_workers < s.active_workers;
        if calm && s.active_workers > self.min {
            self.ticks_since_change = 0;
            let target = s.active_workers.saturating_sub(self.step).max(self.min);
            return Some((target, ScaleReason::Idle));
        }
        self.ticks_since_change += 1;
        None
    }
}

/// Step-load-aware proportional controller.
///
/// Estimates the required fleet directly from the window arrival rate and
/// a configured per-frame service-time estimate:
/// `workers = ceil(arrival_rate × service_s_per_frame)`. Reacts to a load
/// step within one control interval instead of climbing one hysteresis
/// step at a time, at the cost of trusting the service-time estimate.
#[derive(Debug, Clone, Copy)]
pub struct ProportionalScale {
    min: usize,
    max: usize,
    control_interval_s: f64,
    service_s_per_frame: f64,
}

impl ProportionalScale {
    /// Builds the controller from its configuration.
    pub fn from_config(cfg: &AutoscaleConfig) -> Self {
        Self {
            min: cfg.min_workers,
            max: cfg.max_workers,
            control_interval_s: cfg.control_interval_s,
            service_s_per_frame: cfg.service_s_per_frame,
        }
    }
}

impl ScalePolicy for ProportionalScale {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn desired_workers(&mut self, s: &ControlSample) -> Option<(usize, ScaleReason)> {
        let rate = s.window_arrived as f64 / self.control_interval_s;
        let target = ((rate * self.service_s_per_frame).ceil() as usize).clamp(self.min, self.max);
        if target != s.active_workers {
            Some((target, ScaleReason::LoadTracking))
        } else {
            None
        }
    }
}

/// Nearest-rank p99 over one control window's completed latencies
/// (`None` for an empty window).
pub(crate) fn window_p99(latencies: &[f64]) -> Option<f64> {
    LatencyStats::from_samples(latencies).map(|l| l.p99_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm_sample(active: usize) -> ControlSample {
        ControlSample {
            now_s: 1.0,
            active_workers: active,
            busy_workers: 0,
            backlog: 0,
            window_arrived: 10,
            window_shed: 0,
            window_p99_s: Some(0.01),
        }
    }

    #[test]
    fn fixed_never_moves() {
        let mut p = FixedScale;
        let mut s = calm_sample(4);
        s.window_shed = 10;
        assert_eq!(p.desired_workers(&s), None);
    }

    #[test]
    fn hysteresis_scales_up_on_shedding_and_down_when_calm() {
        let cfg = AutoscaleConfig::hysteresis(1, 8).with_cooldown_ticks(0);
        let mut p = HysteresisScale::from_config(&cfg);
        let mut overload = calm_sample(2);
        overload.window_shed = 5;
        assert_eq!(
            p.desired_workers(&overload),
            Some((3, ScaleReason::DropRate))
        );
        assert_eq!(
            p.desired_workers(&calm_sample(3)),
            Some((2, ScaleReason::Idle))
        );
    }

    #[test]
    fn hysteresis_holds_inside_the_band() {
        let cfg = AutoscaleConfig::hysteresis(1, 8).with_cooldown_ticks(0);
        let mut p = HysteresisScale::from_config(&cfg);
        // Busy but neither shedding nor calm (a worker is occupied).
        let mut s = calm_sample(2);
        s.busy_workers = 2;
        assert_eq!(p.desired_workers(&s), None);
    }

    #[test]
    fn hysteresis_cooldown_delays_consecutive_changes() {
        let cfg = AutoscaleConfig::hysteresis(1, 8).with_cooldown_ticks(2);
        let mut p = HysteresisScale::from_config(&cfg);
        let mut overload = calm_sample(1);
        overload.window_shed = 10;
        assert!(p.desired_workers(&overload).is_some());
        let mut next = overload;
        next.active_workers = 2;
        assert_eq!(p.desired_workers(&next), None, "cooldown tick 1");
        assert_eq!(p.desired_workers(&next), None, "cooldown tick 2");
        assert!(p.desired_workers(&next).is_some(), "cooldown expired");
    }

    #[test]
    fn proportional_tracks_arrival_rate() {
        let cfg = AutoscaleConfig::proportional(1, 16, 0.1);
        let mut p = ProportionalScale::from_config(&cfg);
        let mut s = calm_sample(1);
        // 40 arrivals per 0.25 s window = 160 fps; at 0.1 s/frame that
        // needs 16 workers.
        s.window_arrived = 40;
        assert_eq!(p.desired_workers(&s), Some((16, ScaleReason::LoadTracking)));
        // Quiet window falls back to the floor…
        s.active_workers = 16;
        s.window_arrived = 0;
        assert_eq!(p.desired_workers(&s), Some((1, ScaleReason::LoadTracking)));
        // …and holds there without re-deciding.
        s.active_workers = 1;
        assert_eq!(p.desired_workers(&s), None);
    }

    #[test]
    fn window_p99_matches_latency_stats() {
        assert_eq!(window_p99(&[]), None);
        let samples: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        assert_eq!(window_p99(&samples), Some(198.0));
    }
}
