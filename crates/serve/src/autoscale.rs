//! Feedback-driven autoscaling: worker-count control from serving signals.
//!
//! CaTDet spends detector compute only where the tracker says it pays off;
//! this module applies the same idea at fleet level — workers are added
//! only where drop-rate and tail latency say they are needed, and returned
//! when the fleet is idle. The scheduler samples a [`ControlSample`] every
//! [`control interval`](crate::config::AutoscaleConfig::control_interval_s)
//! of *virtual* time and asks a [`ScalePolicy`] for the desired worker
//! count. Every input to the policy is derived from virtual-time counters,
//! so a controller run is bit-reproducible at any host parallelism — the
//! exact [`ScaleEvent`] timeline can be locked in by a golden test.

use crate::config::AutoscaleConfig;
use crate::forecast::ForecastConfig;
use crate::report::LatencyStats;
use serde::{Deserialize, Serialize};

/// What the scheduler measured over one control window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSample {
    /// Virtual time of the control tick.
    pub now_s: f64,
    /// Workers currently eligible for scheduling.
    pub active_workers: usize,
    /// Of those, workers busy with a batch right now.
    pub busy_workers: usize,
    /// Frames queued across all streams right now.
    pub backlog: usize,
    /// Frames that arrived during the window.
    pub window_arrived: usize,
    /// Frames shed during the window (queue drops + admission rejects).
    pub window_shed: usize,
    /// Nearest-rank p99 of latencies completed during the window, if any
    /// frame completed.
    pub window_p99_s: Option<f64>,
    /// Summed per-stream forecast arrival rate (frames/s) over the
    /// forecast horizon; `0.0` when forecasting is off.
    pub forecast_rate_fps: f64,
    /// Aggregate forecaster confidence in `[0, 1]` (mean over live
    /// streams); `0.0` when forecasting is off or nothing has history.
    pub forecast_confidence: f64,
}

impl ControlSample {
    /// Fraction of window arrivals that were shed.
    pub fn window_shed_rate(&self) -> f64 {
        if self.window_arrived == 0 {
            0.0
        } else {
            self.window_shed as f64 / self.window_arrived as f64
        }
    }
}

/// Why a scale decision was taken (recorded on every [`ScaleEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleReason {
    /// The window shed rate exceeded the scale-up threshold.
    DropRate,
    /// The window p99 latency exceeded the scale-up threshold.
    TailLatency,
    /// The fleet was calm and under-utilised; a worker was returned.
    Idle,
    /// A load-tracking policy re-targeted the fleet to the arrival rate.
    LoadTracking,
    /// The forecaster predicted a load change and the fleet was re-sized
    /// ahead of it.
    Predictive,
}

impl ScaleReason {
    /// Short label used in timeline printouts.
    pub fn label(&self) -> &'static str {
        match self {
            ScaleReason::DropRate => "drop-rate",
            ScaleReason::TailLatency => "tail-latency",
            ScaleReason::Idle => "idle",
            ScaleReason::LoadTracking => "load-tracking",
            ScaleReason::Predictive => "predictive",
        }
    }

    /// Stable integer code used in flight-recorder scale events.
    pub fn code(&self) -> u64 {
        match self {
            ScaleReason::DropRate => 0,
            ScaleReason::TailLatency => 1,
            ScaleReason::Idle => 2,
            ScaleReason::LoadTracking => 3,
            ScaleReason::Predictive => 4,
        }
    }

    /// Parses a flight-recorder reason code.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(ScaleReason::DropRate),
            1 => Some(ScaleReason::TailLatency),
            2 => Some(ScaleReason::Idle),
            3 => Some(ScaleReason::LoadTracking),
            4 => Some(ScaleReason::Predictive),
            _ => None,
        }
    }
}

/// One worker-count change, stamped in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Virtual time of the control tick that decided the change.
    pub t_s: f64,
    /// Active workers before.
    pub from_workers: usize,
    /// Active workers after.
    pub to_workers: usize,
    /// What triggered it.
    pub reason: ScaleReason,
}

/// A worker-count controller consulted at every control tick.
///
/// Implementations must be deterministic functions of the sample history:
/// no wall-clock, no ambient randomness. Returning `None` keeps the
/// current worker count.
pub trait ScalePolicy: Send {
    /// Stable policy name (reports, CLI).
    fn name(&self) -> &'static str;

    /// Desired worker count and the reason, or `None` to hold steady. The
    /// scheduler clamps the result to the configured `[min, max]` range.
    fn desired_workers(&mut self, sample: &ControlSample) -> Option<(usize, ScaleReason)>;
}

/// Never changes the worker count (the no-autoscaling baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedScale;

impl ScalePolicy for FixedScale {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn desired_workers(&mut self, _sample: &ControlSample) -> Option<(usize, ScaleReason)> {
        None
    }
}

/// Hysteresis controller on window shed-rate and window p99.
///
/// Scales up by `step` when the shed rate or the window p99 cross their
/// *up* thresholds; scales down by `step` only when the window is
/// completely calm (nothing shed, no backlog, p99 below the *down*
/// threshold, at least one worker idle). The gap between the up and down
/// thresholds plus a cooldown of `cooldown_ticks` control ticks after any
/// change is what prevents oscillation on a steady workload.
#[derive(Debug, Clone, Copy)]
pub struct HysteresisScale {
    min: usize,
    max: usize,
    step: usize,
    up_shed_rate: f64,
    up_p99_s: f64,
    down_p99_s: f64,
    cooldown_ticks: usize,
    ticks_since_change: usize,
}

impl HysteresisScale {
    /// Builds the controller from its configuration.
    pub fn from_config(cfg: &AutoscaleConfig) -> Self {
        Self {
            min: cfg.min_workers,
            max: cfg.max_workers,
            step: cfg.scale_step,
            up_shed_rate: cfg.up_shed_rate,
            up_p99_s: cfg.up_p99_s,
            down_p99_s: cfg.down_p99_s,
            cooldown_ticks: cfg.cooldown_ticks,
            // The first tick is allowed to act immediately.
            ticks_since_change: cfg.cooldown_ticks,
        }
    }
}

impl ScalePolicy for HysteresisScale {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn desired_workers(&mut self, s: &ControlSample) -> Option<(usize, ScaleReason)> {
        if self.ticks_since_change < self.cooldown_ticks {
            self.ticks_since_change += 1;
            return None;
        }
        let shedding = s.window_shed_rate() > self.up_shed_rate;
        let slow = s.window_p99_s.is_some_and(|p| p > self.up_p99_s);
        if (shedding || slow) && s.active_workers < self.max {
            self.ticks_since_change = 0;
            let reason = if shedding {
                ScaleReason::DropRate
            } else {
                ScaleReason::TailLatency
            };
            return Some(((s.active_workers + self.step).min(self.max), reason));
        }
        let calm = s.window_shed == 0
            && s.backlog == 0
            && s.window_p99_s.is_none_or(|p| p < self.down_p99_s)
            && s.busy_workers < s.active_workers;
        if calm && s.active_workers > self.min {
            self.ticks_since_change = 0;
            let target = s.active_workers.saturating_sub(self.step).max(self.min);
            return Some((target, ScaleReason::Idle));
        }
        self.ticks_since_change += 1;
        None
    }
}

/// Step-load-aware proportional controller.
///
/// Estimates the required fleet directly from the window arrival rate and
/// a configured per-frame service-time estimate:
/// `workers = ceil(arrival_rate × service_s_per_frame)`. Reacts to a load
/// step within one control interval instead of climbing one hysteresis
/// step at a time, at the cost of trusting the service-time estimate.
#[derive(Debug, Clone, Copy)]
pub struct ProportionalScale {
    min: usize,
    max: usize,
    control_interval_s: f64,
    service_s_per_frame: f64,
}

impl ProportionalScale {
    /// Builds the controller from its configuration.
    pub fn from_config(cfg: &AutoscaleConfig) -> Self {
        Self {
            min: cfg.min_workers,
            max: cfg.max_workers,
            control_interval_s: cfg.control_interval_s,
            service_s_per_frame: cfg.service_s_per_frame,
        }
    }
}

impl ScalePolicy for ProportionalScale {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn desired_workers(&mut self, s: &ControlSample) -> Option<(usize, ScaleReason)> {
        let rate = s.window_arrived as f64 / self.control_interval_s;
        let target = ((rate * self.service_s_per_frame).ceil() as usize).clamp(self.min, self.max);
        if target != s.active_workers {
            Some((target, ScaleReason::LoadTracking))
        } else {
            None
        }
    }
}

/// Forecast-driven proactive controller.
///
/// When the forecaster is confident, the fleet is re-targeted straight
/// to `ceil(forecast_rate × service_s_per_frame)` — one control tick of
/// lead instead of hysteresis's damage-triggered one-step-per-cooldown
/// climb. Scale-*down* to the forecast target additionally requires a
/// completely calm window (nothing shed, no backlog, an idle worker), so
/// a mistaken low forecast cannot shed load. Reactive shed/p99 breaches
/// still scale up even when the forecast disagrees — the forecast adds
/// lead time, it never suppresses the damage signal. Below the
/// confidence floor the controller degrades to exact hysteresis
/// semantics (warmup behaves like the reactive baseline).
#[derive(Debug, Clone, Copy)]
pub struct PredictiveScale {
    min: usize,
    max: usize,
    step: usize,
    up_shed_rate: f64,
    up_p99_s: f64,
    down_p99_s: f64,
    cooldown_ticks: usize,
    ticks_since_change: usize,
    service_s_per_frame: f64,
    min_confidence: f64,
}

impl PredictiveScale {
    /// Builds the controller from the autoscale and forecaster
    /// configurations.
    pub fn from_config(cfg: &AutoscaleConfig, forecast: &ForecastConfig) -> Self {
        Self {
            min: cfg.min_workers,
            max: cfg.max_workers,
            step: cfg.scale_step,
            up_shed_rate: cfg.up_shed_rate,
            up_p99_s: cfg.up_p99_s,
            down_p99_s: cfg.down_p99_s,
            cooldown_ticks: cfg.cooldown_ticks,
            // The first tick is allowed to act immediately.
            ticks_since_change: cfg.cooldown_ticks,
            service_s_per_frame: cfg.service_s_per_frame,
            min_confidence: forecast.min_confidence,
        }
    }

    /// The hysteresis decision body, shared by the low-confidence
    /// fallback path.
    fn reactive(&mut self, s: &ControlSample) -> Option<(usize, ScaleReason)> {
        let shedding = s.window_shed_rate() > self.up_shed_rate;
        let slow = s.window_p99_s.is_some_and(|p| p > self.up_p99_s);
        if (shedding || slow) && s.active_workers < self.max {
            self.ticks_since_change = 0;
            let reason = if shedding {
                ScaleReason::DropRate
            } else {
                ScaleReason::TailLatency
            };
            return Some(((s.active_workers + self.step).min(self.max), reason));
        }
        let calm = s.window_shed == 0
            && s.backlog == 0
            && s.window_p99_s.is_none_or(|p| p < self.down_p99_s)
            && s.busy_workers < s.active_workers;
        if calm && s.active_workers > self.min {
            self.ticks_since_change = 0;
            let target = s.active_workers.saturating_sub(self.step).max(self.min);
            return Some((target, ScaleReason::Idle));
        }
        self.ticks_since_change += 1;
        None
    }
}

impl ScalePolicy for PredictiveScale {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn desired_workers(&mut self, s: &ControlSample) -> Option<(usize, ScaleReason)> {
        if self.ticks_since_change < self.cooldown_ticks {
            self.ticks_since_change += 1;
            return None;
        }
        if s.forecast_confidence < self.min_confidence {
            return self.reactive(s);
        }
        let needed = ((s.forecast_rate_fps * self.service_s_per_frame).ceil() as usize)
            .clamp(self.min, self.max);
        if needed > s.active_workers {
            self.ticks_since_change = 0;
            return Some((needed, ScaleReason::Predictive));
        }
        let calm = s.window_shed == 0 && s.backlog == 0 && s.busy_workers < s.active_workers;
        if needed < s.active_workers && calm {
            self.ticks_since_change = 0;
            return Some((needed, ScaleReason::Predictive));
        }
        // At (or pinned above) the forecast target: hold, but reactive
        // shed/p99 breaches still scale up — a wrong forecast must not
        // mask damage. The hysteresis idle rule is deliberately *not*
        // consulted here, so a calm instant cannot drag the fleet below
        // what the forecast says is about to arrive.
        let shedding = s.window_shed_rate() > self.up_shed_rate;
        let slow = s.window_p99_s.is_some_and(|p| p > self.up_p99_s);
        if (shedding || slow) && s.active_workers < self.max {
            self.ticks_since_change = 0;
            let reason = if shedding {
                ScaleReason::DropRate
            } else {
                ScaleReason::TailLatency
            };
            return Some(((s.active_workers + self.step).min(self.max), reason));
        }
        self.ticks_since_change += 1;
        None
    }
}

/// Nearest-rank p99 over one control window's completed latencies
/// (`None` for an empty window).
pub(crate) fn window_p99(latencies: &[f64]) -> Option<f64> {
    LatencyStats::from_samples(latencies).map(|l| l.p99_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm_sample(active: usize) -> ControlSample {
        ControlSample {
            now_s: 1.0,
            active_workers: active,
            busy_workers: 0,
            backlog: 0,
            window_arrived: 10,
            window_shed: 0,
            window_p99_s: Some(0.01),
            forecast_rate_fps: 0.0,
            forecast_confidence: 0.0,
        }
    }

    #[test]
    fn fixed_never_moves() {
        let mut p = FixedScale;
        let mut s = calm_sample(4);
        s.window_shed = 10;
        assert_eq!(p.desired_workers(&s), None);
    }

    #[test]
    fn hysteresis_scales_up_on_shedding_and_down_when_calm() {
        let cfg = AutoscaleConfig::hysteresis(1, 8).with_cooldown_ticks(0);
        let mut p = HysteresisScale::from_config(&cfg);
        let mut overload = calm_sample(2);
        overload.window_shed = 5;
        assert_eq!(
            p.desired_workers(&overload),
            Some((3, ScaleReason::DropRate))
        );
        assert_eq!(
            p.desired_workers(&calm_sample(3)),
            Some((2, ScaleReason::Idle))
        );
    }

    #[test]
    fn hysteresis_holds_inside_the_band() {
        let cfg = AutoscaleConfig::hysteresis(1, 8).with_cooldown_ticks(0);
        let mut p = HysteresisScale::from_config(&cfg);
        // Busy but neither shedding nor calm (a worker is occupied).
        let mut s = calm_sample(2);
        s.busy_workers = 2;
        assert_eq!(p.desired_workers(&s), None);
    }

    #[test]
    fn hysteresis_cooldown_delays_consecutive_changes() {
        let cfg = AutoscaleConfig::hysteresis(1, 8).with_cooldown_ticks(2);
        let mut p = HysteresisScale::from_config(&cfg);
        let mut overload = calm_sample(1);
        overload.window_shed = 10;
        assert!(p.desired_workers(&overload).is_some());
        let mut next = overload;
        next.active_workers = 2;
        assert_eq!(p.desired_workers(&next), None, "cooldown tick 1");
        assert_eq!(p.desired_workers(&next), None, "cooldown tick 2");
        assert!(p.desired_workers(&next).is_some(), "cooldown expired");
    }

    #[test]
    fn proportional_tracks_arrival_rate() {
        let cfg = AutoscaleConfig::proportional(1, 16, 0.1);
        let mut p = ProportionalScale::from_config(&cfg);
        let mut s = calm_sample(1);
        // 40 arrivals per 0.25 s window = 160 fps; at 0.1 s/frame that
        // needs 16 workers.
        s.window_arrived = 40;
        assert_eq!(p.desired_workers(&s), Some((16, ScaleReason::LoadTracking)));
        // Quiet window falls back to the floor…
        s.active_workers = 16;
        s.window_arrived = 0;
        assert_eq!(p.desired_workers(&s), Some((1, ScaleReason::LoadTracking)));
        // …and holds there without re-deciding.
        s.active_workers = 1;
        assert_eq!(p.desired_workers(&s), None);
    }

    fn predictive(min: usize, max: usize) -> PredictiveScale {
        let cfg = AutoscaleConfig::predictive(min, max).with_cooldown_ticks(0);
        // service_s_per_frame defaults to 0.05: 20 fps per worker.
        PredictiveScale::from_config(&cfg, &ForecastConfig::new())
    }

    #[test]
    fn predictive_jumps_to_the_forecast_target_in_one_tick() {
        let mut p = predictive(1, 16);
        let mut s = calm_sample(2);
        s.busy_workers = 2; // not calm: only the forecast can move us
        s.forecast_rate_fps = 200.0; // needs ceil(200 × 0.05) = 10
        s.forecast_confidence = 0.9;
        assert_eq!(
            p.desired_workers(&s),
            Some((10, ScaleReason::Predictive)),
            "confident forecast re-targets directly, no step climb"
        );
    }

    #[test]
    fn predictive_scales_down_only_when_calm() {
        let mut p = predictive(1, 16);
        let mut s = calm_sample(8);
        s.forecast_rate_fps = 40.0; // needs 2
        s.forecast_confidence = 0.9;
        assert_eq!(p.desired_workers(&s), Some((2, ScaleReason::Predictive)));
        // Same forecast with backlog still queued: hold.
        let mut busy = s;
        busy.backlog = 5;
        let mut p = predictive(1, 16);
        assert_eq!(p.desired_workers(&busy), None);
    }

    #[test]
    fn predictive_falls_back_to_hysteresis_at_low_confidence() {
        let mut p = predictive(1, 8);
        let mut s = calm_sample(2);
        s.window_shed = 5;
        s.forecast_rate_fps = 40.0; // would need 2 — but not trusted
        s.forecast_confidence = 0.1;
        assert_eq!(
            p.desired_workers(&s),
            Some((3, ScaleReason::DropRate)),
            "low confidence degrades to the reactive step climb"
        );
    }

    #[test]
    fn predictive_never_lets_a_wrong_forecast_mask_damage() {
        let mut p = predictive(1, 8);
        let mut s = calm_sample(2);
        s.busy_workers = 2;
        s.window_shed = 5; // shedding now…
        s.forecast_rate_fps = 20.0; // …while the forecast claims 1 worker
        s.forecast_confidence = 0.9;
        assert_eq!(p.desired_workers(&s), Some((3, ScaleReason::DropRate)));
    }

    #[test]
    fn predictive_honours_the_cooldown() {
        let cfg = AutoscaleConfig::predictive(1, 16).with_cooldown_ticks(2);
        let mut p = PredictiveScale::from_config(&cfg, &ForecastConfig::new());
        let mut s = calm_sample(1);
        s.busy_workers = 1;
        s.forecast_rate_fps = 100.0;
        s.forecast_confidence = 0.9;
        assert!(p.desired_workers(&s).is_some());
        s.active_workers = 5;
        s.forecast_rate_fps = 200.0;
        assert_eq!(p.desired_workers(&s), None, "cooldown tick 1");
        assert_eq!(p.desired_workers(&s), None, "cooldown tick 2");
        assert!(p.desired_workers(&s).is_some(), "cooldown expired");
    }

    #[test]
    fn scale_reason_codes_round_trip() {
        for r in [
            ScaleReason::DropRate,
            ScaleReason::TailLatency,
            ScaleReason::Idle,
            ScaleReason::LoadTracking,
            ScaleReason::Predictive,
        ] {
            assert_eq!(ScaleReason::from_code(r.code()), Some(r));
        }
        assert_eq!(ScaleReason::from_code(99), None);
    }

    #[test]
    fn window_p99_matches_latency_stats() {
        assert_eq!(window_p99(&[]), None);
        let samples: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        assert_eq!(window_p99(&samples), Some(198.0));
    }
}
