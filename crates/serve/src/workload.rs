//! Ready-made multi-camera workloads for benches, tests and the CLI.

use crate::scheduler::StreamSpec;
use catdet_core::{PresetFactory, SystemFactory, SystemKind};
use catdet_data::{citypersons_like, kitti_like, StreamSource};
use std::sync::Arc;

/// Phase stagger between cameras, so arrivals interleave instead of
/// stampeding on the same tick.
const STAGGER_S: f64 = 0.013;

/// Builds a mixed fleet of `streams` cameras: even slots are KITTI-like
/// driving scenes (10 fps, 1242×375), odd slots CityPersons-like street
/// scenes (30 fps, 2048×1024). Every camera gets its own pipeline of the
/// given kind at the correct geometry.
///
/// The workload is deterministic in `seed`.
pub fn mixed_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
) -> Vec<StreamSpec> {
    let kitti = kitti_like()
        .sequences(streams.div_ceil(2))
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let city = citypersons_like()
        .sequences(streams / 2)
        .frames_per_sequence(frames_per_stream)
        .seed(seed.wrapping_add(1))
        .build();

    let kitti_factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    let city_factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::citypersons(kind));

    let mut kitti_seqs = kitti.sequences().iter();
    let mut city_seqs = city.sequences().iter();

    (0..streams)
        .map(|slot| {
            let (dataset, seq, factory) = if slot % 2 == 0 {
                (
                    &kitti,
                    kitti_seqs.next().expect("kitti stream"),
                    &kitti_factory,
                )
            } else {
                (&city, city_seqs.next().expect("city stream"), &city_factory)
            };
            let source = StreamSource::from_sequence_with_geometry(
                slot,
                seq,
                slot as f64 * STAGGER_S,
                dataset.width,
                dataset.height,
            );
            StreamSpec::new(source, Arc::clone(factory))
        })
        .collect()
}

/// Builds a homogeneous KITTI-like workload (used by benches that want a
/// single-variable sweep).
pub fn kitti_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
) -> Vec<StreamSpec> {
    let ds = kitti_like()
        .sequences(streams)
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    StreamSource::from_dataset(&ds, STAGGER_S)
        .into_iter()
        .map(|source| StreamSpec::new(source, Arc::clone(&factory)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_alternates_geometries() {
        let specs = mixed_workload(4, 6, 7, SystemKind::CatdetA);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].source.width, 1242.0);
        assert_eq!(specs[1].source.width, 2048.0);
        assert_eq!(specs[2].source.width, 1242.0);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.source.stream_id, i);
            assert_eq!(s.source.len(), 6);
        }
    }

    #[test]
    fn mixed_workload_staggers_phases() {
        let specs = mixed_workload(3, 4, 7, SystemKind::CascadeA);
        let first_arrivals: Vec<f64> = specs
            .iter()
            .map(|s| s.source.frames()[0].arrival_s)
            .collect();
        assert!(first_arrivals[0] < first_arrivals[1]);
        assert!(first_arrivals[1] < first_arrivals[2]);
    }

    #[test]
    fn mixed_workload_is_deterministic() {
        let a = mixed_workload(4, 5, 3, SystemKind::CatdetA);
        let b = mixed_workload(4, 5, 3, SystemKind::CatdetA);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn kitti_workload_is_homogeneous() {
        let specs = kitti_workload(3, 5, 1, SystemKind::SingleResnet50);
        assert!(specs.iter().all(|s| s.source.width == 1242.0));
        assert!(specs.iter().all(|s| (s.source.fps - 10.0).abs() < 1e-6));
    }
}
