//! Ready-made multi-camera workloads for benches, tests and the CLI:
//! steady mixed fleets, plus bursty and step-load arrival patterns that
//! give the admission/autoscale control loop something to react to.

use crate::scheduler::StreamSpec;
use catdet_core::{PresetFactory, SystemFactory, SystemKind};
use catdet_data::{citypersons_like, kitti_like, Sequence, StreamFrame, StreamSource};
use std::sync::Arc;

/// Phase stagger between cameras, so arrivals interleave instead of
/// stampeding on the same tick.
const STAGGER_S: f64 = 0.013;

/// Builds a mixed fleet of `streams` cameras: even slots are KITTI-like
/// driving scenes (10 fps, 1242×375), odd slots CityPersons-like street
/// scenes (30 fps, 2048×1024). Every camera gets its own pipeline of the
/// given kind at the correct geometry. Driving cameras are priority
/// class 0, street-monitoring cameras class 1, so the priority admission
/// policy sheds street cameras first under overload.
///
/// The workload is deterministic in `seed`.
pub fn mixed_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
) -> Vec<StreamSpec> {
    let kitti = kitti_like()
        .sequences(streams.div_ceil(2))
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let city = citypersons_like()
        .sequences(streams / 2)
        .frames_per_sequence(frames_per_stream)
        .seed(seed.wrapping_add(1))
        .build();

    let kitti_factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    let city_factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::citypersons(kind));

    let mut kitti_seqs = kitti.sequences().iter();
    let mut city_seqs = city.sequences().iter();

    (0..streams)
        .map(|slot| {
            let (dataset, seq, factory) = if slot % 2 == 0 {
                (
                    &kitti,
                    kitti_seqs.next().expect("kitti stream"),
                    &kitti_factory,
                )
            } else {
                (&city, city_seqs.next().expect("city stream"), &city_factory)
            };
            let source = StreamSource::from_sequence_with_geometry(
                slot,
                seq,
                slot as f64 * STAGGER_S,
                dataset.width,
                dataset.height,
            );
            StreamSpec::new(source, Arc::clone(factory)).with_priority((slot % 2) as u8)
        })
        .collect()
}

/// Shape of a non-steady arrival process for [`bursty_workload`] and
/// [`step_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstProfile {
    /// Arrival rate outside bursts (frames/s).
    pub quiet_fps: f64,
    /// Arrival rate inside bursts (frames/s).
    pub burst_fps: f64,
    /// Length of each quiet phase (seconds).
    pub quiet_s: f64,
    /// Length of each burst phase (seconds).
    pub burst_s: f64,
}

impl BurstProfile {
    /// A fleet that idles at 2 fps, then stampedes at 30 fps for one
    /// second out of every three.
    pub fn demo() -> Self {
        Self {
            quiet_fps: 2.0,
            burst_fps: 30.0,
            quiet_s: 2.0,
            burst_s: 1.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.quiet_fps > 0.0 && self.burst_fps > 0.0,
            "arrival rates must be positive"
        );
        assert!(
            self.quiet_s > 0.0 && self.burst_s > 0.0,
            "phase lengths must be positive"
        );
    }
}

/// Retimes a sequence's frames along an arrival process given by
/// `period_at(t)`: frame `i+1` arrives `period_at(t_i)` after frame `i`.
fn retime(
    slot: usize,
    seq: &Sequence,
    start_s: f64,
    width: f32,
    height: f32,
    nominal_fps: f32,
    mut period_at: impl FnMut(f64) -> f64,
) -> StreamSource {
    let mut t = start_s;
    let frames = seq
        .frames()
        .iter()
        .map(|f| {
            let sf = StreamFrame {
                arrival_s: t,
                frame: f.clone(),
            };
            t += period_at(t - start_s);
            sf
        })
        .collect();
    StreamSource::from_frames(slot, nominal_fps, width, height, frames)
}

/// Builds a homogeneous KITTI-like fleet whose cameras alternate quiet
/// and burst phases per `profile` (all cameras in phase, staggered only
/// by the fixed 13 ms camera offset, so bursts stampede fleet-wide — the
/// worst case for a fixed worker count and the showcase for autoscaling).
/// Even slots get priority class 0, odd slots class 1, so priority
/// admission has something to shed.
///
/// The workload is deterministic in `seed`.
pub fn bursty_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
    profile: BurstProfile,
) -> Vec<StreamSpec> {
    profile.validate();
    let ds = kitti_like()
        .sequences(streams)
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    let cycle = profile.quiet_s + profile.burst_s;
    ds.sequences()
        .iter()
        .enumerate()
        .map(|(slot, seq)| {
            let source = retime(
                slot,
                seq,
                slot as f64 * STAGGER_S,
                ds.width,
                ds.height,
                profile.burst_fps as f32,
                |t| {
                    if t.rem_euclid(cycle) < profile.quiet_s {
                        1.0 / profile.quiet_fps
                    } else {
                        1.0 / profile.burst_fps
                    }
                },
            );
            StreamSpec::new(source, Arc::clone(&factory)).with_priority((slot % 2) as u8)
        })
        .collect()
}

/// Builds a homogeneous KITTI-like fleet whose arrival rate steps from
/// `profile.quiet_fps` to `profile.burst_fps` at `step_at_s` and stays
/// there — the canonical step-load input for controller tests.
///
/// The workload is deterministic in `seed`.
pub fn step_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
    profile: BurstProfile,
    step_at_s: f64,
) -> Vec<StreamSpec> {
    profile.validate();
    assert!(
        step_at_s >= 0.0 && step_at_s.is_finite(),
        "step time must be finite and non-negative"
    );
    let ds = kitti_like()
        .sequences(streams)
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    ds.sequences()
        .iter()
        .enumerate()
        .map(|(slot, seq)| {
            let source = retime(
                slot,
                seq,
                slot as f64 * STAGGER_S,
                ds.width,
                ds.height,
                profile.burst_fps as f32,
                |t| {
                    if t < step_at_s {
                        1.0 / profile.quiet_fps
                    } else {
                        1.0 / profile.burst_fps
                    }
                },
            );
            StreamSpec::new(source, Arc::clone(&factory)).with_priority((slot % 2) as u8)
        })
        .collect()
}

/// Builds a homogeneous KITTI-like fleet whose arrival rate climbs
/// linearly from `start_fps` to `end_fps` over the first `ramp_s`
/// seconds of each camera's life, then holds at `end_fps` — the trend
/// input for the rate forecaster (a step controller always lags a ramp;
/// a trend-aware one tracks it).
///
/// The workload is deterministic in `seed`.
pub fn ramp_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
    start_fps: f64,
    end_fps: f64,
    ramp_s: f64,
) -> Vec<StreamSpec> {
    assert!(
        start_fps > 0.0 && end_fps > 0.0,
        "arrival rates must be positive"
    );
    assert!(
        ramp_s > 0.0 && ramp_s.is_finite(),
        "ramp length must be finite and positive"
    );
    let ds = kitti_like()
        .sequences(streams)
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    ds.sequences()
        .iter()
        .enumerate()
        .map(|(slot, seq)| {
            let source = retime(
                slot,
                seq,
                slot as f64 * STAGGER_S,
                ds.width,
                ds.height,
                start_fps.max(end_fps) as f32,
                |t| {
                    let frac = (t / ramp_s).clamp(0.0, 1.0);
                    1.0 / (start_fps + (end_fps - start_fps) * frac)
                },
            );
            StreamSpec::new(source, Arc::clone(&factory)).with_priority((slot % 2) as u8)
        })
        .collect()
}

/// Builds a homogeneous KITTI-like fleet whose arrival rate oscillates as
/// `mean_fps + amplitude_fps · sin(2π·t / period_s)` — a smooth periodic
/// load with no flat phases, sitting between the step and bursty
/// extremes. `amplitude_fps` must stay below `mean_fps` so the rate is
/// always positive.
///
/// The workload is deterministic in `seed`.
pub fn sine_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
    mean_fps: f64,
    amplitude_fps: f64,
    period_s: f64,
) -> Vec<StreamSpec> {
    assert!(mean_fps > 0.0, "arrival rates must be positive");
    assert!(
        amplitude_fps >= 0.0 && amplitude_fps < mean_fps,
        "sine amplitude must be in [0, mean_fps)"
    );
    assert!(
        period_s > 0.0 && period_s.is_finite(),
        "sine period must be finite and positive"
    );
    let ds = kitti_like()
        .sequences(streams)
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    ds.sequences()
        .iter()
        .enumerate()
        .map(|(slot, seq)| {
            let source = retime(
                slot,
                seq,
                slot as f64 * STAGGER_S,
                ds.width,
                ds.height,
                (mean_fps + amplitude_fps) as f32,
                |t| {
                    let rate = mean_fps
                        + amplitude_fps * (2.0 * std::f64::consts::PI * t / period_s).sin();
                    1.0 / rate
                },
            );
            StreamSpec::new(source, Arc::clone(&factory)).with_priority((slot % 2) as u8)
        })
        .collect()
}

/// Builds a homogeneous KITTI-like workload (used by benches that want a
/// single-variable sweep).
pub fn kitti_workload(
    streams: usize,
    frames_per_stream: usize,
    seed: u64,
    kind: SystemKind,
) -> Vec<StreamSpec> {
    let ds = kitti_like()
        .sequences(streams)
        .frames_per_sequence(frames_per_stream)
        .seed(seed)
        .build();
    let factory: Arc<dyn SystemFactory> = Arc::new(PresetFactory::kitti(kind));
    StreamSource::from_dataset(&ds, STAGGER_S)
        .into_iter()
        .map(|source| StreamSpec::new(source, Arc::clone(&factory)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_alternates_geometries() {
        let specs = mixed_workload(4, 6, 7, SystemKind::CatdetA);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].source.width, 1242.0);
        assert_eq!(specs[1].source.width, 2048.0);
        assert_eq!(specs[2].source.width, 1242.0);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.source.stream_id, i);
            assert_eq!(s.source.len(), 6);
        }
    }

    #[test]
    fn mixed_workload_staggers_phases() {
        let specs = mixed_workload(3, 4, 7, SystemKind::CascadeA);
        let first_arrivals: Vec<f64> = specs
            .iter()
            .map(|s| s.source.frames()[0].arrival_s)
            .collect();
        assert!(first_arrivals[0] < first_arrivals[1]);
        assert!(first_arrivals[1] < first_arrivals[2]);
    }

    #[test]
    fn mixed_workload_is_deterministic() {
        let a = mixed_workload(4, 5, 3, SystemKind::CatdetA);
        let b = mixed_workload(4, 5, 3, SystemKind::CatdetA);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn bursty_workload_alternates_quiet_and_burst_gaps() {
        let profile = BurstProfile::demo();
        let specs = bursty_workload(2, 30, 5, SystemKind::CatdetA, profile);
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].priority, 0);
        assert_eq!(specs[1].priority, 1);
        let arrivals: Vec<f64> = specs[0]
            .source
            .frames()
            .iter()
            .map(|f| f.arrival_s)
            .collect();
        assert_eq!(arrivals.len(), 30);
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let quiet_gap = 1.0 / profile.quiet_fps;
        let burst_gap = 1.0 / profile.burst_fps;
        assert!(gaps.iter().any(|&g| (g - quiet_gap).abs() < 1e-9));
        assert!(gaps.iter().any(|&g| (g - burst_gap).abs() < 1e-9));
        // Arrivals are strictly increasing and the pattern is reproducible.
        assert!(gaps.iter().all(|&g| g > 0.0));
        let again = bursty_workload(2, 30, 5, SystemKind::CatdetA, profile);
        assert_eq!(specs[0].source, again[0].source);
    }

    #[test]
    fn step_workload_switches_rate_once() {
        let profile = BurstProfile {
            quiet_fps: 5.0,
            burst_fps: 20.0,
            quiet_s: 1.0,
            burst_s: 1.0,
        };
        let specs = step_workload(1, 20, 3, SystemKind::CatdetA, profile, 1.0);
        let arrivals: Vec<f64> = specs[0]
            .source
            .frames()
            .iter()
            .map(|f| f.arrival_s)
            .collect();
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        // Before the step every gap is the quiet period, after it the
        // burst period; the sequence of gaps switches exactly once.
        let switch = gaps.iter().position(|&g| (g - 0.05).abs() < 1e-9).unwrap();
        assert!(gaps[..switch].iter().all(|&g| (g - 0.2).abs() < 1e-9));
        assert!(gaps[switch..].iter().all(|&g| (g - 0.05).abs() < 1e-9));
    }

    #[test]
    fn ramp_workload_gaps_shrink_then_plateau() {
        // 2 fps → 20 fps over 2 s: the first gap is exactly the start
        // period, gaps shrink monotonically through the ramp, and once a
        // frame lands past ramp_s every later gap is the end period.
        let specs = ramp_workload(2, 40, 9, SystemKind::CatdetA, 2.0, 20.0, 2.0);
        assert_eq!(specs.len(), 2);
        let arrivals: Vec<f64> = specs[0]
            .source
            .frames()
            .iter()
            .map(|f| f.arrival_s)
            .collect();
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            (gaps[0] - 0.5).abs() < 1e-9,
            "first gap {} ≠ 1/2 s",
            gaps[0]
        );
        assert!(gaps.windows(2).all(|w| w[1] <= w[0] + 1e-9), "gaps grew");
        let plateau = arrivals.windows(2).position(|w| w[0] >= 2.0).unwrap();
        assert!(gaps[plateau..].iter().all(|&g| (g - 0.05).abs() < 1e-9));
        // Deterministic schedule.
        let again = ramp_workload(2, 40, 9, SystemKind::CatdetA, 2.0, 20.0, 2.0);
        assert_eq!(specs[0].source, again[0].source);
        assert_eq!(specs[1].source, again[1].source);
    }

    #[test]
    fn sine_workload_oscillates_within_the_rate_band() {
        // mean 10 fps, amplitude 6 fps, period 2 s: the first gap is
        // exactly 1/mean (sin 0 = 0), every gap stays inside the
        // [1/(mean+amp), 1/(mean−amp)] band, and both halves of the swing
        // actually occur.
        let specs = sine_workload(1, 60, 4, SystemKind::CatdetA, 10.0, 6.0, 2.0);
        let arrivals: Vec<f64> = specs[0]
            .source
            .frames()
            .iter()
            .map(|f| f.arrival_s)
            .collect();
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            (gaps[0] - 0.1).abs() < 1e-9,
            "first gap {} ≠ 1/10 s",
            gaps[0]
        );
        let (fast, slow) = (1.0 / 16.0, 1.0 / 4.0);
        assert!(gaps.iter().all(|&g| g >= fast - 1e-9 && g <= slow + 1e-9));
        assert!(gaps.iter().any(|&g| g < 0.1 - 1e-3), "never sped up");
        assert!(gaps.iter().any(|&g| g > 0.1 + 1e-3), "never slowed down");
        // Deterministic schedule.
        let again = sine_workload(1, 60, 4, SystemKind::CatdetA, 10.0, 6.0, 2.0);
        assert_eq!(specs[0].source, again[0].source);
    }

    #[test]
    #[should_panic(expected = "sine amplitude")]
    fn sine_amplitude_at_or_above_mean_is_rejected() {
        sine_workload(1, 4, 0, SystemKind::CatdetA, 5.0, 5.0, 1.0);
    }

    #[test]
    fn kitti_workload_is_homogeneous() {
        let specs = kitti_workload(3, 5, 1, SystemKind::SingleResnet50);
        assert!(specs.iter().all(|s| s.source.width == 1242.0));
        assert!(specs.iter().all(|s| (s.source.fps - 10.0).abs() < 1e-6));
    }
}
