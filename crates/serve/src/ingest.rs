//! Network-ingest glue: runs the front-door simulation as a
//! deterministic pre-pass, books its connection events into the flight
//! recorder, then serves the *delivered* streams.
//!
//! The pre-pass runs on the control thread on its own virtual-time
//! reactor, entirely before any shard engine starts. That ordering is
//! the determinism argument: the delivered timelines, the connection
//! events and their position in the recorder store cannot depend on
//! `--threads`, because no engine thread exists yet when they are
//! produced.

use crate::config::{IngestKind, ServeConfig};
use crate::fleet::{serve_fleet, serve_fleet_with_recorder, FleetReport};
use crate::scheduler::StreamSpec;
use catdet_net::{run_ingest, IngestOutcome};
use catdet_recorder::{Event, SharedRecorder};

/// Runs the front door over every spec's source and rebuilds the specs
/// around the delivered timelines (arrival = door drain time, frames =
/// the survivors).
fn ingest_pass(
    specs: Vec<StreamSpec>,
    cfg: &ServeConfig,
    seed: u64,
) -> (Vec<StreamSpec>, IngestOutcome) {
    assert!(
        cfg.ingest.kind == IngestKind::Net,
        "serve_net_fleet needs IngestKind::Net (cfg.ingest is direct)"
    );
    let sources: Vec<_> = specs.iter().map(|s| s.source.clone()).collect();
    let params = cfg.ingest.net_params(seed, cfg.queue_capacity);
    let outcome = run_ingest(&sources, &params);
    let specs = specs
        .into_iter()
        .zip(outcome.delivered.iter().cloned())
        .map(|(spec, delivered)| StreamSpec {
            source: delivered,
            factory: spec.factory,
            priority: spec.priority,
            policy: spec.policy,
        })
        .collect();
    (specs, outcome)
}

/// Books the connection-event log into the store, stamped on shard 0
/// (the front door is fleet infrastructure, not shard state).
fn record_conn_events(outcome: &IngestOutcome, recorder: &SharedRecorder) {
    for e in &outcome.events {
        recorder.record(
            e.t_s,
            0,
            Event::Conn {
                stream: e.client,
                code: e.kind.code(),
                frame: e.frame,
                detail: e.detail,
            },
        );
    }
}

/// Runs a sharded fleet whose streams arrive through the network front
/// door: every camera connection is simulated to completion first
/// (CamLink wire, bounded receive window, per-client door rate limit),
/// then the delivered streams are served exactly as
/// [`serve_fleet`] would. The report carries the per-client
/// [`IngestReport`](catdet_net::IngestReport).
///
/// `seed` keys all connection randomness; the entire run — ingest
/// timeline, events, serving output — is a pure function of
/// `(specs, cfg, seed)` at every thread count.
///
/// # Panics
///
/// Panics if `cfg.ingest.kind` is not [`IngestKind::Net`], or on an
/// invalid configuration.
pub fn serve_net_fleet(specs: Vec<StreamSpec>, cfg: &ServeConfig, seed: u64) -> FleetReport {
    if cfg.recorder.enabled {
        cfg.validate();
        let recorder = cfg.recorder.build();
        return serve_net_fleet_with_recorder(specs, cfg, seed, &recorder);
    }
    let (specs, outcome) = ingest_pass(specs, cfg, seed);
    let mut report = serve_fleet(specs, cfg);
    report.ingest = Some(outcome.report);
    report
}

/// [`serve_net_fleet`] with every event — connection lifecycle included
/// — booked into `recorder`. Connection events are recorded before any
/// engine runs, so the store layout is bit-identical at every thread
/// count.
pub fn serve_net_fleet_with_recorder(
    specs: Vec<StreamSpec>,
    cfg: &ServeConfig,
    seed: u64,
    recorder: &SharedRecorder,
) -> FleetReport {
    let (specs, outcome) = ingest_pass(specs, cfg, seed);
    record_conn_events(&outcome, recorder);
    let mut report = serve_fleet_with_recorder(specs, cfg, recorder);
    report.ingest = Some(outcome.report);
    report
}
