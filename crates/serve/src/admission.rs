//! Per-stream admission control: decide at arrival time whether a frame
//! may enter its queue at all.
//!
//! Backpressure ([`DropPolicy`](crate::DropPolicy)) sheds load *after* a
//! queue fills; admission control sheds it *at the door*, with policy —
//! rate limits per camera, or priority classes where low-priority streams
//! are shed first under fleet-wide overload. Every decision is a pure
//! function of virtual time and queue state, so admission outcomes are
//! bit-reproducible; rejections are stamped into an [`AdmissionEvent`]
//! timeline and counted per stream (a rejected frame also counts as
//! dropped, keeping `arrived == processed + dropped` exact).

use crate::config::{AdmissionConfig, AdmissionKind};
use serde::{Deserialize, Serialize};

/// Everything an admission policy may look at for one arriving frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionContext {
    /// Arrival time of the frame (virtual seconds).
    pub now_s: f64,
    /// Stream the frame belongs to.
    pub stream: usize,
    /// The stream's priority class (0 is highest).
    pub priority: u8,
    /// Frames queued across all streams at this instant.
    pub total_backlog: usize,
}

/// Why a frame was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionReason {
    /// The stream exhausted its token bucket.
    RateLimited,
    /// The fleet was overloaded and the stream's priority class was shed.
    Shed,
}

impl AdmissionReason {
    /// Short label used in timeline printouts.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionReason::RateLimited => "rate-limited",
            AdmissionReason::Shed => "shed",
        }
    }

    /// Stable integer code used in flight-recorder admission events.
    pub fn code(&self) -> u64 {
        match self {
            AdmissionReason::RateLimited => 0,
            AdmissionReason::Shed => 1,
        }
    }

    /// Parses a flight-recorder reason code.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(AdmissionReason::RateLimited),
            1 => Some(AdmissionReason::Shed),
            _ => None,
        }
    }
}

/// One admission rejection, stamped in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionEvent {
    /// Arrival time of the refused frame.
    pub t_s: f64,
    /// Stream the frame belonged to (fleet-wide id, matching
    /// [`StreamReport::stream_id`](crate::StreamReport::stream_id)).
    pub stream: usize,
    /// Why it was refused.
    pub reason: AdmissionReason,
}

/// One downgrade-before-drop transition, stamped in virtual time.
///
/// With [`AdmissionConfig::downgrade`](crate::AdmissionConfig::downgrade)
/// enabled, the first shed verdict against a stream downgrades its frame
/// policy one rung instead of dropping the frame (`on = true`); the next
/// clean admit restores it (`on = false`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DowngradeEvent {
    /// Arrival time of the frame that tripped (or cleared) the downgrade.
    pub t_s: f64,
    /// Stream whose policy class changed (fleet-wide id).
    pub stream: usize,
    /// `true` when entering the degraded rung, `false` on restore.
    pub on: bool,
}

/// A per-arrival admission decision.
///
/// Implementations must be deterministic functions of the context and
/// their own state; `Err` carries the rejection reason.
pub trait AdmissionPolicy: Send {
    /// Stable policy name (reports, CLI).
    fn name(&self) -> &'static str;

    /// Admits (`Ok`) or refuses (`Err`) one arriving frame.
    fn admit(&mut self, ctx: &AdmissionContext) -> Result<(), AdmissionReason>;

    /// Notifies the policy that a stream slot was appended to the fleet it
    /// gates (a live migration admitting a stream onto this shard). Stateful
    /// policies grow their per-stream state; the default is a no-op.
    fn on_stream_added(&mut self, _priority: u8) {}

    /// Whether the policy's rejections may be converted into policy
    /// downgrades (the downgrade-before-drop rung). Only load-shedding
    /// rejections qualify — a rate-limit refusal reflects a per-camera
    /// contract, not fleet overload, so [`TokenBucket`] keeps the default.
    fn supports_downgrade(&self) -> bool {
        false
    }
}

/// Admits every frame (the no-admission-control baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &'static str {
        "admit-all"
    }

    fn admit(&mut self, _ctx: &AdmissionContext) -> Result<(), AdmissionReason> {
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_s: f64,
}

/// Per-stream token-bucket rate limiting.
///
/// Each stream owns a bucket holding up to `burst` tokens, refilled at
/// `rate_fps` tokens per virtual second; a frame is admitted iff a whole
/// token is available. Buckets start full, so a camera may burst up to
/// `burst` frames before settling at its sustained rate.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_fps: f64,
    burst: f64,
    buckets: Vec<Bucket>,
}

impl TokenBucket {
    /// One bucket per stream, all starting full.
    pub fn new(rate_fps: f64, burst: f64, streams: usize) -> Self {
        Self {
            rate_fps,
            burst,
            buckets: vec![
                Bucket {
                    tokens: burst,
                    last_s: 0.0,
                };
                streams
            ],
        }
    }
}

impl AdmissionPolicy for TokenBucket {
    fn name(&self) -> &'static str {
        "token-bucket"
    }

    fn admit(&mut self, ctx: &AdmissionContext) -> Result<(), AdmissionReason> {
        let b = &mut self.buckets[ctx.stream];
        b.tokens = (b.tokens + (ctx.now_s - b.last_s) * self.rate_fps).min(self.burst);
        b.last_s = ctx.now_s;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            Err(AdmissionReason::RateLimited)
        }
    }

    /// A migrated stream starts with a full bucket on its new shard (the
    /// conservative direction: it can burst at most `burst` extra frames
    /// once per migration; sustained rates are unaffected).
    fn on_stream_added(&mut self, _priority: u8) {
        self.buckets.push(Bucket {
            tokens: self.burst,
            last_s: 0.0,
        });
    }
}

/// Priority classes shed lowest-first under fleet-wide overload.
///
/// The overload level is `total_backlog / backlog_watermark` (integer
/// division): at level 0 everyone is admitted; each further level sheds
/// one more priority class from the bottom, so at level 1 the lowest
/// class is refused, at level 2 the two lowest, and so on. Priority 0 is
/// shed last.
#[derive(Debug, Clone, Copy)]
pub struct PriorityShed {
    backlog_watermark: usize,
    classes: usize,
}

impl PriorityShed {
    /// Builds the policy for a fleet whose streams carry the given
    /// priorities (`classes` is inferred as `max priority + 1`).
    pub fn new(backlog_watermark: usize, priorities: &[u8]) -> Self {
        assert!(backlog_watermark >= 1, "watermark must be at least 1");
        let classes = priorities.iter().copied().max().unwrap_or(0) as usize + 1;
        Self {
            backlog_watermark,
            classes,
        }
    }
}

impl AdmissionPolicy for PriorityShed {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn admit(&mut self, ctx: &AdmissionContext) -> Result<(), AdmissionReason> {
        let level = ctx.total_backlog / self.backlog_watermark;
        if (ctx.priority as usize) < self.classes.saturating_sub(level) {
            Ok(())
        } else {
            Err(AdmissionReason::Shed)
        }
    }

    /// A migrating stream may carry a lower priority class than any the
    /// shard has seen; widen the class count so it sheds before them.
    fn on_stream_added(&mut self, priority: u8) {
        self.classes = self.classes.max(priority as usize + 1);
    }

    fn supports_downgrade(&self) -> bool {
        true
    }
}

/// Instantiates the configured admission policy for a fleet with the
/// given per-stream priorities.
pub fn build_admission(cfg: &AdmissionConfig, priorities: &[u8]) -> Box<dyn AdmissionPolicy> {
    match cfg.kind {
        AdmissionKind::AdmitAll => Box::new(AdmitAll),
        AdmissionKind::TokenBucket => {
            Box::new(TokenBucket::new(cfg.rate_fps, cfg.burst, priorities.len()))
        }
        AdmissionKind::Priority => Box::new(PriorityShed::new(cfg.backlog_watermark, priorities)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(now_s: f64, stream: usize, priority: u8, backlog: usize) -> AdmissionContext {
        AdmissionContext {
            now_s,
            stream,
            priority,
            total_backlog: backlog,
        }
    }

    #[test]
    fn admit_all_admits() {
        let mut p = AdmitAll;
        assert!(p.admit(&ctx(0.0, 0, 3, 1_000)).is_ok());
    }

    #[test]
    fn token_bucket_caps_bursts_then_refills() {
        let mut p = TokenBucket::new(10.0, 2.0, 1);
        // Burst of three at t=0: two tokens, third refused.
        assert!(p.admit(&ctx(0.0, 0, 0, 0)).is_ok());
        assert!(p.admit(&ctx(0.0, 0, 0, 0)).is_ok());
        assert_eq!(
            p.admit(&ctx(0.0, 0, 0, 0)),
            Err(AdmissionReason::RateLimited)
        );
        // 0.1 s later one token has refilled.
        assert!(p.admit(&ctx(0.1, 0, 0, 0)).is_ok());
        assert_eq!(
            p.admit(&ctx(0.1, 0, 0, 0)),
            Err(AdmissionReason::RateLimited)
        );
    }

    #[test]
    fn token_buckets_are_per_stream() {
        let mut p = TokenBucket::new(1.0, 1.0, 2);
        assert!(p.admit(&ctx(0.0, 0, 0, 0)).is_ok());
        // Stream 0 is empty, stream 1 still has its token.
        assert!(p.admit(&ctx(0.0, 0, 0, 0)).is_err());
        assert!(p.admit(&ctx(0.0, 1, 0, 0)).is_ok());
    }

    #[test]
    fn priority_sheds_lowest_class_first() {
        let mut p = PriorityShed::new(10, &[0, 1, 2]);
        // Calm: everyone admitted.
        assert!(p.admit(&ctx(0.0, 2, 2, 9)).is_ok());
        // Level 1: class 2 shed, classes 0 and 1 admitted.
        assert_eq!(p.admit(&ctx(0.0, 2, 2, 10)), Err(AdmissionReason::Shed));
        assert!(p.admit(&ctx(0.0, 1, 1, 10)).is_ok());
        assert!(p.admit(&ctx(0.0, 0, 0, 10)).is_ok());
        // Level 2: only class 0 admitted.
        assert_eq!(p.admit(&ctx(0.0, 1, 1, 20)), Err(AdmissionReason::Shed));
        assert!(p.admit(&ctx(0.0, 0, 0, 20)).is_ok());
    }

    #[test]
    fn only_priority_shedding_supports_downgrade() {
        assert!(PriorityShed::new(10, &[0, 1]).supports_downgrade());
        assert!(!AdmitAll.supports_downgrade());
        assert!(!TokenBucket::new(10.0, 2.0, 1).supports_downgrade());
    }

    #[test]
    fn build_admission_selects_the_kind() {
        let priorities = [0u8, 1];
        let cfg = AdmissionConfig::token_bucket(5.0, 3.0);
        assert_eq!(build_admission(&cfg, &priorities).name(), "token-bucket");
        assert_eq!(
            build_admission(&AdmissionConfig::admit_all(), &priorities).name(),
            "admit-all"
        );
        assert_eq!(
            build_admission(&AdmissionConfig::priority(8), &priorities).name(),
            "priority"
        );
    }
}
