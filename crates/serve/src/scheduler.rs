//! The frame scheduler: virtual-time discrete events over a real worker pool.
//!
//! # Execution model
//!
//! Serving is simulated in **virtual time** (the [`GpuTimingModel`] from
//! `catdet-core` prices every launch), while the detector *compute* — the
//! actual per-frame simulation, NMS and tracker updates — runs for real on
//! a pool of OS worker threads. Pipelines advance through the resumable
//! [`StagedDetector`] protocol, so the scheduler sees (and can suspend at)
//! each frame's stage boundaries instead of one opaque call. The event
//! loop:
//!
//! 1. ingests camera arrivals up to the current virtual time `t`, applying
//!    the bounded-queue drop policy;
//! 2. lets every worker free at `t` form a micro-batch: up to
//!    `max_batch` frames from *distinct* streams chosen by the schedule
//!    policy (a worker may instead wait up to `batch_window_s` for more
//!    streams to contribute);
//! 3. executes the **proposal stage** of all formed batches on the thread
//!    pool, then prices each batch's proposal launches as one fused GPU
//!    dispatch (`αΣW + b` instead of `Σ(αW + b)`), leaving every frame
//!    suspended at its refinement boundary;
//! 4. resumes the refinement stage:
//!    * with [`fuse_refinement`](ServeConfig::fuse_refinement) **off**,
//!      each frame's refinement launch is priced per-frame on its worker's
//!      timeline, exactly as before the staged redesign;
//!    * with it **on**, the suspended frames' [`RefinementWork`] items
//!      enter a fleet-wide fuse pool; after at most
//!      [`refine_batch_window_s`](ServeConfig::refine_batch_window_s) the
//!      pool is flushed as **one** fused refinement dispatch shared by all
//!      contributing streams — across batches and across workers;
//! 5. advances `t` to the next arrival, batch completion, refinement fuse
//!    deadline, window deadline, or control tick.
//!
//! A **control plane** rides on the same virtual clock: arriving frames
//! pass an [`AdmissionPolicy`] before
//! entering their queue, and at every control interval a
//! [`ScalePolicy`] may grow or shrink the
//! *active* worker set (deactivated workers drain their current batch,
//! then stop taking work). Both decisions read only virtual-time counters
//! and are stamped into `ScaleEvent`/`AdmissionEvent` timelines.
//!
//! Scheduling decisions depend only on virtual quantities, never on
//! wall-clock thread timing, so a run is **bit-deterministic** for a given
//! configuration regardless of worker count or machine load — which is what
//! makes the cross-stream state-isolation tests (and the golden
//! scale-timeline tests) possible.
//!
//! [`GpuTimingModel`]: catdet_core::GpuTimingModel
//! [`StagedDetector`]: catdet_core::StagedDetector

use crate::admission::{
    build_admission, AdmissionContext, AdmissionEvent, AdmissionPolicy, AdmissionReason,
    DowngradeEvent,
};
use crate::autoscale::{
    window_p99, ControlSample, FixedScale, HysteresisScale, PredictiveScale, ProportionalScale,
    ScaleEvent, ScalePolicy,
};
use crate::config::{DropPolicy, ScalePolicyKind, SchedulePolicy, ServeConfig};
use crate::forecast::{ArrivalHistory, RateForecaster};
use crate::replay::StreamSnapshot;
use crate::report::{BatchRecord, BatchStage, BatchStats, LatencyStats, ServeReport, StreamReport};
use crate::shard::RebalanceSignal;
use catdet_core::{
    output_hash, FrameOutput, OpsBreakdown, PolicedPipeline, PolicyConfig, PolicyDecision,
    PolicyKind, RefinementWork, StageStep, StagedDetector, SystemFactory,
};
use catdet_data::{Frame, StreamSource};
use catdet_recorder::{
    Event, FlightRecorder, NullRecorder, SharedRecorder, STAGE_PROPOSAL, STAGE_REFINEMENT,
};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

/// One camera stream plus the recipe for its private detection pipeline.
pub struct StreamSpec {
    /// The frame feed.
    pub source: StreamSource,
    /// Factory building this stream's own staged pipeline instance.
    pub factory: Arc<dyn SystemFactory>,
    /// Admission priority class (0 is highest; only consulted by the
    /// priority admission policy).
    pub priority: u8,
    /// Per-stream quality class: this stream's own detect-or-track frame
    /// policy, overriding [`ServeConfig::policy`](crate::ServeConfig::policy).
    /// `None` (the default) follows the run-wide setting.
    pub policy: Option<PolicyConfig>,
}

impl StreamSpec {
    /// Pairs a stream with its pipeline factory (top priority class).
    pub fn new(source: StreamSource, factory: Arc<dyn SystemFactory>) -> Self {
        Self {
            source,
            factory,
            priority: 0,
            policy: None,
        }
    }

    /// Returns a copy with a different admission priority class.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Returns a copy pinned to its own frame-policy quality class.
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// Runs the serving loop to completion and reports.
///
/// Every stream gets a freshly built system (no state is ever shared), all
/// frames are processed in per-stream arrival order, and backpressure drops
/// are counted exactly: for each stream,
/// `arrived == processed + dropped + still-queued(0 at exit)`.
///
/// This is the single-scheduler entry point; a sharded fleet runs one
/// embedded engine per shard — see [`serve_fleet`](crate::serve_fleet).
///
/// # Panics
///
/// Panics on an invalid configuration (see [`ServeConfig::validate`]) or if
/// a detection system panics on a worker thread.
pub fn serve(streams: Vec<StreamSpec>, cfg: &ServeConfig) -> ServeReport {
    if cfg.recorder.enabled {
        cfg.validate();
        // Config-enabled recording without a caller-held handle: the store
        // is dropped with the run. Callers that want to query or replay
        // pass their own recorder via [`serve_with_recorder`].
        let recorder = cfg.recorder.build();
        return serve_with_recorder(streams, cfg, &recorder);
    }
    cfg.validate();
    let mut engine = Engine::new(streams, cfg, 0.0, false, Box::new(NullRecorder));
    engine.run_until(f64::INFINITY);
    let report = engine.finish_report();
    engine.shutdown();
    report
}

/// Runs the serving loop with every event booked into `recorder` (as
/// shard 0), leaving the caller holding the store for telemetry queries,
/// saving, and time-travel replay.
///
/// The recorder rides outside the scheduling loop: a recorded run books
/// the **same** virtual-time decisions and produces a bit-identical
/// [`ServeReport`] to an unrecorded one.
pub fn serve_with_recorder(
    streams: Vec<StreamSpec>,
    cfg: &ServeConfig,
    recorder: &SharedRecorder,
) -> ServeReport {
    cfg.validate();
    let mut engine = Engine::new(streams, cfg, 0.0, false, Box::new(recorder.handle(0)));
    engine.run_until(f64::INFINITY);
    let report = engine.finish_report();
    engine.shutdown();
    recorder.seal_open_chunks();
    report
}

/// A unit of work shipped to the thread pool: the stream's system travels
/// with its stage instruction and comes back suspended (or finished).
///
/// Frames cross the thread boundary as `Arc` handles — dispatching a
/// frame never deep-clones its annotations, and the per-stream
/// `FrameScratch` owned by each staged system does the one (buffer-reusing)
/// copy on `begin_frame`.
struct Job {
    stream: usize,
    kind: JobKind,
    system: Box<dyn StagedDetector>,
}

enum JobKind {
    /// Begin the frame and execute its proposal stage (if it has one),
    /// suspending at the refinement boundary.
    Proposal { frame: Arc<Frame> },
    /// Resume at the refinement boundary and finish the frame.
    Refine { work: RefinementWork },
}

/// Where a job left its system.
enum StageOutcome {
    /// Suspended at the refinement boundary; carries the *executed*
    /// proposal cost and the priced pending refinement work.
    AtRefinement {
        proposal_macs: f64,
        refine: RefinementWork,
    },
    /// The frame ran to completion.
    Done(FrameOutput),
}

/// A per-stream slot holding a suspended system and where its stage
/// left off (`None` until the pool reports back).
type StageSlot = Option<(Box<dyn StagedDetector>, StageOutcome)>;

struct JobResult {
    stream: usize,
    system: Box<dyn StagedDetector>,
    outcome: Result<StageOutcome, String>,
}

fn run_stage(system: &mut Box<dyn StagedDetector>, kind: JobKind) -> StageOutcome {
    match kind {
        JobKind::Proposal { frame } => {
            system.begin_frame(&frame);
            let mut proposal_macs = 0.0;
            loop {
                match system.step() {
                    StageStep::NeedsProposal(work) => {
                        // Accumulate: the protocol permits multi-pass
                        // proposal stages, each priced separately.
                        proposal_macs += system.complete_proposal(work).macs;
                    }
                    StageStep::NeedsRefinement(refine) => {
                        return StageOutcome::AtRefinement {
                            proposal_macs,
                            refine,
                        };
                    }
                    StageStep::Done(out) => return StageOutcome::Done(out),
                }
            }
        }
        JobKind::Refine { work } => {
            system.complete_refinement(work);
            match system.step() {
                StageStep::Done(out) => StageOutcome::Done(out),
                _ => panic!("refinement stage did not finish the frame"),
            }
        }
    }
}

enum WorkerState {
    Idle,
    /// Holding an under-full batch open until `deadline`.
    Waiting {
        deadline: f64,
    },
    Busy {
        until: f64,
    },
}

pub(crate) struct StreamRt {
    /// The stream's fleet-wide identity ([`StreamSource::stream_id`]): the
    /// engine makes no assumption that it equals the local slot index, so
    /// a shard serving an arbitrary subset of a fleet reports correctly.
    global_id: usize,
    /// Admission priority class (travels with the stream on migration).
    priority: u8,
    /// Set when the stream was migrated away to another shard; the slot
    /// stays as an inert tombstone so local indices remain stable.
    departed: bool,
    frames: Vec<(f64, Arc<Frame>)>,
    /// Next frame (index into `frames`) that has not yet arrived.
    next_arrival: usize,
    /// Arrived, not yet scheduled frames (indices into `frames`).
    queue: VecDeque<usize>,
    /// The stream's pipeline; `None` while a frame is on the thread pool
    /// or suspended at a stage boundary.
    system: Option<Box<dyn StagedDetector>>,
    /// Virtual time until which the stream's pipeline is occupied.
    busy_until: f64,
    system_name: String,
    arrived: usize,
    processed: usize,
    dropped: usize,
    rejected: usize,
    /// Frames completed from tracker state alone (policy decided Coast).
    coasted: usize,
    /// Frames skipped outright by a stride policy.
    skipped: usize,
    /// Admission's downgrade-before-drop rung is currently holding this
    /// stream's policy one class down. The authoritative flag travels
    /// inside the policied pipeline (so it migrates and snapshots); this
    /// mirror is what admission reads without touching the system box.
    degraded: bool,
    /// Bucketed arrival counts feeding the rate forecaster. Owned by the
    /// stream (not the engine) so it migrates with it and a forecast is
    /// identical before and after an `extract_stream`/`admit_stream` hop.
    history: ArrivalHistory,
    latencies: Vec<f64>,
    ops: OpsBreakdown,
    outputs: Vec<(usize, Vec<catdet_metrics::Detection>)>,
}

/// A stream lifted out of one shard's engine for live migration: the
/// complete per-stream runtime — suspended pipeline (tracker and
/// `FrameScratch` state travel inside the boxed system), undelivered
/// frames, queued backlog, and every accounting counter — so the target
/// shard continues it with exact frame conservation.
///
/// Extraction is only possible at a **stage-boundary suspend point**: the
/// pipeline must be parked in its slot (no stage job in flight on the
/// thread pool, no frame waiting in a refinement fuse pool), which is
/// precisely when all cross-frame state is consolidated in the system box.
pub(crate) struct MigratedStream {
    rt: StreamRt,
}

impl MigratedStream {
    /// The stream's fleet-wide id.
    pub(crate) fn global_id(&self) -> usize {
        self.rt.global_id
    }

    /// Frames currently queued (the backlog the migration relocates).
    pub(crate) fn queued(&self) -> usize {
        self.rt.queue.len()
    }
}

struct PlannedBatch {
    worker: usize,
    start: f64,
    /// `(stream, frame_idx, arrival_s)` in schedule order.
    items: Vec<(usize, usize, f64)>,
}

/// A frame suspended at its refinement boundary, waiting in a fuse pool
/// for a shared dispatch (the engine's own pool, or — in a sharded fleet
/// with cross-shard fusion — the fleet-level pool spanning engines).
pub(crate) struct PendingRefine {
    stream: usize,
    /// Worker slot whose batch this frame came from (held open until the
    /// dispatch completes).
    worker: usize,
    frame_idx: usize,
    arrival_s: f64,
    /// Virtual time the frame reached the boundary (proposal priced).
    ready_s: f64,
    /// Latest dispatch time: `ready_s + refine_batch_window_s`.
    deadline_s: f64,
    work: RefinementWork,
    system: Box<dyn StagedDetector>,
}

impl PendingRefine {
    /// Priced MACs of the pending refinement launch.
    pub(crate) fn macs(&self) -> f64 {
        self.work.macs
    }

    /// Local stream slot within the owning engine.
    pub(crate) fn stream(&self) -> usize {
        self.stream
    }
}

/// The embeddable per-shard scheduler: one virtual-time event loop over
/// one worker pool. [`serve`] runs a single engine to completion;
/// [`serve_fleet`](crate::serve_fleet) runs one per shard, advancing them
/// in lock-step epochs via [`run_until`](Engine::run_until) and moving
/// streams between them with [`extract_stream`](Engine::extract_stream) /
/// [`admit_stream`](Engine::admit_stream).
pub(crate) struct Engine {
    cfg: ServeConfig,
    /// The engine's own virtual clock (injected at construction, advanced
    /// only by [`run_until`] / [`advance_clock_to`](Engine::advance_clock_to)).
    clock: f64,
    /// When set, the engine never fires its refinement fuse pool itself:
    /// a fleet coordinator drains it across shards (cross-shard fusion).
    external_refine: bool,
    streams: Vec<StreamRt>,
    /// Worker slots, sized for the autoscale ceiling; only the first
    /// `active_workers` are eligible for new batches, but slots beyond
    /// that still finish whatever they were running when a scale-down
    /// struck.
    workers: Vec<WorkerState>,
    active_workers: usize,
    rr_cursor: usize,
    batch_stats: BatchStats,
    last_completion: f64,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<JobResult>,
    pool: Vec<thread::JoinHandle<()>>,
    // Control plane: everything below is driven purely by virtual time.
    scale_policy: Box<dyn ScalePolicy>,
    admission: Box<dyn AdmissionPolicy>,
    priorities: Vec<u8>,
    /// Shared per-stream arrival-rate forecaster (a pure function of each
    /// stream's [`ArrivalHistory`]), consulted by the predictive scale
    /// policy and the fleet's predicted-load rebalance signal.
    forecaster: RateForecaster,
    /// Control ticks aggregate forecasts into the [`ControlSample`] (and
    /// book `Forecast` events) only when the predictive policy runs, so
    /// every other policy's recorded byte stream is untouched.
    forecast_active: bool,
    /// Next control tick, `INFINITY` when autoscaling is off.
    next_control_s: f64,
    /// Frames queued across all streams (kept in lock-step with the
    /// per-stream queues so admission can read it in O(1)).
    total_queued: usize,
    /// Integral of provisioned workers over virtual time: the active set
    /// plus any deactivated slots still draining a batch, so a scale-down
    /// keeps paying for in-flight compute.
    worker_seconds: f64,
    /// Summed virtual time of all priced GPU dispatches (launch time plus
    /// the per-stage framework overhead) — the figure refinement fusion
    /// exists to shrink.
    gpu_dispatch_s: f64,
    /// Frames suspended at the refinement boundary (only populated when
    /// `fuse_refinement` is on).
    refine_pending: Vec<PendingRefine>,
    /// Per worker slot: the end of any per-frame work a held-open batch
    /// priced on its timeline before suspending the rest in the fuse
    /// pool; a lower bound on the slot's release time. Zero when the slot
    /// holds nothing.
    hold_floor: Vec<f64>,
    // Per-control-window counters, reset at every tick. Latencies carry
    // their completion time so a tick only consumes samples that actually
    // completed inside its window (batches priced before a tick can
    // finish after it). Only populated while autoscaling is on.
    win_arrived: usize,
    win_shed: usize,
    win_latencies: Vec<(f64, f64)>,
    scale_events: Vec<ScaleEvent>,
    admission_events: Vec<AdmissionEvent>,
    downgrade_events: Vec<DowngradeEvent>,
    batch_log: Vec<BatchRecord>,
    // Dispatch scratch, reused across events so the steady-state loop
    // stops allocating per dispatch. `slot_items` is per worker *slot*
    // (provisioned up to the autoscale ceiling), so the buffers survive
    // active-set resizes.
    /// Per-slot batch item buffers lent to `PlannedBatch`.
    slot_items: Vec<Vec<(usize, usize, f64)>>,
    /// Job staging buffer (proposal and refinement dispatches alternate).
    job_buf: Vec<Job>,
    /// Pool of per-stream result buffers for `run_stage_jobs`.
    result_pool: Vec<Vec<StageSlot>>,
    /// Per-stream refinement completion metadata buffer.
    refine_meta_buf: Vec<Option<(usize, f64, f64)>>,
    /// Stream selection buffer for `pick_batch_into`.
    chosen_buf: Vec<usize>,
    /// Flight-recorder sink ([`NullRecorder`] when recording is off —
    /// every site is guarded by `enabled()` so the disabled path builds
    /// no events).
    recorder: Box<dyn FlightRecorder>,
}

pub(crate) const EPS: f64 = 1e-9;

impl Engine {
    pub(crate) fn new(
        specs: Vec<StreamSpec>,
        cfg: &ServeConfig,
        start_clock: f64,
        external_refine: bool,
        recorder: Box<dyn FlightRecorder>,
    ) -> Self {
        let priorities: Vec<u8> = specs.iter().map(|spec| spec.priority).collect();
        let streams: Vec<StreamRt> = specs
            .into_iter()
            .map(|spec| {
                // Streams get a policy layer only when one can matter: a
                // non-default policy (run-wide or per-stream), or the
                // downgrade rung (which demotes even always-detect
                // streams). The default path builds the bare pipeline —
                // bit-identical to pre-policy behaviour by construction.
                let policy = spec.policy.unwrap_or(cfg.policy);
                let system = if policy.kind != PolicyKind::AlwaysDetect || cfg.admission.downgrade {
                    Box::new(PolicedPipeline::new(spec.factory.build_staged(), policy))
                        as Box<dyn StagedDetector>
                } else {
                    spec.factory.build_staged()
                };
                StreamRt {
                    global_id: spec.source.stream_id,
                    priority: spec.priority,
                    departed: false,
                    system_name: system.name(),
                    frames: spec
                        .source
                        .into_iter()
                        .map(|sf| (sf.arrival_s, Arc::new(sf.frame)))
                        .collect(),
                    next_arrival: 0,
                    queue: VecDeque::new(),
                    system: Some(system),
                    busy_until: 0.0,
                    arrived: 0,
                    processed: 0,
                    dropped: 0,
                    rejected: 0,
                    coasted: 0,
                    skipped: 0,
                    degraded: false,
                    history: ArrivalHistory::new(&cfg.forecast),
                    latencies: Vec::new(),
                    ops: OpsBreakdown::default(),
                    outputs: Vec::new(),
                }
            })
            .collect();

        let autoscaling = cfg.autoscale.enabled();
        let scale_policy: Box<dyn ScalePolicy> = match cfg.autoscale.policy {
            ScalePolicyKind::Fixed => Box::new(FixedScale),
            ScalePolicyKind::Hysteresis => Box::new(HysteresisScale::from_config(&cfg.autoscale)),
            ScalePolicyKind::Proportional => {
                Box::new(ProportionalScale::from_config(&cfg.autoscale))
            }
            ScalePolicyKind::Predictive => {
                Box::new(PredictiveScale::from_config(&cfg.autoscale, &cfg.forecast))
            }
        };
        let admission = build_admission(&cfg.admission, &priorities);
        // With autoscaling on, slots (and real threads) are provisioned up
        // to the ceiling; the initial configured count seeds the active
        // set within the controller's bounds.
        let (slots, active_workers) = if autoscaling {
            (
                cfg.workers.max(cfg.autoscale.max_workers),
                cfg.workers
                    .clamp(cfg.autoscale.min_workers, cfg.autoscale.max_workers),
            )
        } else {
            (cfg.workers, cfg.workers)
        };

        let (job_tx, job_rx) = channel::<Job>();
        let (result_tx, result_rx) = channel::<JobResult>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let pool = (0..slots)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                thread::spawn(move || loop {
                    let job = match job_rx.lock().expect("job queue poisoned").recv() {
                        Ok(job) => job,
                        Err(_) => return, // serving finished
                    };
                    let Job {
                        stream,
                        kind,
                        mut system,
                    } = job;
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_stage(&mut system, kind)
                    }))
                    .map_err(|e| panic_message(&e));
                    if result_tx
                        .send(JobResult {
                            stream,
                            system,
                            outcome,
                        })
                        .is_err()
                    {
                        return;
                    }
                })
            })
            .collect();

        Self {
            streams,
            clock: start_clock,
            external_refine,
            workers: (0..slots).map(|_| WorkerState::Idle).collect(),
            active_workers,
            rr_cursor: 0,
            batch_stats: BatchStats::default(),
            last_completion: 0.0,
            job_tx: Some(job_tx),
            result_rx,
            pool,
            cfg: *cfg,
            scale_policy,
            admission,
            priorities,
            forecaster: RateForecaster::new(cfg.forecast),
            forecast_active: autoscaling
                && (cfg.autoscale.policy == ScalePolicyKind::Predictive
                    || cfg.shard.rebalance_signal == RebalanceSignal::Predicted),
            next_control_s: if autoscaling {
                start_clock + cfg.autoscale.control_interval_s
            } else {
                f64::INFINITY
            },
            total_queued: 0,
            worker_seconds: 0.0,
            gpu_dispatch_s: 0.0,
            refine_pending: Vec::new(),
            hold_floor: vec![0.0; slots],
            win_arrived: 0,
            win_shed: 0,
            win_latencies: Vec::new(),
            scale_events: Vec::new(),
            admission_events: Vec::new(),
            downgrade_events: Vec::new(),
            batch_log: Vec::new(),
            slot_items: (0..slots).map(|_| Vec::new()).collect(),
            job_buf: Vec::new(),
            result_pool: Vec::new(),
            refine_meta_buf: Vec::new(),
            chosen_buf: Vec::new(),
            recorder,
        }
    }

    /// Integrates provisioned-worker time over `[from, to]`. Draining
    /// slots stop exactly at their batch's `until`, which is itself an
    /// event, so the count is constant over the span and the integral is
    /// exact.
    fn accrue_workers(&mut self, from: f64, to: f64) {
        let draining = self.workers[self.active_workers..]
            .iter()
            .filter(|w| matches!(w, WorkerState::Busy { .. }))
            .count();
        self.worker_seconds += (self.active_workers + draining) as f64 * (to - from);
    }

    /// Advances the event loop through every event at or before `limit`,
    /// leaving the clock at `min(limit, time the work ran out)`. Returns
    /// whether work remains beyond the limit.
    ///
    /// Passing `f64::INFINITY` runs to completion (the [`serve`] path —
    /// one call, bit-identical to the historical monolithic loop). A fleet
    /// passes its next coordination point (rebalance tick or cross-shard
    /// refinement deadline): between events nothing changes state, so
    /// stopping at a non-event instant and re-entering later is exact.
    pub(crate) fn run_until(&mut self, limit: f64) -> bool {
        loop {
            let now = self.clock;
            self.ingest_arrivals(now);
            self.control_ticks(now);
            self.step_workers(now);
            if !self.external_refine {
                self.fire_refinements(now);
            }
            match self.next_event(now) {
                Some(t) if t <= limit => {
                    self.accrue_workers(now, t);
                    self.clock = t;
                }
                Some(_) => {
                    if limit.is_finite() && limit > now {
                        self.accrue_workers(now, limit);
                        self.clock = limit;
                    }
                    return true;
                }
                None => return false,
            }
        }
    }

    /// Jumps a drained engine's clock forward to the fleet's current time
    /// (no worker-seconds accrue: the engine had no work, matching the
    /// monolithic loop's untimed tail). Used before re-admitting a
    /// migrated stream so its frames are never processed "in the past".
    pub(crate) fn advance_clock_to(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// The engine's next event time (`None` when fully drained), from the
    /// perspective of a fleet choosing its next coordination point.
    pub(crate) fn next_event_time(&self) -> Option<f64> {
        self.next_event(self.clock)
    }

    /// Earliest refinement fuse-pool deadline (`INFINITY` when empty).
    pub(crate) fn refine_deadline(&self) -> f64 {
        self.refine_pending
            .iter()
            .map(|p| p.deadline_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Removes and returns every fuse-pool frame ready by `due` (the
    /// extraction half of [`fire_refinements`], for a fleet-level fused
    /// dispatch spanning shards).
    pub(crate) fn take_ready_refinements(&mut self, due: f64) -> Vec<PendingRefine> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.refine_pending.len() {
            if self.refine_pending[i].ready_s <= due + EPS {
                out.push(self.refine_pending.remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    /// The fleet-wide id of a local stream slot.
    pub(crate) fn global_stream_id(&self, local: usize) -> usize {
        self.streams[local].global_id
    }

    /// Queued frames across this engine's live streams (the rebalancer's
    /// load signal).
    pub(crate) fn backlog(&self) -> usize {
        self.total_queued
    }

    /// Local slots of streams that can migrate right now: live, with
    /// their pipeline parked in its slot (a stage-boundary suspend point —
    /// no job on the pool, no frame in a fuse pool).
    pub(crate) fn migratable_streams(&self) -> impl Iterator<Item = usize> + '_ {
        self.streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.departed && s.system.is_some())
            .filter(|(_, s)| {
                // Still worth moving: the stream must have any future at all.
                !s.queue.is_empty() || s.next_arrival < s.frames.len()
            })
            .map(|(i, _)| i)
    }

    /// Queue length of a local stream slot.
    pub(crate) fn stream_backlog(&self, local: usize) -> usize {
        self.streams[local].queue.len()
    }

    /// One stream's forecast arrivals (frames) over the forecast horizon.
    fn forecast_frames(&self, s: &StreamRt, t: f64) -> f64 {
        let f = self.forecaster.forecast(&s.history, t);
        f.rate_fps * self.forecaster.config().horizon_s
    }

    /// Queued backlog plus forecast arrivals over the forecast horizon,
    /// summed across live streams — the fleet rebalancer's *predicted*
    /// load signal. A pure function of (config, histories, `t`), so it is
    /// identical at every `--threads` when read at a fleet barrier.
    pub(crate) fn predicted_backlog(&self, t: f64) -> f64 {
        self.streams
            .iter()
            .filter(|s| !s.departed)
            .map(|s| s.queue.len() as f64 + self.forecast_frames(s, t))
            .sum()
    }

    /// One local slot's predicted load (same units as
    /// [`predicted_backlog`](Self::predicted_backlog)).
    pub(crate) fn predicted_stream_backlog(&self, local: usize, t: f64) -> f64 {
        let s = &self.streams[local];
        s.queue.len() as f64 + self.forecast_frames(s, t)
    }

    /// Runs the forecaster over every live stream at control tick `t`:
    /// returns (summed rate, mean confidence) for the [`ControlSample`]
    /// and books one `Forecast` event per stream when recording.
    fn forecast_tick(&mut self, t: f64) -> (f64, f64) {
        let mut rate = 0.0;
        let mut conf = 0.0;
        let mut live = 0usize;
        for s in &self.streams {
            if s.departed {
                continue;
            }
            let f = self.forecaster.forecast(&s.history, t);
            rate += f.rate_fps;
            conf += f.confidence;
            live += 1;
            if self.recorder.enabled() {
                self.recorder.record(
                    t,
                    Event::Forecast {
                        stream: s.global_id,
                        rate_fps: f.rate_fps,
                        confidence: f.confidence,
                        phase: f.phase.code(),
                    },
                );
            }
        }
        if live == 0 {
            (0.0, 0.0)
        } else {
            (rate, conf / live as f64)
        }
    }

    /// Lifts a stream out of this engine for migration, leaving an inert
    /// tombstone in its slot. Returns `None` if the stream is not at a
    /// suspend point (stage job in flight or frame in a fuse pool) — the
    /// rebalancer simply tries again at the next tick.
    pub(crate) fn extract_stream(&mut self, local: usize) -> Option<MigratedStream> {
        let s = &mut self.streams[local];
        if s.departed || s.system.is_none() {
            return None;
        }
        let tombstone = StreamRt {
            global_id: s.global_id,
            priority: s.priority,
            departed: true,
            frames: Vec::new(),
            next_arrival: 0,
            queue: VecDeque::new(),
            system: None,
            busy_until: 0.0,
            system_name: String::new(),
            arrived: 0,
            processed: 0,
            dropped: 0,
            rejected: 0,
            coasted: 0,
            skipped: 0,
            degraded: false,
            history: ArrivalHistory::new(&self.cfg.forecast),
            latencies: Vec::new(),
            ops: OpsBreakdown::default(),
            outputs: Vec::new(),
        };
        let rt = std::mem::replace(s, tombstone);
        self.total_queued -= rt.queue.len();
        Some(MigratedStream { rt })
    }

    /// Re-admits a migrated stream into this engine at fleet time `now`:
    /// the stream keeps its global id, suspended pipeline, queued backlog
    /// and all accounting; per-stream admission state (token-bucket fill)
    /// restarts on the target shard. Exactly the frames that were queued
    /// or not yet arrived on the source shard remain to be served here,
    /// so fleet conservation is preserved by construction.
    pub(crate) fn admit_stream(&mut self, m: MigratedStream, now: f64) {
        self.advance_clock_to(now);
        let rt = m.rt;
        self.total_queued += rt.queue.len();
        self.priorities.push(rt.priority);
        self.admission.on_stream_added(rt.priority);
        self.streams.push(rt);
    }

    /// Fires every control tick due by `now`: samples the window, asks the
    /// scale policy, and applies (clamped) worker-count changes.
    fn control_ticks(&mut self, now: f64) {
        while self.next_control_s <= now + EPS {
            let t = self.next_control_s;
            self.next_control_s += self.cfg.autoscale.control_interval_s;
            // Consume exactly the latencies whose frames completed by this
            // tick; later completions stay queued for the next window.
            let mut window = Vec::new();
            self.win_latencies.retain(|&(completed_s, latency_s)| {
                if completed_s <= t + EPS {
                    window.push(latency_s);
                    false
                } else {
                    true
                }
            });
            let (forecast_rate_fps, forecast_confidence) = if self.forecast_active {
                self.forecast_tick(t)
            } else {
                (0.0, 0.0)
            };
            let sample = ControlSample {
                now_s: t,
                active_workers: self.active_workers,
                busy_workers: self.workers[..self.active_workers]
                    .iter()
                    .filter(|w| matches!(w, WorkerState::Busy { .. }))
                    .count(),
                backlog: self.total_queued,
                window_arrived: self.win_arrived,
                window_shed: self.win_shed,
                window_p99_s: window_p99(&window),
                forecast_rate_fps,
                forecast_confidence,
            };
            self.win_arrived = 0;
            self.win_shed = 0;
            if let Some((target, reason)) = self.scale_policy.desired_workers(&sample) {
                let target = target.clamp(
                    self.cfg.autoscale.min_workers,
                    self.cfg.autoscale.max_workers,
                );
                if target != self.active_workers {
                    // Deactivated slots holding a batch window open must
                    // not dispatch later; busy ones finish their batch.
                    for w in &mut self.workers[target..self.active_workers.max(target)] {
                        if matches!(w, WorkerState::Waiting { .. }) {
                            *w = WorkerState::Idle;
                        }
                    }
                    self.scale_events.push(ScaleEvent {
                        t_s: t,
                        from_workers: self.active_workers,
                        to_workers: target,
                        reason,
                    });
                    if self.recorder.enabled() {
                        self.recorder.record(
                            t,
                            Event::Scale {
                                from_workers: self.active_workers,
                                to_workers: target,
                                reason: reason.code(),
                            },
                        );
                    }
                    self.active_workers = target;
                }
            }
        }
    }

    /// Pushes every frame with `arrival ≤ now` into its stream queue,
    /// consulting the admission policy at the door and applying the drop
    /// policy at capacity.
    fn ingest_arrivals(&mut self, now: f64) {
        for i in 0..self.streams.len() {
            loop {
                let s = &self.streams[i];
                if s.next_arrival >= s.frames.len() || s.frames[s.next_arrival].0 > now + EPS {
                    break;
                }
                let idx = s.next_arrival;
                let arrival_s = s.frames[idx].0;
                {
                    let s = &mut self.streams[i];
                    s.next_arrival += 1;
                    s.arrived += 1;
                    // Offered load, counted before admission/drops: the
                    // forecaster tracks what the camera sends, not what
                    // the door lets through.
                    s.history.record(arrival_s);
                }
                self.win_arrived += 1;
                let ctx = AdmissionContext {
                    now_s: arrival_s,
                    stream: i,
                    priority: self.priorities[i],
                    total_backlog: self.total_queued,
                };
                match self.admission.admit(&ctx) {
                    Err(AdmissionReason::Shed)
                        if self.cfg.admission.downgrade
                            && self.admission.supports_downgrade()
                            && !self.streams[i].degraded =>
                    {
                        // Downgrade-before-drop: instead of shedding the
                        // frame, admit it and demote the stream's frame
                        // policy one class. The pipeline picks the flag up
                        // at its next dispatch (a frame boundary), so the
                        // decision ladder shifts without ever touching a
                        // frame mid-flight.
                        self.record_downgrade(i, arrival_s, true);
                    }
                    Err(reason) => {
                        let s = &mut self.streams[i];
                        s.dropped += 1;
                        s.rejected += 1;
                        self.win_shed += 1;
                        // Events are report surface: they carry the
                        // fleet-wide id, like every other per-stream
                        // figure.
                        let global = self.streams[i].global_id;
                        self.admission_events.push(AdmissionEvent {
                            t_s: arrival_s,
                            stream: global,
                            reason,
                        });
                        if self.recorder.enabled() {
                            self.recorder.record(
                                arrival_s,
                                Event::Admission {
                                    stream: global,
                                    reason: reason.code(),
                                },
                            );
                        }
                        continue;
                    }
                    Ok(()) => {
                        // Overload has cleared for this stream: restore its
                        // policy class on the first clean admission.
                        if self.streams[i].degraded {
                            self.record_downgrade(i, arrival_s, false);
                        }
                    }
                }
                let s = &mut self.streams[i];
                if s.queue.len() >= self.cfg.queue_capacity {
                    match self.cfg.drop_policy {
                        DropPolicy::Newest => {
                            s.dropped += 1;
                            self.win_shed += 1;
                            continue;
                        }
                        DropPolicy::Oldest => {
                            s.queue.pop_front();
                            s.dropped += 1;
                            self.win_shed += 1;
                            self.total_queued -= 1;
                        }
                    }
                }
                s.queue.push_back(idx);
                self.total_queued += 1;
            }
        }
    }

    /// Books one flip of a stream's downgrade rung (`on` demotes, `off`
    /// restores) into the stream mirror, the report timeline, and the
    /// flight recorder.
    fn record_downgrade(&mut self, stream: usize, t_s: f64, on: bool) {
        self.streams[stream].degraded = on;
        let global = self.streams[stream].global_id;
        self.downgrade_events.push(DowngradeEvent {
            t_s,
            stream: global,
            on,
        });
        if self.recorder.enabled() {
            self.recorder.record(
                t_s,
                Event::Policy {
                    stream: global,
                    frame_index: 0,
                    decision: if on {
                        catdet_recorder::POLICY_DEGRADED_ON
                    } else {
                        catdet_recorder::POLICY_DEGRADED_OFF
                    },
                    streak: 0,
                },
            );
        }
    }

    /// Ships a set of stage jobs (at most one per stream) to the pool and
    /// collects the suspended systems, indexed by stream. The job buffer
    /// is drained in place; the returned result buffer comes from a reuse
    /// pool — hand it back with [`return_result_buf`](Self::return_result_buf).
    ///
    /// Real execution order on the pool is free to vary: the virtual-time
    /// story was already fixed by the scheduling decisions, so determinism
    /// is unaffected.
    fn run_stage_jobs(&mut self, jobs: &mut Vec<Job>) -> Vec<StageSlot> {
        let in_flight = jobs.len();
        let job_tx = self.job_tx.as_ref().expect("pool alive");
        for job in jobs.drain(..) {
            job_tx.send(job).expect("worker pool hung up");
        }
        let mut results = self.result_pool.pop().unwrap_or_default();
        results.clear();
        results.resize_with(self.streams.len(), || None);
        for _ in 0..in_flight {
            let r = self.result_rx.recv().expect("worker pool hung up");
            match r.outcome {
                Ok(outcome) => results[r.stream] = Some((r.system, outcome)),
                Err(msg) => panic!("stream {} system panicked: {msg}", r.stream),
            }
        }
        results
    }

    /// Returns a result buffer taken from [`run_stage_jobs`](Self::run_stage_jobs)
    /// to the reuse pool.
    fn return_result_buf(&mut self, mut buf: Vec<StageSlot>) {
        buf.clear();
        self.result_pool.push(buf);
    }

    /// Books a finished frame back into its stream at `completion_s`.
    fn complete_frame(
        &mut self,
        stream: usize,
        frame_idx: usize,
        arrival_s: f64,
        completion_s: f64,
        system: Box<dyn StagedDetector>,
        out: FrameOutput,
    ) {
        if self.next_control_s.is_finite() {
            self.win_latencies
                .push((completion_s, completion_s - arrival_s));
        }
        let recording = self.recorder.enabled();
        let snapshot_every = if recording {
            self.recorder.snapshot_interval()
        } else {
            0
        };
        let s = &mut self.streams[stream];
        s.busy_until = completion_s;
        s.processed += 1;
        s.latencies.push(completion_s - arrival_s);
        s.ops.accumulate(&out.ops);
        // Per-policy frame accounting; detect frames (and unpoliced
        // pipelines, which report no decision) count only as processed.
        let decision = system.policy_decision();
        match decision {
            Some(PolicyDecision::Coast) => s.coasted += 1,
            Some(PolicyDecision::Skip) => s.skipped += 1,
            _ => {}
        }
        let frame_index = s.frames[frame_idx].1.index;
        if recording {
            let global = s.global_id;
            let seq = s.processed;
            // A frame completes with its pipeline parked at a stage
            // boundary — exactly the suspend points migration relies on —
            // so a snapshot here captures the complete cross-frame state.
            let snapshot = if snapshot_every > 0 && seq.is_multiple_of(snapshot_every) {
                system.export_state().map(|state| StreamSnapshot {
                    state,
                    arrived: s.arrived,
                    processed: s.processed,
                    dropped: s.dropped,
                    queue_depth: s.queue.len(),
                })
            } else {
                None
            };
            self.recorder.record(
                completion_s,
                Event::Detection {
                    stream: global,
                    seq,
                    frame_index,
                    detections: out.detections.len(),
                    latency_s: completion_s - arrival_s,
                    output_hash: output_hash(&out.detections),
                },
            );
            self.recorder.record(
                completion_s,
                Event::Track {
                    stream: global,
                    frame_index,
                    live_tracks: system.live_tracks(),
                },
            );
            // Only coasted and skipped frames book a policy row — detect
            // frames leave the recorded byte stream exactly as an
            // unpoliced run would write it (the golden-identity contract).
            if let Some(d @ (PolicyDecision::Coast | PolicyDecision::Skip)) = decision {
                self.recorder.record(
                    completion_s,
                    Event::Policy {
                        stream: global,
                        frame_index,
                        decision: d.code(),
                        streak: system.policy_coast_streak(),
                    },
                );
            }
            if let Some(snap) = snapshot {
                self.recorder
                    .snapshot(completion_s, global, seq, Arc::new(snap));
            }
        }
        let s = &mut self.streams[stream];
        s.system = Some(system);
        s.outputs.push((frame_index, out.detections));
        self.last_completion = self.last_completion.max(completion_s);
    }

    /// Releases finished workers, closes batch windows, dispatches work.
    fn step_workers(&mut self, now: f64) {
        for w in 0..self.workers.len() {
            if let WorkerState::Busy { until } = self.workers[w] {
                if until <= now + EPS {
                    self.workers[w] = WorkerState::Idle;
                }
            }
        }

        // Plan batches for every *active* worker able to dispatch at
        // `now`; mutate queue state eagerly so later workers see earlier
        // claims. Deactivated slots drain: they finish their batch above
        // but are never handed a new one.
        let mut planned: Vec<PlannedBatch> = Vec::new();
        for w in 0..self.active_workers {
            let eligible = self.eligible_stream_count(now);
            // A batch takes at most one frame per live stream, so waiting
            // for more than that is futile (e.g. 4 streams, max_batch 8).
            let batch_target = self.cfg.max_batch.min(self.live_stream_count());
            match self.workers[w] {
                WorkerState::Busy { .. } => continue,
                WorkerState::Idle => {
                    if eligible == 0 {
                        continue;
                    }
                    // Open a window if it could grow an under-full batch.
                    if self.cfg.batch_window_s > 0.0
                        && eligible < batch_target
                        && self.more_frames_coming(now)
                    {
                        self.workers[w] = WorkerState::Waiting {
                            deadline: now + self.cfg.batch_window_s,
                        };
                        continue;
                    }
                }
                WorkerState::Waiting { deadline } => {
                    if eligible == 0 {
                        self.workers[w] = WorkerState::Idle;
                        continue;
                    }
                    if deadline > now + EPS && eligible < batch_target {
                        continue; // keep waiting
                    }
                }
            }
            // The slot's item buffer is lent to the batch and returned
            // when the batch is priced (surviving active-set resizes).
            let mut items = std::mem::take(&mut self.slot_items[w]);
            self.pick_batch_into(now, &mut items);
            if items.is_empty() {
                self.slot_items[w] = items;
                self.workers[w] = WorkerState::Idle;
                continue;
            }
            planned.push(PlannedBatch {
                worker: w,
                start: now,
                items,
            });
        }

        if planned.is_empty() {
            return;
        }

        // Proposal stage: run every planned frame's proposal pass for real
        // on the pool; each comes back suspended at its refinement
        // boundary with executed costs. Frames ship as `Arc` handles.
        let mut jobs = std::mem::take(&mut self.job_buf);
        jobs.clear();
        let downgrade = self.cfg.admission.downgrade;
        for batch in &planned {
            for &(stream, frame_idx, _) in &batch.items {
                let s = &mut self.streams[stream];
                let mut system = s.system.take().expect("stream system in flight");
                // A dispatch is a frame boundary: sync the pipeline's
                // policy class with admission's downgrade rung before the
                // frame begins (idempotent; a no-op on the default path).
                if downgrade {
                    system.set_degraded(s.degraded);
                }
                jobs.push(Job {
                    stream,
                    kind: JobKind::Proposal {
                        frame: Arc::clone(&s.frames[frame_idx].1),
                    },
                    system,
                });
            }
        }
        let mut staged = self.run_stage_jobs(&mut jobs);

        // Price each batch's fused proposal dispatch, then resume the
        // refinement stage per the fusion mode. The drained job buffer is
        // reused for the refinement dispatches.
        let mut refine_jobs = jobs;
        // `(frame_idx, arrival_s, completion_s)` for in-flight refinements.
        let mut refine_meta = std::mem::take(&mut self.refine_meta_buf);
        refine_meta.clear();
        refine_meta.resize(self.streams.len(), None);
        for batch in planned {
            let mut shared_prop_macs = 0.0;
            for &(stream, _, _) in &batch.items {
                let (_, outcome) = staged[stream].as_ref().expect("proposal result collected");
                shared_prop_macs += match outcome {
                    StageOutcome::AtRefinement { proposal_macs, .. } => *proposal_macs,
                    StageOutcome::Done(out) => out.ops.proposal,
                };
            }
            // One fused proposal launch + one stage dispatch for the batch.
            let shared = if shared_prop_macs > 0.0 {
                self.cfg.timing.launch_time(shared_prop_macs) + self.cfg.timing.stage_overhead_s
            } else {
                0.0
            };
            self.gpu_dispatch_s += shared;
            let ready = batch.start + shared;

            let mut cursor = ready;
            let mut held_open = false;
            for &(stream, frame_idx, arrival) in &batch.items {
                let (system, outcome) = staged[stream].take().expect("proposal result collected");
                let t = self.cfg.timing;
                match outcome {
                    StageOutcome::AtRefinement { refine, .. }
                        if self.cfg.fuse_refinement && refine.macs > 0.0 =>
                    {
                        // Suspend at the boundary: the work item waits in
                        // the fleet-wide fuse pool for a shared dispatch.
                        // Frames with no refinement workload have nothing
                        // to fuse and fall through to immediate per-frame
                        // completion — waiting out the window would cost
                        // them latency (and pin the worker) for nothing.
                        self.refine_pending.push(PendingRefine {
                            stream,
                            worker: batch.worker,
                            frame_idx,
                            arrival_s: arrival,
                            ready_s: ready,
                            deadline_s: ready + self.cfg.refine_batch_window_s,
                            work: refine,
                            system,
                        });
                        held_open = true;
                    }
                    StageOutcome::AtRefinement { refine, .. } => {
                        // Per-frame refinement on this worker's timeline:
                        // merged launch + stage dispatch, fixed frame
                        // handling, and tracker CPU.
                        let mut frame_time = t.frame_overhead_s + t.tracker_overhead_s;
                        if refine.macs > 0.0 {
                            let launch = t.launch_time(refine.macs) + t.stage_overhead_s;
                            frame_time += launch;
                            self.gpu_dispatch_s += launch;
                            self.record_refinement_dispatch(cursor, batch.worker, &[stream], 0);
                        }
                        cursor += frame_time;
                        refine_meta[stream] = Some((frame_idx, arrival, cursor));
                        refine_jobs.push(Job {
                            stream,
                            kind: JobKind::Refine { work: refine },
                            system,
                        });
                    }
                    StageOutcome::Done(out) => {
                        // No refinement boundary to suspend at (possible
                        // for exotic staged impls): price it per-frame.
                        let mut frame_time = t.frame_overhead_s + t.tracker_overhead_s;
                        if out.ops.refinement > 0.0 {
                            let launch = t.launch_time(out.ops.refinement) + t.stage_overhead_s;
                            frame_time += launch;
                            self.gpu_dispatch_s += launch;
                            self.record_refinement_dispatch(cursor, batch.worker, &[stream], 0);
                        }
                        cursor += frame_time;
                        self.complete_frame(stream, frame_idx, arrival, cursor, system, out);
                    }
                }
            }
            self.batch_log.push(BatchRecord {
                t_s: batch.start,
                worker: batch.worker,
                stage: BatchStage::Proposal,
                streams: batch
                    .items
                    .iter()
                    .map(|&(stream, _, _)| self.streams[stream].global_id)
                    .collect(),
            });
            if self.recorder.enabled() {
                // One row per contributing stream so per-stream scans see
                // their own rides without decoding the whole batch.
                let size = batch.items.len();
                for &(stream, _, _) in &batch.items {
                    let global = self.streams[stream].global_id;
                    self.recorder.record(
                        batch.start,
                        Event::Batch {
                            stream: global,
                            worker: batch.worker,
                            stage: STAGE_PROPOSAL,
                            size,
                        },
                    );
                }
            }
            let size = batch.items.len();
            self.batch_stats.batches += 1;
            self.batch_stats.batched_frames += size;
            self.batch_stats.max_batch_seen = self.batch_stats.max_batch_seen.max(size);
            // Only count launches actually fused away: proposal-free
            // systems (e.g. single-model) get no amortisation from a batch.
            if shared_prop_macs > 0.0 {
                self.batch_stats.proposal_launches_saved += size - 1;
            }
            // A worker whose frames entered the fuse pool stays occupied
            // until the shared dispatch returns them; any per-frame work
            // it priced alongside (zero-refinement frames of the same
            // batch, ending at `cursor`) still bounds its release time.
            self.workers[batch.worker] = WorkerState::Busy {
                until: if held_open { f64::INFINITY } else { cursor },
            };
            if held_open {
                self.hold_floor[batch.worker] = cursor;
            }
            // Return the lent item buffer to the batch's slot.
            self.slot_items[batch.worker] = batch.items;
        }
        self.return_result_buf(staged);

        // Run the per-frame refinements for real and book the results at
        // the completion times priced above.
        if !refine_jobs.is_empty() {
            let mut finished = self.run_stage_jobs(&mut refine_jobs);
            for stream in 0..self.streams.len() {
                if let Some((frame_idx, arrival, completion)) = refine_meta[stream] {
                    let (system, outcome) = finished[stream]
                        .take()
                        .expect("refinement result collected");
                    let StageOutcome::Done(out) = outcome else {
                        panic!("stream {stream} refinement did not finish its frame");
                    };
                    self.complete_frame(stream, frame_idx, arrival, completion, system, out);
                }
            }
            self.return_result_buf(finished);
        }
        self.job_buf = refine_jobs;
        self.refine_meta_buf = refine_meta;
    }

    /// Flushes the refinement fuse pool: every deadline due by `now` fires
    /// one shared dispatch carrying all work items ready by then — across
    /// batches and across workers.
    fn fire_refinements(&mut self, now: f64) {
        loop {
            let due = self.refine_deadline();
            if due > now + EPS {
                return;
            }
            let td = due;
            let dispatch = self.take_ready_refinements(td);
            debug_assert!(!dispatch.is_empty(), "deadline fired with nothing ready");

            // One fused launch over the summed workload (only frames with
            // real refinement work enter the pool, so every item rides the
            // launch).
            let fused_macs: f64 = dispatch.iter().map(|p| p.work.macs).sum();
            let gpu = self.cfg.timing.launch_time(fused_macs) + self.cfg.timing.stage_overhead_s;
            self.gpu_dispatch_s += gpu;
            let launched: Vec<usize> = dispatch.iter().map(|p| p.stream).collect();
            let opened_by = dispatch[0].worker;
            self.record_refinement_dispatch(td, opened_by, &launched, launched.len() - 1);
            self.resume_refinements(td, gpu, dispatch);
        }
    }

    /// Resumes the frames of one fused refinement dispatch (priced at `td`
    /// with a shared launch of `gpu` virtual seconds) for real, books
    /// completions, and releases the workers whose held batches fully
    /// dispatched.
    ///
    /// Shared by the engine's own [`fire_refinements`](Self::fire_refinements)
    /// and, through [`complete_external_refinement`], the fleet's
    /// cross-shard dispatches — a shard executes and books its own frames;
    /// only the launch pricing is shared fleet-wide.
    ///
    /// [`complete_external_refinement`]: Self::complete_external_refinement
    fn resume_refinements(&mut self, td: f64, gpu: f64, mut dispatch: Vec<PendingRefine>) {
        // Resume every suspended frame for real, then book completions:
        // the dispatch returns at `td + gpu`, after which each stream's
        // own post-processing (frame handling + tracker CPU) runs in
        // parallel across streams.
        let t = self.cfg.timing;
        let mut jobs = std::mem::take(&mut self.job_buf);
        jobs.clear();
        jobs.extend(dispatch.iter_mut().map(|p| Job {
            stream: p.stream,
            kind: JobKind::Refine { work: p.work },
            system: std::mem::replace(
                &mut p.system,
                Box::new(PlaceholderSystem) as Box<dyn StagedDetector>,
            ),
        }));
        let mut finished = self.run_stage_jobs(&mut jobs);
        self.job_buf = jobs;
        let mut worker_done: Vec<(usize, f64)> = Vec::new();
        for p in dispatch {
            let (system, outcome) = finished[p.stream]
                .take()
                .expect("refinement result collected");
            let StageOutcome::Done(out) = outcome else {
                panic!("stream {} refinement did not finish its frame", p.stream);
            };
            let completion = td + gpu + t.frame_overhead_s + t.tracker_overhead_s;
            self.complete_frame(p.stream, p.frame_idx, p.arrival_s, completion, system, out);
            worker_done.push((p.worker, completion));
        }
        self.return_result_buf(finished);

        // Release every worker whose held batch fully dispatched: it
        // stays busy until the last of its frames completes, whether
        // that frame rode this dispatch or was priced per-frame on
        // the worker's own timeline (the hold floor).
        for &(w, _) in &worker_done {
            if self.refine_pending.iter().any(|p| p.worker == w) {
                continue; // still holding frames for a later dispatch
            }
            let until = worker_done
                .iter()
                .filter(|&&(worker, _)| worker == w)
                .map(|&(_, c)| c)
                .fold(self.hold_floor[w], f64::max);
            self.hold_floor[w] = 0.0;
            self.workers[w] = WorkerState::Busy { until };
        }
    }

    /// Executes this engine's share of a fleet-level fused refinement
    /// dispatch: the frames in `dispatch` were lifted from this engine's
    /// fuse pool by [`take_ready_refinements`](Self::take_ready_refinements);
    /// the shared launch (priced fleet-wide from the MACs of **all**
    /// contributing shards) returns at `td + gpu`. The fleet accounts the
    /// launch's GPU time and batch statistics once, fleet-level — only
    /// per-frame completions and worker releases happen here.
    pub(crate) fn complete_external_refinement(
        &mut self,
        td: f64,
        gpu: f64,
        dispatch: Vec<PendingRefine>,
    ) {
        debug_assert!(self.external_refine, "external dispatch on internal engine");
        self.resume_refinements(td, gpu, dispatch);
    }

    /// Records one refinement dispatch; `streams` are local slots, logged
    /// under their fleet-wide ids.
    fn record_refinement_dispatch(
        &mut self,
        t_s: f64,
        worker: usize,
        streams: &[usize],
        launches_saved: usize,
    ) {
        self.batch_stats.refine_batches += 1;
        self.batch_stats.refined_frames += streams.len();
        self.batch_stats.max_refine_batch_seen =
            self.batch_stats.max_refine_batch_seen.max(streams.len());
        self.batch_stats.refinement_launches_saved += launches_saved;
        self.batch_log.push(BatchRecord {
            t_s,
            worker,
            stage: BatchStage::Refinement,
            streams: streams.iter().map(|&s| self.streams[s].global_id).collect(),
        });
        if self.recorder.enabled() {
            for &s in streams {
                let global = self.streams[s].global_id;
                self.recorder.record(
                    t_s,
                    Event::Batch {
                        stream: global,
                        worker,
                        stage: STAGE_REFINEMENT,
                        size: streams.len(),
                    },
                );
            }
        }
    }

    /// Streams that could contribute a frame to a batch right now.
    fn eligible_stream_count(&self, now: f64) -> usize {
        self.streams
            .iter()
            .filter(|s| !s.queue.is_empty() && s.system.is_some() && s.busy_until <= now + EPS)
            .count()
    }

    /// Whether any stream still has frames that have not yet arrived.
    fn more_frames_coming(&self, _now: f64) -> bool {
        self.streams.iter().any(|s| s.next_arrival < s.frames.len())
    }

    /// Streams that could still contribute a frame to some batch: frames
    /// queued, frames yet to arrive, or a frame in flight on the pool.
    fn live_stream_count(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| {
                !s.departed
                    && (!s.queue.is_empty()
                        || s.next_arrival < s.frames.len()
                        || s.system.is_none())
            })
            .count()
    }

    /// Selects up to `max_batch` streams by policy and claims one queued
    /// frame from each, writing `(stream, frame_idx, arrival_s)` triples
    /// into `out` (cleared first; no allocation in steady state).
    fn pick_batch_into(&mut self, now: f64, out: &mut Vec<(usize, usize, f64)>) {
        out.clear();
        let eligible =
            |s: &StreamRt| !s.queue.is_empty() && s.system.is_some() && s.busy_until <= now + EPS;
        let mut chosen = std::mem::take(&mut self.chosen_buf);
        chosen.clear();
        match self.cfg.schedule {
            SchedulePolicy::RoundRobin => {
                let n = self.streams.len();
                for off in 0..n {
                    let i = (self.rr_cursor + off) % n;
                    if eligible(&self.streams[i]) {
                        chosen.push(i);
                        if chosen.len() == self.cfg.max_batch {
                            break;
                        }
                    }
                }
                if let Some(&last) = chosen.last() {
                    self.rr_cursor = (last + 1) % n;
                }
            }
            SchedulePolicy::LeastBacklog => {
                chosen.extend((0..self.streams.len()).filter(|&i| eligible(&self.streams[i])));
                chosen.sort_by_key(|&i| (self.streams[i].queue.len(), i));
                chosen.truncate(self.cfg.max_batch);
            }
        }
        self.total_queued -= chosen.len();
        out.extend(chosen.iter().map(|&i| {
            let s = &mut self.streams[i];
            let frame_idx = s.queue.pop_front().expect("eligible stream has frames");
            // Claim the pipeline until the batch is priced.
            s.busy_until = f64::INFINITY;
            (i, frame_idx, s.frames[frame_idx].0)
        }));
        self.chosen_buf = chosen;
    }

    /// The next virtual time anything can happen, or `None` when drained.
    fn next_event(&self, now: f64) -> Option<f64> {
        let mut next = f64::INFINITY;
        for s in &self.streams {
            if s.next_arrival < s.frames.len() {
                next = next.min(s.frames[s.next_arrival].0);
            }
            // A stream's pipeline can free up mid-batch (its frame finished
            // but the worker is still pricing later frames of the batch);
            // idle workers may serve it then.
            if !s.queue.is_empty() && s.system.is_some() && s.busy_until > now + EPS {
                next = next.min(s.busy_until);
            }
        }
        for w in &self.workers {
            match w {
                WorkerState::Busy { until } => next = next.min(*until),
                WorkerState::Waiting { deadline } => next = next.min(*deadline),
                WorkerState::Idle => {}
            }
        }
        // Refinement fuse deadlines are events: a worker holding a batch
        // open at the boundary is `Busy` until infinity, and the deadline
        // is what wakes the loop to fire the shared dispatch.
        for p in &self.refine_pending {
            next = next.min(p.deadline_s);
        }
        // Control ticks keep firing while work remains (`INFINITY` when
        // autoscaling is off, so they never steer the fixed-policy loop).
        next = next.min(self.next_control_s);
        let work_left = self.streams.iter().any(|s| {
            !s.departed
                && (s.next_arrival < s.frames.len() || !s.queue.is_empty() || s.system.is_none())
        }) || self
            .workers
            .iter()
            .any(|w| matches!(w, WorkerState::Busy { .. }));
        if !work_left {
            return None;
        }
        // A fleet can change this engine's state *between* `run_until`
        // calls — a rebalance tick lands a migrated stream with backlog on
        // a drained engine, or an external fused dispatch returns a
        // pipeline — leaving an idle worker beside an eligible stream with
        // no future event booked. That is an immediate dispatch
        // opportunity, not a stall: the next `run_until` pass will batch
        // it at the current clock. (Inside `run_until` this arm is dead:
        // `step_workers` has already drained every such pairing.)
        if self.eligible_stream_count(now) > 0
            && self.workers[..self.active_workers]
                .iter()
                .any(|w| matches!(w, WorkerState::Idle))
        {
            next = next.min(now + EPS);
        }
        assert!(
            next.is_finite(),
            "scheduler stalled: frames queued but no future event"
        );
        // Guarantee forward progress even with coincident event times.
        Some(next.max(now + EPS))
    }

    pub(crate) fn finish_report(&mut self) -> ServeReport {
        let mut total_ops = OpsBreakdown::default();
        let mut arrived = 0;
        let mut processed = 0;
        let mut dropped = 0;
        let mut rejected = 0;
        let mut coasted = 0;
        let mut skipped = 0;
        let streams: Vec<StreamReport> = self
            .streams
            .iter_mut()
            .filter(|s| !s.departed)
            .map(|s| {
                assert!(
                    s.queue.is_empty(),
                    "stream {} exited with queued frames",
                    s.global_id
                );
                total_ops.accumulate(&s.ops);
                arrived += s.arrived;
                processed += s.processed;
                dropped += s.dropped;
                rejected += s.rejected;
                coasted += s.coasted;
                skipped += s.skipped;
                StreamReport {
                    stream_id: s.global_id,
                    system_name: s.system_name.clone(),
                    arrived: s.arrived,
                    processed: s.processed,
                    dropped: s.dropped,
                    rejected: s.rejected,
                    coasted: s.coasted,
                    skipped: s.skipped,
                    mean_ops: s.ops.scaled(s.processed.max(1) as f64),
                    latency: LatencyStats::from_samples(&s.latencies),
                    latency_samples: std::mem::take(&mut s.latencies),
                    outputs: std::mem::take(&mut s.outputs),
                }
            })
            .collect();
        let makespan_s = self.last_completion;
        ServeReport {
            makespan_s,
            frames_arrived: arrived,
            frames_processed: processed,
            frames_dropped: dropped,
            frames_rejected: rejected,
            frames_coasted: coasted,
            frames_skipped: skipped,
            throughput_fps: if makespan_s > 0.0 {
                processed as f64 / makespan_s
            } else {
                0.0
            },
            worker_seconds: self.worker_seconds,
            gpu_dispatch_s: self.gpu_dispatch_s,
            total_ops,
            batch: self.batch_stats,
            batch_log: std::mem::take(&mut self.batch_log),
            scale_events: std::mem::take(&mut self.scale_events),
            admission_events: std::mem::take(&mut self.admission_events),
            downgrade_events: std::mem::take(&mut self.downgrade_events),
            streams,
        }
    }

    /// Drains the engine's recorder buffer into the backing store. The
    /// fleet calls this at its lock-step barriers, **in shard-id order**,
    /// so a [`BarrierRecorder`](catdet_recorder::SharedRecorder::barrier_handle)
    /// books into the shared store deterministically at any thread count.
    pub(crate) fn flush_recorder(&mut self) {
        self.recorder.flush();
    }

    pub(crate) fn shutdown(&mut self) {
        self.recorder.flush();
        drop(self.job_tx.take());
        for handle in self.pool.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Stand-in swapped into a [`PendingRefine`] while its real system is out
/// on the pool; never stepped.
struct PlaceholderSystem;

impl StagedDetector for PlaceholderSystem {
    fn name(&self) -> String {
        "placeholder".into()
    }

    fn reset(&mut self) {}

    fn begin_frame(&mut self, _frame: &Frame) {
        unreachable!("placeholder system is never driven")
    }

    fn step(&mut self) -> StageStep {
        unreachable!("placeholder system is never driven")
    }

    fn complete_proposal(&mut self, _work: catdet_core::ProposalWork) -> catdet_core::ProposalWork {
        unreachable!("placeholder system is never driven")
    }

    fn complete_refinement(&mut self, _work: RefinementWork) -> RefinementWork {
        unreachable!("placeholder system is never driven")
    }
}

pub(crate) fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}
