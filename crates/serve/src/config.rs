//! Serving configuration: scheduling policy, batching, backpressure.

use crate::forecast::ForecastConfig;
use crate::shard::RebalanceSignal;
use catdet_core::{GpuTimingModel, PolicyConfig};
use catdet_net::{LinkParams, NetParams};
use catdet_recorder::SharedRecorder;
use serde::{Deserialize, Serialize};

/// Which stream a free worker serves next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Streams are served in ring order from a rotating cursor: every
    /// camera gets an equal share of worker time regardless of backlog.
    RoundRobin,
    /// Streams with the smallest backlog are served first: well-behaved
    /// cameras stay snappy, and sustained overload is concentrated (and
    /// shed via the drop policy) on the cameras causing it.
    LeastBacklog,
}

impl SchedulePolicy {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::RoundRobin => "round-robin",
            SchedulePolicy::LeastBacklog => "least-backlog",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "round-robin" => Some(SchedulePolicy::RoundRobin),
            "least-backlog" => Some(SchedulePolicy::LeastBacklog),
            _ => None,
        }
    }
}

/// What happens when a frame arrives at a full per-stream queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropPolicy {
    /// The arriving frame is skipped (the queue keeps its older frames).
    Newest,
    /// The oldest queued frame is dropped to admit the arriving one —
    /// freshest-data-wins, the usual choice for live monitoring.
    Oldest,
}

impl DropPolicy {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            DropPolicy::Newest => "newest",
            DropPolicy::Oldest => "oldest",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "newest" => Some(DropPolicy::Newest),
            "oldest" => Some(DropPolicy::Oldest),
            _ => None,
        }
    }
}

/// Which [`ScalePolicy`](crate::autoscale::ScalePolicy) the control loop
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalePolicyKind {
    /// No autoscaling: the worker count never changes and no control
    /// ticks are scheduled (bit-identical to pre-autoscale behaviour).
    Fixed,
    /// Hysteresis on window shed-rate and p99 with a cooldown.
    Hysteresis,
    /// Step-load-aware proportional tracking of the arrival rate.
    Proportional,
    /// Forecast-driven proactive scaling: targets the forecast arrival
    /// rate ahead of a load step, falling back to hysteresis semantics
    /// while the forecaster's confidence is low.
    Predictive,
}

impl ScalePolicyKind {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ScalePolicyKind::Fixed => "fixed",
            ScalePolicyKind::Hysteresis => "hysteresis",
            ScalePolicyKind::Proportional => "proportional",
            ScalePolicyKind::Predictive => "predictive",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fixed" => Some(ScalePolicyKind::Fixed),
            "hysteresis" => Some(ScalePolicyKind::Hysteresis),
            "proportional" => Some(ScalePolicyKind::Proportional),
            "predictive" => Some(ScalePolicyKind::Predictive),
            _ => None,
        }
    }
}

/// Autoscaling control-loop configuration.
///
/// With [`ScalePolicyKind::Fixed`] the remaining knobs are inert. All
/// times are virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// The controller to run.
    pub policy: ScalePolicyKind,
    /// Spacing of control ticks on the virtual clock.
    pub control_interval_s: f64,
    /// Lower bound on active workers.
    pub min_workers: usize,
    /// Upper bound on active workers (also sizes the real thread pool).
    pub max_workers: usize,
    /// Hysteresis: scale up when the window shed rate exceeds this.
    pub up_shed_rate: f64,
    /// Hysteresis: scale up when the window p99 exceeds this.
    pub up_p99_s: f64,
    /// Hysteresis: scaling down requires the window p99 below this.
    pub down_p99_s: f64,
    /// Hysteresis: control ticks to hold after any change.
    pub cooldown_ticks: usize,
    /// Hysteresis: workers added/removed per decision.
    pub scale_step: usize,
    /// Proportional: assumed service time per frame.
    pub service_s_per_frame: f64,
}

impl AutoscaleConfig {
    /// Autoscaling off (the default): fixed worker count, no ticks.
    pub fn fixed() -> Self {
        Self {
            policy: ScalePolicyKind::Fixed,
            control_interval_s: 0.25,
            min_workers: 1,
            max_workers: 8,
            up_shed_rate: 0.02,
            up_p99_s: 0.5,
            down_p99_s: 0.15,
            cooldown_ticks: 1,
            scale_step: 1,
            service_s_per_frame: 0.05,
        }
    }

    /// Hysteresis controller bounded to `[min_workers, max_workers]`.
    pub fn hysteresis(min_workers: usize, max_workers: usize) -> Self {
        Self {
            policy: ScalePolicyKind::Hysteresis,
            min_workers,
            max_workers,
            ..Self::fixed()
        }
    }

    /// Proportional controller with a per-frame service-time estimate.
    pub fn proportional(min_workers: usize, max_workers: usize, service_s_per_frame: f64) -> Self {
        Self {
            policy: ScalePolicyKind::Proportional,
            min_workers,
            max_workers,
            service_s_per_frame,
            ..Self::fixed()
        }
    }

    /// Predictive controller bounded to `[min_workers, max_workers]`,
    /// driven by the fleet's arrival-rate forecaster
    /// ([`ServeConfig::forecast`]).
    pub fn predictive(min_workers: usize, max_workers: usize) -> Self {
        Self {
            policy: ScalePolicyKind::Predictive,
            min_workers,
            max_workers,
            ..Self::fixed()
        }
    }

    /// Returns a copy with a different control interval.
    pub fn with_control_interval_s(mut self, control_interval_s: f64) -> Self {
        self.control_interval_s = control_interval_s;
        self
    }

    /// Returns a copy with a different cooldown.
    pub fn with_cooldown_ticks(mut self, cooldown_ticks: usize) -> Self {
        self.cooldown_ticks = cooldown_ticks;
        self
    }

    /// Returns a copy with a different scale step.
    pub fn with_scale_step(mut self, scale_step: usize) -> Self {
        self.scale_step = scale_step;
        self
    }

    /// Returns a copy with different scale-up thresholds.
    pub fn with_up_thresholds(mut self, up_shed_rate: f64, up_p99_s: f64) -> Self {
        self.up_shed_rate = up_shed_rate;
        self.up_p99_s = up_p99_s;
        self
    }

    /// Whether the control loop actually runs.
    pub fn enabled(&self) -> bool {
        self.policy != ScalePolicyKind::Fixed
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(self.min_workers >= 1, "autoscale floor must be at least 1");
        assert!(
            self.max_workers >= self.min_workers,
            "autoscale ceiling must be at least the floor"
        );
        assert!(
            self.control_interval_s > 0.0 && self.control_interval_s.is_finite(),
            "control interval must be finite and positive"
        );
        assert!(self.scale_step >= 1, "scale step must be at least 1");
        assert!(
            self.service_s_per_frame > 0.0 && self.service_s_per_frame.is_finite(),
            "service time estimate must be finite and positive"
        );
        assert!(
            self.up_shed_rate >= 0.0 && self.up_p99_s >= 0.0 && self.down_p99_s >= 0.0,
            "thresholds must be non-negative"
        );
    }
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self::fixed()
    }
}

/// Which [`AdmissionPolicy`](crate::admission::AdmissionPolicy) gates
/// arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionKind {
    /// Every frame is admitted (the default).
    AdmitAll,
    /// Per-stream token-bucket rate limiting.
    TokenBucket,
    /// Priority classes shed lowest-first under overload.
    Priority,
}

impl AdmissionKind {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionKind::AdmitAll => "admit-all",
            AdmissionKind::TokenBucket => "token-bucket",
            AdmissionKind::Priority => "priority",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "admit-all" => Some(AdmissionKind::AdmitAll),
            "token-bucket" => Some(AdmissionKind::TokenBucket),
            "priority" => Some(AdmissionKind::Priority),
            _ => None,
        }
    }
}

/// Admission-control configuration; knobs not used by the selected kind
/// are inert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// The policy gating arrivals.
    pub kind: AdmissionKind,
    /// Token bucket: sustained admitted rate per stream (frames/s).
    pub rate_fps: f64,
    /// Token bucket: burst capacity per stream (frames).
    pub burst: f64,
    /// Priority: backlog (queued frames fleet-wide) per overload level.
    pub backlog_watermark: usize,
    /// Priority: downgrade-before-drop. When the shed rung would reject a
    /// stream's frame, the frame is admitted anyway and the stream's
    /// frame policy is demoted one class instead (see
    /// [`PolicedPipeline`](catdet_core::PolicedPipeline)); the class is
    /// restored the first time the stream clears admission again.
    pub downgrade: bool,
}

impl AdmissionConfig {
    /// No admission control (the default).
    pub fn admit_all() -> Self {
        Self {
            kind: AdmissionKind::AdmitAll,
            rate_fps: 30.0,
            burst: 10.0,
            backlog_watermark: 32,
            downgrade: false,
        }
    }

    /// Token-bucket rate limiting per stream.
    pub fn token_bucket(rate_fps: f64, burst: f64) -> Self {
        Self {
            kind: AdmissionKind::TokenBucket,
            rate_fps,
            burst,
            ..Self::admit_all()
        }
    }

    /// Priority shedding with the given backlog watermark.
    pub fn priority(backlog_watermark: usize) -> Self {
        Self {
            kind: AdmissionKind::Priority,
            backlog_watermark,
            ..Self::admit_all()
        }
    }

    /// Returns a copy with downgrade-before-drop on or off.
    pub fn with_downgrade(mut self, downgrade: bool) -> Self {
        self.downgrade = downgrade;
        self
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(
            !self.downgrade || self.kind == AdmissionKind::Priority,
            "downgrade-before-drop needs the priority admission policy"
        );
        assert!(
            self.rate_fps > 0.0 && self.rate_fps.is_finite(),
            "admission rate must be finite and positive"
        );
        assert!(
            self.burst >= 1.0 && self.burst.is_finite(),
            "admission burst must be at least one frame"
        );
        assert!(
            self.backlog_watermark >= 1,
            "backlog watermark must be at least 1"
        );
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::admit_all()
    }
}

/// Which [`PartitionPolicy`](crate::shard::PartitionPolicy) assigns
/// streams to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionKind {
    /// Stateless hash of the stream id modulo the shard count — uniform
    /// in expectation, zero coordination, the default.
    StaticHash,
    /// Greedy least-loaded placement by total frames per shard: each
    /// stream lands on the shard with the fewest frames assigned so far.
    LeastLoaded,
    /// Consistent-hash ring with virtual nodes: stream placement is
    /// stable under shard-count changes (only ~1/N of streams move when a
    /// shard is added), the property a growing fleet wants.
    ConsistentHash,
}

impl PartitionKind {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionKind::StaticHash => "static-hash",
            PartitionKind::LeastLoaded => "least-loaded",
            PartitionKind::ConsistentHash => "consistent-hash",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "static-hash" => Some(PartitionKind::StaticHash),
            "least-loaded" => Some(PartitionKind::LeastLoaded),
            "consistent-hash" => Some(PartitionKind::ConsistentHash),
            _ => None,
        }
    }
}

/// Sharded-fleet configuration: how many independent scheduler shards the
/// fleet runs, how streams are partitioned across them, and whether (and
/// how eagerly) the live rebalancer migrates streams between shards.
///
/// With `shards == 1` the remaining knobs are inert and
/// [`serve_fleet`](crate::serve_fleet) is bit-identical to [`serve`](crate::serve)
/// (the golden fleet-equivalence test pins this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of independent scheduler shards, each with its own worker
    /// pool, queues, admission gate and autoscaler ([`ServeConfig`]'s
    /// worker/autoscale settings apply **per shard**).
    pub shards: usize,
    /// Stream → shard placement policy.
    pub partition: PartitionKind,
    /// Spacing of live-rebalance ticks on the fleet's virtual clock;
    /// `0.0` disables rebalancing (streams stay where placed).
    pub rebalance_interval_s: f64,
    /// Minimum load imbalance (in frames, hottest minus coolest shard)
    /// before a migration pays for itself; below it the rebalancer holds
    /// still. This is the migration-cost hysteresis knob, priced against
    /// the current backlog gap or the predicted one depending on
    /// [`rebalance_signal`](ShardConfig::rebalance_signal).
    pub migration_cost_frames: usize,
    /// Load signal the rebalancer compares across shards: current queued
    /// backlog (the reactive default) or backlog plus forecast arrivals
    /// over the forecast horizon.
    pub rebalance_signal: RebalanceSignal,
    /// Rebalance ticks a stream must sit out after migrating before it
    /// may move again. Prevents one stream ping-ponging between two
    /// shards on alternating ticks under near-symmetric load; `0`
    /// disables the cooldown.
    pub migration_cooldown_ticks: usize,
    /// Pool [`RefinementWork`](catdet_core::RefinementWork) across shards:
    /// with [`fuse_refinement`](ServeConfig::fuse_refinement) on, frames
    /// suspended at their refinement boundary on *different shards* share
    /// one fused GPU dispatch, preserving cross-stream amortisation after
    /// sharding. Off, each shard fuses only its own streams.
    pub fuse_across_shards: bool,
    /// OS threads that advance shard engines between coordination
    /// barriers. `1` (the default) keeps the sequential loop; `0` means
    /// auto (the host's available parallelism, capped at the shard
    /// count). Results are **bit-identical at every setting** — threads
    /// change wall-clock time only, never the simulation (the
    /// fleet-determinism CI job pins this).
    pub threads: usize,
}

impl ShardConfig {
    /// One shard, no rebalancing: the monolithic-scheduler default.
    pub fn single() -> Self {
        Self {
            shards: 1,
            partition: PartitionKind::StaticHash,
            rebalance_interval_s: 0.0,
            migration_cost_frames: 8,
            rebalance_signal: RebalanceSignal::Backlog,
            migration_cooldown_ticks: 2,
            fuse_across_shards: true,
            threads: 1,
        }
    }

    /// A fleet of `shards` shards with the default partition policy.
    pub fn sharded(shards: usize) -> Self {
        Self {
            shards,
            ..Self::single()
        }
    }

    /// Returns a copy with a different partition policy.
    pub fn with_partition(mut self, partition: PartitionKind) -> Self {
        self.partition = partition;
        self
    }

    /// Returns a copy with live rebalancing every `interval_s` virtual
    /// seconds (`0.0` disables).
    pub fn with_rebalance_interval_s(mut self, interval_s: f64) -> Self {
        self.rebalance_interval_s = interval_s;
        self
    }

    /// Returns a copy with a different migration-cost hysteresis.
    pub fn with_migration_cost_frames(mut self, frames: usize) -> Self {
        self.migration_cost_frames = frames;
        self
    }

    /// Returns a copy with a different rebalance load signal.
    pub fn with_rebalance_signal(mut self, signal: RebalanceSignal) -> Self {
        self.rebalance_signal = signal;
        self
    }

    /// Returns a copy with a different per-stream migration cooldown
    /// (`0` disables).
    pub fn with_migration_cooldown_ticks(mut self, ticks: usize) -> Self {
        self.migration_cooldown_ticks = ticks;
        self
    }

    /// Returns a copy with cross-shard refinement fusion on or off.
    pub fn with_fuse_across_shards(mut self, on: bool) -> Self {
        self.fuse_across_shards = on;
        self
    }

    /// Returns a copy running shard engines on `threads` OS threads
    /// between barriers (`0` = auto, `1` = sequential). Purely a
    /// wall-clock knob: reports, timelines and recordings are
    /// bit-identical at every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(
            self.rebalance_interval_s >= 0.0 && self.rebalance_interval_s.is_finite(),
            "rebalance interval must be finite and non-negative"
        );
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// Flight-recorder configuration: whether a run books its telemetry into
/// a [`catdet_recorder`] chunk store, and the store's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderConfig {
    /// Record events at all. Off (the default), the engines run with the
    /// no-op recorder and pay only a cold `enabled()` check per hook.
    pub enabled: bool,
    /// Chunk capacity in events: chunks seal (and enter the time index)
    /// at this many rows.
    pub chunk_events: usize,
    /// Sealed-chunk retention budget; the least-recently-used sealed
    /// chunk is evicted beyond it. `usize::MAX` (the default) retains
    /// everything.
    pub retention_chunks: usize,
    /// Capture a replay snapshot of each stream every this many completed
    /// frames. `0` (the default) disables snapshots — and with them
    /// time-travel replay.
    pub snapshot_every_frames: usize,
}

impl RecorderConfig {
    /// Recording off — the zero-cost default.
    pub fn off() -> Self {
        Self {
            enabled: false,
            chunk_events: 512,
            retention_chunks: usize::MAX,
            snapshot_every_frames: 0,
        }
    }

    /// Recording on with default chunking, unbounded retention and no
    /// snapshots.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::off()
        }
    }

    /// Returns a copy with a different chunk capacity.
    pub fn with_chunk_events(mut self, chunk_events: usize) -> Self {
        self.chunk_events = chunk_events;
        self
    }

    /// Returns a copy with a different sealed-chunk retention budget.
    pub fn with_retention_chunks(mut self, retention_chunks: usize) -> Self {
        self.retention_chunks = retention_chunks;
        self
    }

    /// Returns a copy with a different snapshot cadence (`0` disables).
    pub fn with_snapshot_every_frames(mut self, frames: usize) -> Self {
        self.snapshot_every_frames = frames;
        self
    }

    /// Builds the shared store this configuration describes.
    pub fn build(&self) -> SharedRecorder {
        SharedRecorder::new(
            self.chunk_events,
            self.retention_chunks,
            self.snapshot_every_frames,
        )
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(
            self.chunk_events >= 1,
            "recorder chunks must hold at least one event"
        );
        assert!(
            self.snapshot_every_frames == 0 || self.retention_chunks >= 1,
            "zero retention cannot feed replay: snapshots need their recorded events kept; \
             raise the retention budget or disable snapshots"
        );
    }
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// How frames enter the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestKind {
    /// Streams are handed to the scheduler as in-memory frame timelines
    /// — the pre-network behaviour, and the default.
    Direct,
    /// Streams arrive through the simulated network front door: each
    /// camera is a CamLink connection whose frames cross a faulty wire,
    /// a bounded receive window and a per-client door rate limiter
    /// before reaching the partition layer.
    Net,
}

impl IngestKind {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            IngestKind::Direct => "direct",
            IngestKind::Net => "net",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "direct" => Some(IngestKind::Direct),
            "net" => Some(IngestKind::Net),
            _ => None,
        }
    }
}

/// Network front-door configuration; inert unless
/// [`kind`](IngestConfig::kind) is [`IngestKind::Net`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// How frames enter the serving layer.
    pub kind: IngestKind,
    /// Fixed camera → door propagation delay (virtual seconds).
    pub conn_latency_s: f64,
    /// Maximum extra per-chunk delivery jitter (virtual seconds).
    pub conn_jitter_s: f64,
    /// Link throughput in bytes per virtual second.
    pub link_bytes_per_s: f64,
    /// Maximum bytes per partial write on the wire.
    pub chunk_bytes: usize,
    /// Probability two adjacent chunks of a record swap in flight
    /// (corrupting the record; the camera never retransmits corruption).
    pub reorder_rate: f64,
    /// Per-record probability the connection drops mid-send (the camera
    /// reconnects and resumes from its cursor).
    pub disconnect_rate: f64,
    /// Downtime after a disconnect before the camera resumes.
    pub reconnect_delay_s: f64,
    /// Bounded per-connection receive window, in frames; `0` (the
    /// default) follows [`ServeConfig::queue_capacity`].
    pub recv_window: usize,
    /// Rate at which the window drains past the door (models the shard
    /// pulling from the connection).
    pub drain_fps: f64,
    /// Sustained per-client frame rate admitted past the door.
    pub door_rate_fps: f64,
    /// Door token-bucket burst, in frames.
    pub door_burst: f64,
}

impl IngestConfig {
    /// Direct ingest — the pre-network default. The network knobs hold
    /// clean-link values so switching the kind alone is meaningful.
    pub fn direct() -> Self {
        Self {
            kind: IngestKind::Direct,
            conn_latency_s: 0.002,
            conn_jitter_s: 0.0,
            link_bytes_per_s: 1_000_000.0,
            chunk_bytes: 512,
            reorder_rate: 0.0,
            disconnect_rate: 0.0,
            reconnect_delay_s: 0.05,
            recv_window: 0,
            drain_fps: 120.0,
            door_rate_fps: 120.0,
            door_burst: 16.0,
        }
    }

    /// Network ingest over a clean link.
    pub fn net() -> Self {
        Self {
            kind: IngestKind::Net,
            ..Self::direct()
        }
    }

    /// Returns a copy with a different per-chunk jitter bound.
    pub fn with_conn_jitter_s(mut self, conn_jitter_s: f64) -> Self {
        self.conn_jitter_s = conn_jitter_s;
        self
    }

    /// Returns a copy with a different in-flight reorder probability.
    pub fn with_reorder_rate(mut self, reorder_rate: f64) -> Self {
        self.reorder_rate = reorder_rate;
        self
    }

    /// Returns a copy with a different mid-send disconnect probability.
    pub fn with_disconnect_rate(mut self, disconnect_rate: f64) -> Self {
        self.disconnect_rate = disconnect_rate;
        self
    }

    /// Returns a copy with a different receive window (`0` follows the
    /// queue capacity).
    pub fn with_recv_window(mut self, recv_window: usize) -> Self {
        self.recv_window = recv_window;
        self
    }

    /// Returns a copy with a different window drain rate.
    pub fn with_drain_fps(mut self, drain_fps: f64) -> Self {
        self.drain_fps = drain_fps;
        self
    }

    /// Returns a copy with a different door rate limit.
    pub fn with_door_rate_fps(mut self, door_rate_fps: f64) -> Self {
        self.door_rate_fps = door_rate_fps;
        self
    }

    /// Returns a copy with a different door burst.
    pub fn with_door_burst(mut self, door_burst: f64) -> Self {
        self.door_burst = door_burst;
        self
    }

    /// The wire behaviour these knobs describe.
    pub fn link_params(&self) -> LinkParams {
        LinkParams {
            base_latency_s: self.conn_latency_s,
            jitter_s: self.conn_jitter_s,
            bytes_per_s: self.link_bytes_per_s,
            chunk_bytes: self.chunk_bytes,
            reorder_rate: self.reorder_rate,
            disconnect_rate: self.disconnect_rate,
            reconnect_delay_s: self.reconnect_delay_s,
        }
    }

    /// The full front-door parameters for a run: `seed` keys every
    /// connection's randomness, `queue_capacity` backs the receive
    /// window when [`recv_window`](IngestConfig::recv_window) is `0` —
    /// connection backpressure maps onto the same bound as the
    /// scheduler's per-stream queues.
    pub fn net_params(&self, seed: u64, queue_capacity: usize) -> NetParams {
        NetParams {
            seed,
            link: self.link_params(),
            recv_window: if self.recv_window == 0 {
                queue_capacity
            } else {
                self.recv_window
            },
            drain_fps: self.drain_fps,
            door_rate_fps: self.door_rate_fps,
            door_burst: self.door_burst,
        }
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        // Seed and window backing do not affect validity; placeholders.
        self.net_params(0, 1).validate();
    }
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self::direct()
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker count: both the modelled executor count in virtual time and
    /// the real thread-pool size running the detector compute.
    pub workers: usize,
    /// Maximum frames (one per stream) fused into a proposal micro-batch.
    pub max_batch: usize,
    /// How long a worker may wait (virtual seconds) for more streams to
    /// contribute frames before closing an under-full batch. `0.0`
    /// dispatches immediately.
    pub batch_window_s: f64,
    /// Bounded per-stream queue length; arrivals beyond it invoke the
    /// [`DropPolicy`].
    pub queue_capacity: usize,
    /// Fuse refinement launches across streams: frames suspend at their
    /// refinement boundary (the staged-detector protocol) and their
    /// pending [`RefinementWork`](catdet_core::RefinementWork) items are
    /// flushed as one shared GPU dispatch — across batches and workers.
    /// Off (the default) prices one refinement launch per frame, the
    /// pre-staged behaviour.
    pub fuse_refinement: bool,
    /// How long (virtual seconds) a frame may wait at its refinement
    /// boundary for other streams to reach theirs before the shared
    /// dispatch fires. `0.0` flushes immediately (still fusing frames
    /// that reach the boundary at the same instant, e.g. one proposal
    /// batch's worth). Inert unless [`fuse_refinement`] is on.
    ///
    /// [`fuse_refinement`]: ServeConfig::fuse_refinement
    pub refine_batch_window_s: f64,
    /// Stream selection policy.
    pub schedule: SchedulePolicy,
    /// Per-frame detect-or-track policy applied to every stream that does
    /// not carry its own class on its
    /// [`StreamSpec`](crate::StreamSpec). The default
    /// ([`PolicyConfig::always_detect`]) detects every frame and is
    /// bit-identical to the unpoliced pipeline.
    pub policy: PolicyConfig,
    /// Backpressure behaviour on a full queue.
    pub drop_policy: DropPolicy,
    /// GPU/CPU execution-time model used for all virtual-time accounting.
    pub timing: GpuTimingModel,
    /// Worker-count control loop; [`AutoscaleConfig::fixed`] disables it.
    pub autoscale: AutoscaleConfig,
    /// Arrival-rate forecaster shape, read by the predictive autoscaler
    /// ([`ScalePolicyKind::Predictive`]) and the predicted-load
    /// rebalancer ([`RebalanceSignal::Predicted`]); inert when neither
    /// consumer is selected.
    pub forecast: ForecastConfig,
    /// Arrival gating; [`AdmissionConfig::admit_all`] disables it.
    pub admission: AdmissionConfig,
    /// Fleet sharding; [`ShardConfig::single`] (the default) is the
    /// monolithic scheduler. Only consulted by
    /// [`serve_fleet`](crate::serve_fleet).
    pub shard: ShardConfig,
    /// Flight recording; [`RecorderConfig::off`] (the default) disables
    /// it.
    pub recorder: RecorderConfig,
    /// How frames enter the serving layer;
    /// [`IngestConfig::direct`] (the default) bypasses the network
    /// front door. Only consulted by
    /// [`serve_net_fleet`](crate::serve_net_fleet).
    pub ingest: IngestConfig,
}

impl ServeConfig {
    /// Sensible single-GPU defaults: 4 workers, batches of up to 4 with no
    /// added wait, 64-frame queues, round-robin, drop-newest.
    pub fn new() -> Self {
        Self {
            workers: 4,
            max_batch: 4,
            batch_window_s: 0.0,
            queue_capacity: 64,
            fuse_refinement: false,
            refine_batch_window_s: 0.0,
            schedule: SchedulePolicy::RoundRobin,
            policy: PolicyConfig::always_detect(),
            drop_policy: DropPolicy::Newest,
            timing: GpuTimingModel::titan_x_maxwell(),
            autoscale: AutoscaleConfig::fixed(),
            forecast: ForecastConfig::new(),
            admission: AdmissionConfig::admit_all(),
            shard: ShardConfig::single(),
            recorder: RecorderConfig::off(),
            ingest: IngestConfig::direct(),
        }
    }

    /// Returns a copy with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy with a different micro-batch limit.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns a copy with a different batch window.
    pub fn with_batch_window_s(mut self, batch_window_s: f64) -> Self {
        self.batch_window_s = batch_window_s;
        self
    }

    /// Returns a copy with a different queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Returns a copy with cross-stream refinement fusion on or off.
    pub fn with_fuse_refinement(mut self, fuse_refinement: bool) -> Self {
        self.fuse_refinement = fuse_refinement;
        self
    }

    /// Returns a copy with a different refinement fuse window.
    pub fn with_refine_batch_window_s(mut self, refine_batch_window_s: f64) -> Self {
        self.refine_batch_window_s = refine_batch_window_s;
        self
    }

    /// Returns a copy with a different scheduling policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Returns a copy with a different per-frame detect-or-track policy.
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different drop policy.
    pub fn with_drop_policy(mut self, drop_policy: DropPolicy) -> Self {
        self.drop_policy = drop_policy;
        self
    }

    /// Returns a copy with a different autoscaling configuration.
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = autoscale;
        self
    }

    /// Returns a copy with a different forecaster configuration.
    pub fn with_forecast(mut self, forecast: ForecastConfig) -> Self {
        self.forecast = forecast;
        self
    }

    /// Returns a copy with a different admission configuration.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Returns a copy with a different fleet sharding configuration.
    pub fn with_shard(mut self, shard: ShardConfig) -> Self {
        self.shard = shard;
        self
    }

    /// Returns a copy with a different flight-recorder configuration.
    pub fn with_recorder(mut self, recorder: RecorderConfig) -> Self {
        self.recorder = recorder;
        self
    }

    /// Returns a copy with a different ingest configuration.
    pub fn with_ingest(mut self, ingest: IngestConfig) -> Self {
        self.ingest = ingest;
        self
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.max_batch >= 1, "need a batch size of at least one");
        assert!(
            self.queue_capacity >= 1,
            "need queue capacity of at least one"
        );
        assert!(
            self.batch_window_s >= 0.0 && self.batch_window_s.is_finite(),
            "batch window must be finite and non-negative"
        );
        assert!(
            self.refine_batch_window_s >= 0.0 && self.refine_batch_window_s.is_finite(),
            "refinement batch window must be finite and non-negative"
        );
        self.policy.validate();
        self.autoscale.validate();
        self.forecast.validate();
        self.admission.validate();
        self.shard.validate();
        self.recorder.validate();
        self.ingest.validate();
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_applies_every_knob() {
        let cfg = ServeConfig::new()
            .with_workers(8)
            .with_max_batch(16)
            .with_batch_window_s(0.01)
            .with_queue_capacity(2)
            .with_fuse_refinement(true)
            .with_refine_batch_window_s(0.004)
            .with_schedule(SchedulePolicy::LeastBacklog)
            .with_policy(PolicyConfig::confidence_trigger(1.5))
            .with_drop_policy(DropPolicy::Oldest);
        cfg.validate();
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.max_batch, 16);
        assert_eq!(cfg.queue_capacity, 2);
        assert!(cfg.fuse_refinement);
        assert_eq!(cfg.refine_batch_window_s, 0.004);
        assert_eq!(cfg.schedule, SchedulePolicy::LeastBacklog);
        assert_eq!(cfg.policy, PolicyConfig::confidence_trigger(1.5));
        assert_eq!(cfg.drop_policy, DropPolicy::Oldest);
        assert!(!ServeConfig::new().fuse_refinement, "fusion is opt-in");
        assert_eq!(
            ServeConfig::new().policy,
            PolicyConfig::always_detect(),
            "the frame policy defaults to the golden baseline"
        );
    }

    #[test]
    #[should_panic(expected = "downgrade-before-drop needs the priority admission policy")]
    fn downgrade_without_priority_is_rejected() {
        ServeConfig::new()
            .with_admission(AdmissionConfig::admit_all().with_downgrade(true))
            .validate();
    }

    #[test]
    fn downgrade_rides_the_priority_policy() {
        let cfg =
            ServeConfig::new().with_admission(AdmissionConfig::priority(16).with_downgrade(true));
        cfg.validate();
        assert!(cfg.admission.downgrade);
        assert!(
            !ServeConfig::new().admission.downgrade,
            "downgrade is opt-in"
        );
    }

    #[test]
    #[should_panic(expected = "refinement batch window")]
    fn negative_refine_window_is_rejected() {
        ServeConfig::new()
            .with_refine_batch_window_s(-0.001)
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        ServeConfig::new().with_workers(0).validate();
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [SchedulePolicy::RoundRobin, SchedulePolicy::LeastBacklog] {
            assert_eq!(SchedulePolicy::from_name(p.name()), Some(p));
        }
        for d in [DropPolicy::Newest, DropPolicy::Oldest] {
            assert_eq!(DropPolicy::from_name(d.name()), Some(d));
        }
        assert_eq!(SchedulePolicy::from_name("x"), None);
        for k in [
            ScalePolicyKind::Fixed,
            ScalePolicyKind::Hysteresis,
            ScalePolicyKind::Proportional,
            ScalePolicyKind::Predictive,
        ] {
            assert_eq!(ScalePolicyKind::from_name(k.name()), Some(k));
        }
        for k in [
            AdmissionKind::AdmitAll,
            AdmissionKind::TokenBucket,
            AdmissionKind::Priority,
        ] {
            assert_eq!(AdmissionKind::from_name(k.name()), Some(k));
        }
    }

    #[test]
    fn autoscale_and_admission_ride_the_builder() {
        let cfg = ServeConfig::new()
            .with_autoscale(AutoscaleConfig::hysteresis(2, 6))
            .with_admission(AdmissionConfig::token_bucket(15.0, 4.0));
        cfg.validate();
        assert!(cfg.autoscale.enabled());
        assert_eq!(cfg.autoscale.min_workers, 2);
        assert_eq!(cfg.autoscale.max_workers, 6);
        assert_eq!(cfg.admission.kind, AdmissionKind::TokenBucket);
        assert!(!AutoscaleConfig::fixed().enabled());
    }

    #[test]
    fn predictive_autoscale_and_forecast_ride_the_builder() {
        let cfg = ServeConfig::new()
            .with_autoscale(AutoscaleConfig::predictive(2, 12))
            .with_forecast(ForecastConfig::new().with_horizon_s(0.75))
            .with_shard(
                ShardConfig::sharded(4)
                    .with_rebalance_signal(RebalanceSignal::Predicted)
                    .with_migration_cooldown_ticks(3),
            );
        cfg.validate();
        assert_eq!(cfg.autoscale.policy, ScalePolicyKind::Predictive);
        assert!(cfg.autoscale.enabled());
        assert_eq!(cfg.forecast.horizon_s, 0.75);
        assert_eq!(cfg.shard.rebalance_signal, RebalanceSignal::Predicted);
        assert_eq!(cfg.shard.migration_cooldown_ticks, 3);
        assert_eq!(
            ServeConfig::new().shard.rebalance_signal,
            RebalanceSignal::Backlog,
            "the predicted signal is opt-in"
        );
    }

    #[test]
    #[should_panic(expected = "forecast horizon")]
    fn negative_forecast_horizon_is_rejected() {
        ServeConfig::new()
            .with_forecast(ForecastConfig::new().with_horizon_s(-1.0))
            .validate();
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn inverted_autoscale_bounds_are_rejected() {
        ServeConfig::new()
            .with_autoscale(AutoscaleConfig::hysteresis(4, 2))
            .validate();
    }

    #[test]
    #[should_panic(expected = "control interval")]
    fn zero_control_interval_is_rejected() {
        ServeConfig::new()
            .with_autoscale(AutoscaleConfig::hysteresis(1, 4).with_control_interval_s(0.0))
            .validate();
    }

    #[test]
    fn recorder_rides_the_builder() {
        let cfg = ServeConfig::new().with_recorder(
            RecorderConfig::on()
                .with_chunk_events(128)
                .with_retention_chunks(64)
                .with_snapshot_every_frames(25),
        );
        cfg.validate();
        assert!(cfg.recorder.enabled);
        assert_eq!(cfg.recorder.chunk_events, 128);
        assert_eq!(cfg.recorder.retention_chunks, 64);
        assert_eq!(cfg.recorder.snapshot_every_frames, 25);
        assert!(!ServeConfig::new().recorder.enabled, "recording is opt-in");
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_event_recorder_chunks_are_rejected() {
        ServeConfig::new()
            .with_recorder(RecorderConfig::on().with_chunk_events(0))
            .validate();
    }

    #[test]
    #[should_panic(expected = "zero retention cannot feed replay")]
    fn zero_retention_with_snapshots_is_rejected() {
        ServeConfig::new()
            .with_recorder(
                RecorderConfig::on()
                    .with_retention_chunks(0)
                    .with_snapshot_every_frames(10),
            )
            .validate();
    }
}
