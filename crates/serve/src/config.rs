//! Serving configuration: scheduling policy, batching, backpressure.

use catdet_core::GpuTimingModel;
use serde::{Deserialize, Serialize};

/// Which stream a free worker serves next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Streams are served in ring order from a rotating cursor: every
    /// camera gets an equal share of worker time regardless of backlog.
    RoundRobin,
    /// Streams with the smallest backlog are served first: well-behaved
    /// cameras stay snappy, and sustained overload is concentrated (and
    /// shed via the drop policy) on the cameras causing it.
    LeastBacklog,
}

impl SchedulePolicy {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::RoundRobin => "round-robin",
            SchedulePolicy::LeastBacklog => "least-backlog",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "round-robin" => Some(SchedulePolicy::RoundRobin),
            "least-backlog" => Some(SchedulePolicy::LeastBacklog),
            _ => None,
        }
    }
}

/// What happens when a frame arrives at a full per-stream queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropPolicy {
    /// The arriving frame is skipped (the queue keeps its older frames).
    Newest,
    /// The oldest queued frame is dropped to admit the arriving one —
    /// freshest-data-wins, the usual choice for live monitoring.
    Oldest,
}

impl DropPolicy {
    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            DropPolicy::Newest => "newest",
            DropPolicy::Oldest => "oldest",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "newest" => Some(DropPolicy::Newest),
            "oldest" => Some(DropPolicy::Oldest),
            _ => None,
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Worker count: both the modelled executor count in virtual time and
    /// the real thread-pool size running the detector compute.
    pub workers: usize,
    /// Maximum frames (one per stream) fused into a proposal micro-batch.
    pub max_batch: usize,
    /// How long a worker may wait (virtual seconds) for more streams to
    /// contribute frames before closing an under-full batch. `0.0`
    /// dispatches immediately.
    pub batch_window_s: f64,
    /// Bounded per-stream queue length; arrivals beyond it invoke the
    /// [`DropPolicy`].
    pub queue_capacity: usize,
    /// Stream selection policy.
    pub policy: SchedulePolicy,
    /// Backpressure behaviour on a full queue.
    pub drop_policy: DropPolicy,
    /// GPU/CPU execution-time model used for all virtual-time accounting.
    pub timing: GpuTimingModel,
}

impl ServeConfig {
    /// Sensible single-GPU defaults: 4 workers, batches of up to 4 with no
    /// added wait, 64-frame queues, round-robin, drop-newest.
    pub fn new() -> Self {
        Self {
            workers: 4,
            max_batch: 4,
            batch_window_s: 0.0,
            queue_capacity: 64,
            policy: SchedulePolicy::RoundRobin,
            drop_policy: DropPolicy::Newest,
            timing: GpuTimingModel::titan_x_maxwell(),
        }
    }

    /// Returns a copy with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy with a different micro-batch limit.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Returns a copy with a different batch window.
    pub fn with_batch_window_s(mut self, batch_window_s: f64) -> Self {
        self.batch_window_s = batch_window_s;
        self
    }

    /// Returns a copy with a different queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Returns a copy with a different scheduling policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different drop policy.
    pub fn with_drop_policy(mut self, drop_policy: DropPolicy) -> Self {
        self.drop_policy = drop_policy;
        self
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.max_batch >= 1, "need a batch size of at least one");
        assert!(
            self.queue_capacity >= 1,
            "need queue capacity of at least one"
        );
        assert!(
            self.batch_window_s >= 0.0 && self.batch_window_s.is_finite(),
            "batch window must be finite and non-negative"
        );
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_applies_every_knob() {
        let cfg = ServeConfig::new()
            .with_workers(8)
            .with_max_batch(16)
            .with_batch_window_s(0.01)
            .with_queue_capacity(2)
            .with_policy(SchedulePolicy::LeastBacklog)
            .with_drop_policy(DropPolicy::Oldest);
        cfg.validate();
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.max_batch, 16);
        assert_eq!(cfg.queue_capacity, 2);
        assert_eq!(cfg.policy, SchedulePolicy::LeastBacklog);
        assert_eq!(cfg.drop_policy, DropPolicy::Oldest);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        ServeConfig::new().with_workers(0).validate();
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [SchedulePolicy::RoundRobin, SchedulePolicy::LeastBacklog] {
            assert_eq!(SchedulePolicy::from_name(p.name()), Some(p));
        }
        for d in [DropPolicy::Newest, DropPolicy::Oldest] {
            assert_eq!(DropPolicy::from_name(d.name()), Some(d));
        }
        assert_eq!(SchedulePolicy::from_name("x"), None);
    }
}
