//! Time-travel replay: re-drive a recorded stream bit-exactly from the
//! nearest snapshot.
//!
//! A recorded run books a [`StreamSnapshot`] every
//! [`snapshot_every_frames`](crate::RecorderConfig::snapshot_every_frames)
//! completions, at a **stage-boundary suspend point** — exactly the
//! instants live migration relies on, when the pipeline's complete
//! cross-frame state (tracker tracks *and* the detectors' sequential
//! random-stream caches) is consolidated in the system box. Replay builds
//! a fresh pipeline from the stream's factory, imports the snapshot's
//! [`PipelineState`], and re-drives exactly the frames the live run
//! processed after it (dropped frames were never seen by the pipeline, so
//! they are skipped here too). Because every scheduling decision lived in
//! virtual time, the replayed outputs are **bit-identical** to the live
//! run — verified per frame against the recorded
//! [`output_hash`](catdet_core::output_hash()).
//!
//! Streams served under a frame policy replay from the **recorded policy
//! rows**, not by re-running the decision logic: a
//! [`Policy`](catdet_recorder::EventKind::Policy) event marks each coasted
//! or stride-skipped frame, so replay coasts, skips or detects exactly as
//! the live run did — even when downgrade-before-drop toggled the
//! stream's policy class mid-run (those toggles depend on fleet-wide
//! admission state replay cannot reconstruct). A
//! [`Policied`](catdet_core::PipelineState::Policied) snapshot is
//! unwrapped to its inner pipeline state first; the wrapper's counters
//! are not needed once the decisions come from the recording. Like
//! detections, policy rows must survive chunk eviction over the replay
//! window.

use crate::scheduler::StreamSpec;
use catdet_core::{drive_frame, output_hash, PipelineState, PolicyDecision, StagedDetector};
use catdet_metrics::Detection;
use catdet_recorder::{Event, EventKind, Query, SharedRecorder};
use std::collections::HashMap;

/// Per-stream state captured at a snapshot point: the complete pipeline
/// state plus the serving counters at capture. Stored opaquely in the
/// recorder ([`catdet_recorder::Snapshot::payload`]) and downcast back
/// during replay.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Complete cross-frame pipeline state (tracker population and the
    /// detectors' sequential stream caches).
    pub state: PipelineState,
    /// Frames arrived at capture.
    pub arrived: usize,
    /// Frames completed at capture (equals the snapshot's sequence
    /// number).
    pub processed: usize,
    /// Frames dropped at capture (backpressure + admission).
    pub dropped: usize,
    /// Frames queued at capture.
    pub queue_depth: usize,
}

/// One frame re-driven during replay, with its live-run fingerprint.
#[derive(Debug, Clone)]
pub struct ReplayedFrame {
    /// 1-based per-stream completion sequence number.
    pub seq: usize,
    /// The frame's index within its source sequence.
    pub frame_index: usize,
    /// The replayed detections.
    pub detections: Vec<Detection>,
    /// The live run's recorded output hash for this frame.
    pub recorded_hash: u64,
    /// The replayed output's hash (equals `recorded_hash` on a bit-exact
    /// replay).
    pub replayed_hash: u64,
}

/// Result of replaying one stream from the nearest snapshot.
#[derive(Debug)]
pub struct ReplayReport {
    /// Fleet-wide id of the replayed stream.
    pub stream: usize,
    /// Sequence number replay resumed after (`0` when no snapshot was
    /// usable and the stream was re-driven from the beginning).
    pub resumed_after_seq: usize,
    /// Virtual time of the snapshot replay resumed from, if any.
    pub snapshot_t_s: Option<f64>,
    /// The re-driven frames, in live completion order.
    pub frames: Vec<ReplayedFrame>,
}

impl ReplayReport {
    /// Whether every replayed frame reproduced its recorded output hash.
    pub fn verified(&self) -> bool {
        self.frames
            .iter()
            .all(|f| f.replayed_hash == f.recorded_hash)
    }

    /// Sequence numbers of frames whose replayed output diverged from the
    /// recording (empty on a bit-exact replay).
    pub fn mismatched_seqs(&self) -> Vec<usize> {
        self.frames
            .iter()
            .filter(|f| f.replayed_hash != f.recorded_hash)
            .map(|f| f.seq)
            .collect()
    }
}

/// Why a replay could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// No detection events of the stream survive at or after the resume
    /// point.
    NothingRecorded {
        /// The requested stream.
        stream: usize,
    },
    /// Chunk eviction left a hole between the resume point and the
    /// surviving events.
    EvictedGap {
        /// The requested stream.
        stream: usize,
        /// First sequence number replay needed.
        expected_seq: usize,
        /// First sequence number that survives.
        found_seq: usize,
    },
    /// The nearest snapshot's payload is not a [`StreamSnapshot`].
    ForeignSnapshot {
        /// The requested stream.
        stream: usize,
    },
    /// A recorded frame index has no frame in the provided source.
    MissingFrame {
        /// The requested stream.
        stream: usize,
        /// The recorded frame index with no source frame.
        frame_index: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NothingRecorded { stream } => write!(
                f,
                "stream {stream}: no recorded completions at or after the resume point; \
                 record with a snapshot cadence and enough retention to keep the window"
            ),
            ReplayError::EvictedGap {
                stream,
                expected_seq,
                found_seq,
            } => write!(
                f,
                "stream {stream}: replay needs completion #{expected_seq} but the earliest \
                 surviving one is #{found_seq} — chunk eviction dropped the gap; raise the \
                 retention budget (--record-retention-chunks) or snapshot more often"
            ),
            ReplayError::ForeignSnapshot { stream } => write!(
                f,
                "stream {stream}: the nearest snapshot was not captured by the serving \
                 engine (payload is not a StreamSnapshot)"
            ),
            ReplayError::MissingFrame {
                stream,
                frame_index,
            } => write!(
                f,
                "stream {stream}: recorded completion references frame index {frame_index} \
                 absent from the provided source — replay needs the same StreamSource the \
                 live run served"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays `spec`'s stream from the nearest snapshot at or before
/// `from_t_s`, re-driving every recorded completion after it and verifying
/// each frame's output hash against the recording.
///
/// `spec` must describe the stream exactly as the live run served it (same
/// [`StreamSource`](catdet_data::StreamSource), same factory) — the frame
/// feed and pipeline recipe are deterministic, so this is what makes the
/// replay self-contained. When no usable snapshot exists at or before
/// `from_t_s` (cadence `0`, or the time predates the first capture), the
/// stream is re-driven from the beginning, which needs every completion
/// since sequence 1 to survive eviction.
///
/// # Errors
///
/// See [`ReplayError`]; every variant names the retention or input fix.
pub fn replay_stream(
    recorder: &SharedRecorder,
    spec: &StreamSpec,
    from_t_s: f64,
) -> Result<ReplayReport, ReplayError> {
    let stream = spec.source.stream_id;
    let snapshot = recorder.nearest_snapshot(stream, from_t_s);
    let (resumed_after_seq, snapshot_t_s, state) = match &snapshot {
        Some(snap) => {
            let Some(payload) = snap.payload.downcast_ref::<StreamSnapshot>() else {
                return Err(ReplayError::ForeignSnapshot { stream });
            };
            (snap.seq, Some(snap.t_s), Some(payload.state.clone()))
        }
        None => (0, None, None),
    };

    // The live run's completions after the resume point, in seq order
    // (scan returns time order, which per stream is completion order).
    let recorded = recorder.scan(
        &Query::all()
            .kind(EventKind::Detection)
            .stream(stream)
            .between(snapshot_t_s.unwrap_or(f64::NEG_INFINITY), f64::INFINITY),
    );
    let mut todo: Vec<(usize, usize, u64)> = recorded
        .iter()
        .filter_map(|r| match r.event {
            Event::Detection {
                seq,
                frame_index,
                output_hash,
                ..
            } if seq > resumed_after_seq => Some((seq, frame_index, output_hash)),
            _ => None,
        })
        .collect();
    todo.sort_by_key(|&(seq, _, _)| seq);
    let Some(&(first_seq, _, _)) = todo.first() else {
        return Err(ReplayError::NothingRecorded { stream });
    };
    if first_seq != resumed_after_seq + 1 {
        return Err(ReplayError::EvictedGap {
            stream,
            expected_seq: resumed_after_seq + 1,
            found_seq: first_seq,
        });
    }
    for pair in todo.windows(2) {
        if pair[1].0 != pair[0].0 + 1 {
            return Err(ReplayError::EvictedGap {
                stream,
                expected_seq: pair[0].0 + 1,
                found_seq: pair[1].0,
            });
        }
    }

    // Frame-policy decisions the live run recorded over the window: only
    // coasted/skipped frames have rows (detect frames record nothing, and
    // the degrade-transition markers carry codes outside the decision
    // range, so they fall out of `from_code` here).
    let mut decisions: HashMap<usize, PolicyDecision> = HashMap::new();
    for r in recorder.scan(
        &Query::all()
            .kind(EventKind::Policy)
            .stream(stream)
            .between(snapshot_t_s.unwrap_or(f64::NEG_INFINITY), f64::INFINITY),
    ) {
        if let Event::Policy {
            frame_index,
            decision,
            ..
        } = r.event
        {
            if let Some(d @ (PolicyDecision::Coast | PolicyDecision::Skip)) =
                PolicyDecision::from_code(decision)
            {
                decisions.insert(frame_index, d);
            }
        }
    }

    let mut system: Box<dyn StagedDetector> = spec.factory.build_staged();
    if let Some(state) = state {
        // A policied stream's wrapper state is superfluous here — the
        // recorded rows already say what each frame did — so replay drives
        // the bare pipeline from the inner state.
        system.import_state(match state {
            PipelineState::Policied { inner, .. } => *inner,
            other => other,
        });
    }
    let frames = spec.source.frames();
    let mut replayed = Vec::with_capacity(todo.len());
    for (seq, frame_index, recorded_hash) in todo {
        let Some(sf) = frames.iter().find(|sf| sf.frame.index == frame_index) else {
            return Err(ReplayError::MissingFrame {
                stream,
                frame_index,
            });
        };
        let detections = match decisions.get(&frame_index) {
            Some(PolicyDecision::Coast) => {
                system
                    .coast_frame(&sf.frame)
                    .expect("recorded coast on a pipeline that cannot coast")
                    .detections
            }
            // A stride-skipped frame never touched the live pipeline.
            Some(PolicyDecision::Skip) => Vec::new(),
            _ => drive_frame(system.as_mut(), &sf.frame).detections,
        };
        let replayed_hash = output_hash(&detections);
        replayed.push(ReplayedFrame {
            seq,
            frame_index,
            detections,
            recorded_hash,
            replayed_hash,
        });
    }
    Ok(ReplayReport {
        stream,
        resumed_after_seq,
        snapshot_t_s,
        frames: replayed,
    })
}
