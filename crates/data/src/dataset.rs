//! Dataset containers: frames, sequences, datasets.

use catdet_sim::{ActorClass, GroundTruthObject};
use serde::{Deserialize, Serialize};

/// One video frame with its annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Which sequence this frame belongs to.
    pub sequence_id: usize,
    /// Index within the sequence.
    pub index: usize,
    /// Ground-truth objects visible in this frame.
    pub ground_truth: Vec<GroundTruthObject>,
    /// Whether this frame carries evaluation labels. Sparsely annotated
    /// datasets (CityPersons) run the detector on every frame but score
    /// only the labelled ones.
    pub labeled: bool,
}

/// A contiguous video sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequence {
    /// Sequence identity within the dataset.
    pub id: usize,
    /// Frame rate (informational; the delay metric is in frames).
    pub fps: f32,
    frames: Vec<Frame>,
}

impl Sequence {
    /// Creates a sequence from its frames.
    ///
    /// # Panics
    ///
    /// Panics if any frame's `sequence_id` disagrees with `id` or frames
    /// are not consecutively indexed from zero.
    pub fn new(id: usize, fps: f32, frames: Vec<Frame>) -> Self {
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.sequence_id, id, "frame belongs to another sequence");
            assert_eq!(f.index, i, "frames must be consecutively indexed");
        }
        Self { id, fps, frames }
    }

    /// The frames, in order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// A complete video-detection dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoDataset {
    /// Dataset name (e.g. `"kitti-like"`).
    pub name: String,
    /// Frame width in pixels.
    pub width: f32,
    /// Frame height in pixels.
    pub height: f32,
    /// Classes evaluated on this dataset.
    pub classes: Vec<ActorClass>,
    sequences: Vec<Sequence>,
}

impl VideoDataset {
    /// Assembles a dataset.
    pub fn new(
        name: impl Into<String>,
        width: f32,
        height: f32,
        classes: Vec<ActorClass>,
        sequences: Vec<Sequence>,
    ) -> Self {
        Self {
            name: name.into(),
            width,
            height,
            classes,
            sequences,
        }
    }

    /// The sequences.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Total frame count across sequences.
    pub fn total_frames(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// Number of labelled frames.
    pub fn labeled_frames(&self) -> usize {
        self.sequences
            .iter()
            .flat_map(|s| s.frames())
            .filter(|f| f.labeled)
            .count()
    }

    /// Total number of ground-truth annotations on labelled frames.
    pub fn labeled_annotations(&self) -> usize {
        self.sequences
            .iter()
            .flat_map(|s| s.frames())
            .filter(|f| f.labeled)
            .map(|f| f.ground_truth.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: usize, idx: usize) -> Frame {
        Frame {
            sequence_id: seq,
            index: idx,
            ground_truth: vec![],
            labeled: true,
        }
    }

    #[test]
    fn sequence_accepts_consistent_frames() {
        let s = Sequence::new(3, 10.0, vec![frame(3, 0), frame(3, 1)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "another sequence")]
    fn sequence_rejects_foreign_frames() {
        let _ = Sequence::new(3, 10.0, vec![frame(4, 0)]);
    }

    #[test]
    #[should_panic(expected = "consecutively")]
    fn sequence_rejects_gaps() {
        let _ = Sequence::new(3, 10.0, vec![frame(3, 0), frame(3, 2)]);
    }

    #[test]
    fn dataset_counts() {
        let s0 = Sequence::new(0, 10.0, vec![frame(0, 0), frame(0, 1)]);
        let mut f = frame(1, 0);
        f.labeled = false;
        let s1 = Sequence::new(1, 10.0, vec![f]);
        let ds = VideoDataset::new("t", 100.0, 50.0, vec![ActorClass::Car], vec![s0, s1]);
        assert_eq!(ds.total_frames(), 3);
        assert_eq!(ds.labeled_frames(), 2);
        assert_eq!(ds.labeled_annotations(), 0);
    }
}
