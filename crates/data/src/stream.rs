//! Stream adapters: datasets as live per-camera frame feeds.
//!
//! A serving system does not see a dataset — it sees N cameras, each
//! pushing frames at its own frame rate. [`StreamSource`] turns one
//! [`Sequence`] of a [`VideoDataset`] into exactly that: an iterator of
//! [`StreamFrame`]s carrying simulated arrival timestamps derived from the
//! sequence's fps (plus an optional start offset so cameras do not tick in
//! lock-step).

use crate::dataset::{Frame, Sequence, VideoDataset};

/// One frame as it arrives from a camera stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFrame {
    /// Simulated arrival time in seconds since serving start.
    pub arrival_s: f64,
    /// The frame itself (annotations travel with it for evaluation).
    pub frame: Frame,
}

/// A single camera stream: frames plus deterministic arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSource {
    /// Stream identity (unique within one serving run).
    pub stream_id: usize,
    /// Camera frame rate in frames per second.
    pub fps: f32,
    /// Frame width in pixels.
    pub width: f32,
    /// Frame height in pixels.
    pub height: f32,
    frames: Vec<StreamFrame>,
}

impl StreamSource {
    /// Wraps one sequence as a stream; frame `i` arrives at
    /// `start_offset_s + i / fps`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence frame rate is not positive.
    pub fn from_sequence(stream_id: usize, sequence: &Sequence, start_offset_s: f64) -> Self {
        Self::from_sequence_with_geometry(stream_id, sequence, start_offset_s, 0.0, 0.0)
    }

    /// Like [`StreamSource::from_sequence`], recording the camera geometry
    /// of the owning dataset (useful when mixing heterogeneous workloads).
    pub fn from_sequence_with_geometry(
        stream_id: usize,
        sequence: &Sequence,
        start_offset_s: f64,
        width: f32,
        height: f32,
    ) -> Self {
        assert!(
            sequence.fps > 0.0,
            "stream {stream_id}: fps must be positive"
        );
        let period = 1.0 / sequence.fps as f64;
        let frames = sequence
            .frames()
            .iter()
            .map(|f| StreamFrame {
                arrival_s: start_offset_s + f.index as f64 * period,
                frame: f.clone(),
            })
            .collect();
        Self {
            stream_id,
            fps: sequence.fps,
            width,
            height,
            frames,
        }
    }

    /// Builds a stream from explicit frames and arrival times, for
    /// workload generators whose arrival process is not a fixed frame
    /// rate (bursts, load steps, replayed traces).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive or the arrival times are not
    /// finite and non-decreasing.
    pub fn from_frames(
        stream_id: usize,
        fps: f32,
        width: f32,
        height: f32,
        frames: Vec<StreamFrame>,
    ) -> Self {
        assert!(fps > 0.0, "stream {stream_id}: fps must be positive");
        for pair in frames.windows(2) {
            assert!(
                pair[0].arrival_s <= pair[1].arrival_s,
                "stream {stream_id}: arrival times must be non-decreasing"
            );
        }
        assert!(
            frames.iter().all(|f| f.arrival_s.is_finite()),
            "stream {stream_id}: arrival times must be finite"
        );
        Self {
            stream_id,
            fps,
            width,
            height,
            frames,
        }
    }

    /// Turns every sequence of a dataset into a stream.
    ///
    /// Stream `i` starts at `i * stagger_s`, staggering camera phases so
    /// arrivals interleave rather than stampede (pass `0.0` for lock-step
    /// cameras).
    pub fn from_dataset(dataset: &VideoDataset, stagger_s: f64) -> Vec<StreamSource> {
        dataset
            .sequences()
            .iter()
            .enumerate()
            .map(|(i, seq)| {
                Self::from_sequence_with_geometry(
                    i,
                    seq,
                    i as f64 * stagger_s,
                    dataset.width,
                    dataset.height,
                )
            })
            .collect()
    }

    /// The frames with their arrival times, in arrival order.
    pub fn frames(&self) -> &[StreamFrame] {
        &self.frames
    }

    /// Number of frames in the stream.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the stream carries no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Arrival time of the last frame (serving must run at least this
    /// long), or `0.0` for an empty stream.
    pub fn last_arrival_s(&self) -> f64 {
        self.frames.last().map_or(0.0, |f| f.arrival_s)
    }

    /// Reassigns the stream id (used when merging streams from several
    /// datasets into one serving run).
    pub fn with_stream_id(mut self, stream_id: usize) -> Self {
        self.stream_id = stream_id;
        self
    }
}

impl IntoIterator for StreamSource {
    type Item = StreamFrame;
    type IntoIter = std::vec::IntoIter<StreamFrame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.into_iter()
    }
}

impl<'a> IntoIterator for &'a StreamSource {
    type Item = &'a StreamFrame;
    type IntoIter = std::slice::Iter<'a, StreamFrame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::kitti_like;

    #[test]
    fn arrival_times_follow_fps() {
        let ds = kitti_like().sequences(1).frames_per_sequence(5).build();
        let s = StreamSource::from_sequence(0, &ds.sequences()[0], 0.0);
        // KITTI-like runs at 10 fps → 100 ms period.
        let times: Vec<f64> = s.frames().iter().map(|f| f.arrival_s).collect();
        assert_eq!(times.len(), 5);
        for (i, t) in times.iter().enumerate() {
            assert!((t - i as f64 * 0.1).abs() < 1e-9);
        }
        assert!((s.last_arrival_s() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn stagger_offsets_streams() {
        let ds = kitti_like().sequences(3).frames_per_sequence(4).build();
        let streams = StreamSource::from_dataset(&ds, 0.03);
        assert_eq!(streams.len(), 3);
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(s.stream_id, i);
            assert!((s.frames()[0].arrival_s - i as f64 * 0.03).abs() < 1e-9);
            assert_eq!(s.width, 1242.0);
        }
    }

    #[test]
    fn frames_round_trip_unchanged() {
        let ds = kitti_like().sequences(1).frames_per_sequence(6).build();
        let s = StreamSource::from_sequence(0, &ds.sequences()[0], 0.0);
        let originals = ds.sequences()[0].frames();
        for (sf, f) in s.frames().iter().zip(originals) {
            assert_eq!(&sf.frame, f);
        }
        // Owning iteration yields the same frames.
        let collected: Vec<StreamFrame> = s.clone().into_iter().collect();
        assert_eq!(collected.len(), 6);
    }

    #[test]
    fn stream_id_can_be_reassigned() {
        let ds = kitti_like().sequences(1).frames_per_sequence(2).build();
        let s = StreamSource::from_sequence(0, &ds.sequences()[0], 0.0).with_stream_id(7);
        assert_eq!(s.stream_id, 7);
    }
}
