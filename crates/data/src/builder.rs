//! Deterministic dataset builders for the two benchmark shapes.

use crate::dataset::{Frame, Sequence, VideoDataset};
use catdet_sim::{ActorClass, SceneConfig, WorldSim};

/// Builds a [`VideoDataset`] from a scene configuration.
///
/// Obtain one from [`kitti_like`] or [`citypersons_like`] and override the
/// scale knobs as needed; `build` is deterministic in the seed.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    name: String,
    scene: SceneConfig,
    classes: Vec<ActorClass>,
    sequences: usize,
    frames_per_sequence: usize,
    seed: u64,
    /// `Some((period, offset))`: only frames with `index % period == offset`
    /// are labelled. `None`: every frame is labelled.
    label_schedule: Option<(usize, usize)>,
}

impl DatasetBuilder {
    /// Number of sequences to generate.
    pub fn sequences(mut self, n: usize) -> Self {
        self.sequences = n;
        self
    }

    /// Frames per sequence.
    pub fn frames_per_sequence(mut self, n: usize) -> Self {
        self.frames_per_sequence = n;
        self
    }

    /// Master seed; sequence `i` uses an independent stream derived from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the scene configuration (for custom worlds).
    pub fn scene(mut self, scene: SceneConfig) -> Self {
        self.scene = scene;
        self
    }

    /// Generates the dataset.
    pub fn build(&self) -> VideoDataset {
        let mut sequences = Vec::with_capacity(self.sequences);
        for seq_id in 0..self.sequences {
            // Distinct, well-separated stream per sequence.
            let seq_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seq_id as u64);
            let mut sim = WorldSim::new(self.scene.clone(), seq_seed);
            let frames = (0..self.frames_per_sequence)
                .map(|index| {
                    let sf = sim.step();
                    let labeled = match self.label_schedule {
                        None => true,
                        Some((period, offset)) => index % period == offset,
                    };
                    Frame {
                        sequence_id: seq_id,
                        index,
                        ground_truth: sf.objects,
                        labeled,
                    }
                })
                .collect();
            sequences.push(Sequence::new(seq_id, self.scene.fps, frames));
        }
        VideoDataset::new(
            self.name.clone(),
            self.scene.camera.width,
            self.scene.camera.height,
            self.classes.clone(),
            sequences,
        )
    }
}

/// A KITTI-tracking-shaped dataset: 21 sequences of ~381 frames (≈8 000
/// frames total, matching the benchmark's 8 008) at 10 fps, 1242×375,
/// every frame labelled, Car + Pedestrian evaluation.
pub fn kitti_like() -> DatasetBuilder {
    DatasetBuilder {
        name: "kitti-like".into(),
        scene: SceneConfig::kitti_street(),
        classes: vec![ActorClass::Car, ActorClass::Pedestrian],
        sequences: 21,
        frames_per_sequence: 381,
        seed: 2019,
        label_schedule: None,
    }
}

/// A CityPersons-shaped dataset: 30-frame sequences at 30 fps, 2048×1024,
/// Person (pedestrian) evaluation only, and **only frame 19 of each
/// sequence labelled** — the detector still runs on all frames.
///
/// Defaults to 200 sequences (200 labelled images); scale up with
/// [`DatasetBuilder::sequences`] toward the real dataset's 5 000.
pub fn citypersons_like() -> DatasetBuilder {
    DatasetBuilder {
        name: "citypersons-like".into(),
        scene: SceneConfig::city_street(),
        classes: vec![ActorClass::Pedestrian],
        sequences: 200,
        frames_per_sequence: 30,
        seed: 2017,
        label_schedule: Some((30, 19)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kitti_defaults_match_benchmark_shape() {
        let b = kitti_like();
        assert_eq!(b.sequences, 21);
        assert_eq!(b.sequences * b.frames_per_sequence, 8001);
    }

    #[test]
    fn build_is_deterministic() {
        let a = kitti_like().sequences(2).frames_per_sequence(30).build();
        let b = kitti_like().sequences(2).frames_per_sequence(30).build();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_content() {
        let a = kitti_like()
            .sequences(1)
            .frames_per_sequence(30)
            .seed(1)
            .build();
        let b = kitti_like()
            .sequences(1)
            .frames_per_sequence(30)
            .seed(2)
            .build();
        assert_ne!(a, b);
    }

    #[test]
    fn sequences_are_independent_of_count() {
        // Adding more sequences must not change earlier ones.
        let small = kitti_like().sequences(2).frames_per_sequence(20).build();
        let large = kitti_like().sequences(4).frames_per_sequence(20).build();
        assert_eq!(small.sequences()[0], large.sequences()[0]);
        assert_eq!(small.sequences()[1], large.sequences()[1]);
    }

    #[test]
    fn kitti_labels_every_frame() {
        let ds = kitti_like().sequences(1).frames_per_sequence(40).build();
        assert_eq!(ds.labeled_frames(), 40);
    }

    #[test]
    fn citypersons_labels_frame_19_only() {
        let ds = citypersons_like().sequences(3).build();
        assert_eq!(ds.total_frames(), 90);
        assert_eq!(ds.labeled_frames(), 3);
        for s in ds.sequences() {
            for f in s.frames() {
                assert_eq!(f.labeled, f.index == 19);
            }
        }
    }

    #[test]
    fn citypersons_is_person_only() {
        let ds = citypersons_like().sequences(1).build();
        assert_eq!(ds.classes, vec![ActorClass::Pedestrian]);
        assert_eq!(ds.width, 2048.0);
    }

    #[test]
    fn kitti_dataset_is_annotated() {
        let ds = kitti_like().sequences(2).frames_per_sequence(60).build();
        assert!(ds.labeled_annotations() > 100);
    }
}
