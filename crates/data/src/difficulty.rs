//! KITTI difficulty protocol and class IoU thresholds.
//!
//! The official KITTI evaluation defines three difficulty levels; each sets
//! minimum bounding-box height and maximum occlusion/truncation for a
//! ground-truth object to *count*. Objects outside the current level are
//! **ignored**: they are neither false negatives, nor do detections
//! matching them become false positives (see `catdet_metrics::matching`).
//!
//! The paper evaluates Moderate and Hard ("the Easy mode does not
//! distinguish different methods", §6.1).

use catdet_sim::{ActorClass, GroundTruthObject};
use serde::{Deserialize, Serialize};

/// KITTI difficulty level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    /// ≥40 px, fully visible, truncation ≤ 15%.
    Easy,
    /// ≥25 px, partly occluded, truncation ≤ 30%.
    Moderate,
    /// ≥25 px, heavily occluded, truncation ≤ 50%.
    Hard,
}

impl Difficulty {
    /// Minimum bounding-box pixel height.
    pub fn min_height(&self) -> f32 {
        match self {
            Difficulty::Easy => 40.0,
            Difficulty::Moderate | Difficulty::Hard => 25.0,
        }
    }

    /// Maximum occlusion fraction.
    ///
    /// KITTI uses discrete occlusion levels {0: fully visible, 1: partly,
    /// 2: largely occluded}; our simulator provides continuous fractions,
    /// mapped as level 0 ≤ 0.2 < level 1 ≤ 0.6 < level 2.
    pub fn max_occlusion(&self) -> f32 {
        match self {
            Difficulty::Easy => 0.2,
            Difficulty::Moderate => 0.6,
            Difficulty::Hard => 0.9,
        }
    }

    /// Maximum truncation fraction.
    pub fn max_truncation(&self) -> f32 {
        match self {
            Difficulty::Easy => 0.15,
            Difficulty::Moderate => 0.3,
            Difficulty::Hard => 0.5,
        }
    }

    /// Whether a ground-truth object counts at this difficulty.
    pub fn admits(&self, o: &GroundTruthObject) -> bool {
        o.height_px() >= self.min_height()
            && o.occlusion <= self.max_occlusion()
            && o.truncation <= self.max_truncation()
    }

    /// All levels, easiest first.
    pub const ALL: [Difficulty; 3] = [Difficulty::Easy, Difficulty::Moderate, Difficulty::Hard];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Difficulty::Easy => "Easy",
            Difficulty::Moderate => "Moderate",
            Difficulty::Hard => "Hard",
        }
    }
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The IoU a detection must reach to match a ground truth of this class
/// (KITTI convention: 70% for Car, 50% for Pedestrian; CityPersons'
/// Pascal-VOC protocol also uses 50% for Person).
pub fn iou_threshold_for(class: ActorClass) -> f32 {
    match class {
        ActorClass::Car => 0.7,
        ActorClass::Pedestrian => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdet_geom::Box2;

    fn gt(height: f32, occ: f32, trunc: f32) -> GroundTruthObject {
        GroundTruthObject {
            track_id: 0,
            class: ActorClass::Car,
            bbox: Box2::from_xywh(0.0, 0.0, height * 1.5, height),
            full_bbox: Box2::from_xywh(0.0, 0.0, height * 1.5, height),
            occlusion: occ,
            truncation: trunc,
            depth: 20.0,
        }
    }

    #[test]
    fn easy_requires_large_visible_objects() {
        assert!(Difficulty::Easy.admits(&gt(45.0, 0.0, 0.0)));
        assert!(!Difficulty::Easy.admits(&gt(30.0, 0.0, 0.0))); // too small
        assert!(!Difficulty::Easy.admits(&gt(45.0, 0.4, 0.0))); // occluded
        assert!(!Difficulty::Easy.admits(&gt(45.0, 0.0, 0.2))); // truncated
    }

    #[test]
    fn moderate_admits_partly_occluded() {
        assert!(Difficulty::Moderate.admits(&gt(30.0, 0.5, 0.2)));
        assert!(!Difficulty::Moderate.admits(&gt(30.0, 0.7, 0.0)));
        assert!(!Difficulty::Moderate.admits(&gt(20.0, 0.0, 0.0)));
    }

    #[test]
    fn hard_is_the_most_permissive() {
        let tough = gt(26.0, 0.85, 0.45);
        assert!(Difficulty::Hard.admits(&tough));
        assert!(!Difficulty::Moderate.admits(&tough));
        assert!(!Difficulty::Easy.admits(&tough));
    }

    #[test]
    fn difficulty_levels_are_nested() {
        // Anything Easy admits, Moderate admits; anything Moderate admits,
        // Hard admits.
        for h in [20.0, 26.0, 45.0, 80.0] {
            for occ in [0.0, 0.1, 0.3, 0.7, 0.95] {
                for tr in [0.0, 0.1, 0.25, 0.45, 0.6] {
                    let o = gt(h, occ, tr);
                    if Difficulty::Easy.admits(&o) {
                        assert!(Difficulty::Moderate.admits(&o));
                    }
                    if Difficulty::Moderate.admits(&o) {
                        assert!(Difficulty::Hard.admits(&o));
                    }
                }
            }
        }
    }

    #[test]
    fn iou_thresholds_match_kitti() {
        assert_eq!(iou_threshold_for(ActorClass::Car), 0.7);
        assert_eq!(iou_threshold_for(ActorClass::Pedestrian), 0.5);
    }

    #[test]
    fn names_display() {
        assert_eq!(Difficulty::Moderate.to_string(), "Moderate");
        assert_eq!(Difficulty::ALL.len(), 3);
    }
}
