//! Property tests for the CamLink codec: arbitrary records must survive
//! encode → arbitrary re-chunking → decode bit-for-bit, a truncated tail
//! must never fabricate a record, and a garbage prefix must cost only
//! the garbage.

use catdet_net::{encode_record, Decoder, FrameRecord, MAGIC};
use proptest::prelude::*;

/// Strategy pieces for one record: ids, capture bits and a payload of
/// arbitrary bytes (empty allowed — a record is valid without payload).
fn record_strategy() -> impl Strategy<Value = FrameRecord> {
    (
        0u32..1000,
        0u32..100_000,
        0u64..=u64::MAX,
        proptest::collection::vec(0u8..=255, 0..200),
    )
        .prop_map(
            |(stream_id, frame_index, capture_bits, payload)| FrameRecord {
                stream_id,
                frame_index,
                capture_bits,
                payload,
            },
        )
}

fn encode_all(records: &[FrameRecord]) -> Vec<u8> {
    let mut wire = Vec::new();
    for r in records {
        encode_record(r, &mut wire);
    }
    wire
}

/// Feeds `wire` to a decoder split at boundaries walked from `cuts`
/// (each cut is a chunk length; the tail goes in one final push).
fn decode_chunked(wire: &[u8], cuts: &[usize]) -> (Decoder, Vec<FrameRecord>) {
    let mut dec = Decoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    for &cut in cuts {
        if at >= wire.len() {
            break;
        }
        let end = (at + cut.max(1)).min(wire.len());
        dec.push(&wire[at..end]);
        while let Some(r) = dec.next_record() {
            out.push(r);
        }
        at = end;
    }
    if at < wire.len() {
        dec.push(&wire[at..]);
    }
    dec.finish();
    while let Some(r) = dec.next_record() {
        out.push(r);
    }
    (dec, out)
}

proptest! {
    #[test]
    fn records_round_trip_across_arbitrary_chunk_boundaries(
        records in proptest::collection::vec(record_strategy(), 1..8),
        cuts in proptest::collection::vec(1usize..64, 0..64),
    ) {
        let wire = encode_all(&records);
        let (dec, decoded) = decode_chunked(&wire, &cuts);
        prop_assert_eq!(decoded, records);
        prop_assert_eq!(dec.records_corrupted, 0);
        prop_assert_eq!(dec.bytes_skipped, 0);
    }

    #[test]
    fn a_truncated_tail_yields_only_fully_contained_records(
        records in proptest::collection::vec(record_strategy(), 1..6),
        cut_back in 1usize..40,
    ) {
        let wire = encode_all(&records);
        // Chop strictly inside the final record.
        let last_len = {
            let mut solo = Vec::new();
            encode_record(records.last().unwrap(), &mut solo);
            solo.len()
        };
        let keep = wire.len() - cut_back.min(last_len - 1).max(1);
        let (_, decoded) = decode_chunked(&wire[..keep], &[7, 13, 31]);
        // Everything before the mangled tail decodes; the tail never
        // yields a record (its checksum cannot be present).
        prop_assert_eq!(decoded, records[..records.len() - 1].to_vec());
    }

    #[test]
    fn a_garbage_prefix_costs_only_the_garbage(
        garbage in proptest::collection::vec(0u8..=255, 1..60),
        records in proptest::collection::vec(record_strategy(), 1..5),
        cuts in proptest::collection::vec(1usize..32, 0..48),
    ) {
        // Garbage that happens to contain the magic can eat into a real
        // record (the decoder locks onto a bogus header whose "length"
        // spans real bytes); keep the prefix magic-free so the property
        // is exact. The corrupted-span case is covered separately below.
        let garbage: Vec<u8> = garbage
            .into_iter()
            .map(|b| if b == MAGIC[0] { b ^ 0xFF } else { b })
            .collect();
        let mut wire = garbage.clone();
        wire.extend(encode_all(&records));
        let (dec, decoded) = decode_chunked(&wire, &cuts);
        prop_assert_eq!(decoded, records);
        prop_assert!(dec.bytes_skipped >= garbage.len());
    }

    #[test]
    fn corrupting_one_record_never_loses_the_rest(
        records in proptest::collection::vec(record_strategy(), 2..6),
        victim_seed in 0usize..1000,
        flip_seed in 0usize..1000,
    ) {
        let victim = victim_seed % records.len();
        let mut wire = Vec::new();
        let mut spans = Vec::new();
        for r in &records {
            let start = wire.len();
            encode_record(r, &mut wire);
            spans.push(start..wire.len());
        }
        // Flip one body byte of the victim (past magic+len, before crc):
        // its checksum fails, every other record must still decode.
        let span = spans[victim].clone();
        let body = (span.start + 6)..(span.end - 4);
        let target = body.start + flip_seed % body.len();
        wire[target] ^= 0x5A;
        let (dec, decoded) = decode_chunked(&wire, &[11, 3, 29, 17]);
        let expected: Vec<FrameRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, r)| r.clone())
            .collect();
        prop_assert_eq!(decoded, expected);
        prop_assert!(dec.records_corrupted >= 1);
    }
}
