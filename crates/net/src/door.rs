//! Per-client admission at the front door: a token bucket that caps the
//! sustained frame rate any single connection can push past the door,
//! regardless of what the camera offers. An abusive client burns its own
//! bucket; well-behaved clients on other connections are untouched.

/// Token-bucket policy for one connection. Refills continuously at
/// `rate_fps`, holds at most `burst` tokens, spends one token per
/// admitted frame. Starts full so a connection's first `burst` frames
/// are never penalised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoorPolicy {
    rate_fps: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
    /// Frames admitted through the door.
    pub admitted: usize,
    /// Frames rejected at the door (client over its rate).
    pub rejected: usize,
}

impl DoorPolicy {
    /// A full bucket refilling at `rate_fps` with capacity `burst`.
    /// Panics if either is non-positive or non-finite.
    pub fn new(rate_fps: f64, burst: f64) -> Self {
        assert!(
            rate_fps > 0.0 && rate_fps.is_finite(),
            "door rate must be finite and positive"
        );
        assert!(
            burst >= 1.0 && burst.is_finite(),
            "door burst must be finite and at least one frame"
        );
        Self {
            rate_fps,
            burst,
            tokens: burst,
            last_s: 0.0,
            admitted: 0,
            rejected: 0,
        }
    }

    /// Charges one frame arriving at `now_s`; `true` admits it past the
    /// door, `false` rejects it. Rejected frames cost nothing.
    pub fn admit(&mut self, now_s: f64) -> bool {
        let dt = (now_s - self.last_s).max(0.0);
        self.last_s = self.last_s.max(now_s);
        self.tokens = (self.tokens + dt * self.rate_fps).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.admitted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_admitted_then_rate_limits() {
        let mut door = DoorPolicy::new(10.0, 4.0);
        // Four frames in the same instant: the burst allowance.
        for _ in 0..4 {
            assert!(door.admit(0.0));
        }
        assert!(!door.admit(0.0), "bucket is empty");
        // 0.1 s refills exactly one token at 10 fps.
        assert!(door.admit(0.1));
        assert!(!door.admit(0.1));
        assert_eq!(door.admitted, 5);
        assert_eq!(door.rejected, 2);
    }

    #[test]
    fn a_paced_client_is_never_rejected() {
        let mut door = DoorPolicy::new(20.0, 2.0);
        for i in 0..100 {
            assert!(door.admit(i as f64 * 0.05), "20 fps offered at 20 fps cap");
        }
        assert_eq!(door.rejected, 0);
    }

    #[test]
    fn an_abusive_client_converges_to_the_cap() {
        let mut door = DoorPolicy::new(5.0, 2.0);
        // 100 fps offered for 10 s against a 5 fps cap.
        for i in 0..1000 {
            door.admit(i as f64 * 0.01);
        }
        let cap = 5.0 * 10.0 + 2.0; // rate * horizon + burst
        assert!((door.admitted as f64) <= cap + 1.0);
        assert!(door.admitted >= 45, "the cap itself must flow");
    }
}
