//! Async network front door for the CaTDet serving stack.
//!
//! Upstream of the partition layer, cameras are not in-memory frame
//! vectors — they are connections. This crate models that boundary
//! without any real sockets, and without giving up the repo's
//! determinism contract:
//!
//! * [`rt`] — a hand-rolled single-threaded async executor on a
//!   **virtual clock**. No I/O driver, no wall time: the only event
//!   source is the timer wheel, so every run is a discrete-event
//!   simulation whose interleaving is a pure function of the program.
//! * [`codec`] — the CamLink wire format: magic-prefixed,
//!   length-delimited, checksummed frame records, plus an incremental
//!   [`Decoder`] that survives partial writes, garbage
//!   prefixes and corrupted spans by resynchronising on the next magic.
//! * [`sim`] — the simulated uplink: per-connection byte-chunk delivery
//!   schedules with latency, jitter, partial writes, in-flight
//!   reordering and mid-record disconnects, all drawn from a
//!   per-connection seeded RNG.
//! * [`source`] — the async [`FrameSource`] trait
//!   and the CamLink connection state machine: connect, stream,
//!   disconnect, resume-from-cursor.
//! * [`door`] — per-client token-bucket admission at the door, so one
//!   abusive camera cannot crowd out the rest.
//! * [`ingest`] — the whole pass: every connection simulated to
//!   completion, yielding delivered per-stream timelines, a connection
//!   event log and per-client accounting for the serving layer.
//!
//! The ingest pass runs *before* the serving engines as a deterministic
//! pre-pass, so its output — and therefore everything downstream — is
//! bit-identical at every `--threads` count.

#![warn(missing_docs)]

pub mod codec;
pub mod door;
pub mod ingest;
pub mod rt;
pub mod sim;
pub mod source;

pub use codec::{encode_record, synth_payload, Decoder, FrameRecord, MAGIC};
pub use door::DoorPolicy;
pub use ingest::{
    run_ingest, ClientReport, ConnEvent, ConnEventKind, IngestOutcome, IngestReport, NetParams,
};
pub use rt::{Executor, Handle, Sleep};
pub use sim::{mix_seed, ChunkDelivery, LinkParams, SendOutcome, SimLink};
pub use source::{CamLinkSource, FrameSource, LinkNotice, SourcedFrame};
