//! The front-door ingest pass: every client connection simulated to
//! completion on one virtual-time reactor, producing the delivered
//! per-stream frame timelines, a connection-event log and a per-client
//! report.
//!
//! Determinism contract: the entire output of [`run_ingest`] — frame
//! arrival times, event log, report — is a pure function of
//! `(sources, params)`. Per-client randomness is keyed by
//! `mix_seed(params.seed, stream_id)`, and clients never share mutable
//! state while running, so the outcome for one client is bit-identical
//! whatever other clients exist and however tasks interleave.

use crate::door::DoorPolicy;
use crate::rt::{Executor, Handle};
use crate::sim::{mix_seed, LinkParams, SimLink};
use crate::source::{CamLinkSource, FrameSource, LinkNotice};
use catdet_data::{StreamFrame, StreamSource};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Front-door configuration: link behaviour, the bounded per-connection
/// receive window, its drain rate, and the per-client door rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetParams {
    /// Workload seed; each client derives its own stream from it.
    pub seed: u64,
    /// Wire behaviour shared by every connection.
    pub link: LinkParams,
    /// Bounded receive buffer per connection, in frames. When full the
    /// door stops reading the socket — backpressure reaches the camera.
    pub recv_window: usize,
    /// Rate at which buffered frames drain past the door (models the
    /// shard pulling from the connection).
    pub drain_fps: f64,
    /// Sustained per-client frame rate admitted past the door.
    pub door_rate_fps: f64,
    /// Door token-bucket burst capacity, in frames.
    pub door_burst: f64,
}

impl NetParams {
    /// Sensible defaults for `seed`: a clean link, a 32-frame window
    /// draining at 120 fps, and a 120 fps / 16-frame door.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            link: LinkParams::clean(),
            recv_window: 32,
            drain_fps: 120.0,
            door_rate_fps: 120.0,
            door_burst: 16.0,
        }
    }

    /// Panics if any parameter is unusable.
    pub fn validate(&self) {
        self.link.validate();
        assert!(
            self.recv_window >= 1,
            "receive window must hold at least one frame"
        );
        assert!(
            self.drain_fps > 0.0 && self.drain_fps.is_finite(),
            "drain rate must be finite and positive"
        );
        // DoorPolicy::new re-checks, but fail at config time, not later.
        let _ = DoorPolicy::new(self.door_rate_fps, self.door_burst);
    }
}

/// What happened on a connection, for the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnEventKind {
    /// Client connected (once per connection, at time zero).
    Connect,
    /// Connection dropped mid-record; in-flight bytes were lost.
    Disconnect,
    /// Receive window filled: the door stopped reading the socket.
    Throttle,
    /// Camera reconnected and resumed from its cursor.
    Resume,
    /// A frame was rejected by the per-client door rate limiter.
    DoorReject,
}

impl ConnEventKind {
    /// Every kind, in code order.
    pub const ALL: [ConnEventKind; 5] = [
        ConnEventKind::Connect,
        ConnEventKind::Disconnect,
        ConnEventKind::Throttle,
        ConnEventKind::Resume,
        ConnEventKind::DoorReject,
    ];

    /// Stable wire code for recording.
    pub fn code(self) -> u64 {
        match self {
            ConnEventKind::Connect => 0,
            ConnEventKind::Disconnect => 1,
            ConnEventKind::Throttle => 2,
            ConnEventKind::Resume => 3,
            ConnEventKind::DoorReject => 4,
        }
    }

    /// Inverse of [`code`](ConnEventKind::code).
    pub fn from_code(code: u64) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            ConnEventKind::Connect => "connect",
            ConnEventKind::Disconnect => "disconnect",
            ConnEventKind::Throttle => "throttle",
            ConnEventKind::Resume => "resume",
            ConnEventKind::DoorReject => "door-reject",
        }
    }
}

/// One entry in the connection-event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnEvent {
    /// Virtual time of the event.
    pub t_s: f64,
    /// Client (stream) id.
    pub client: usize,
    /// What happened.
    pub kind: ConnEventKind,
    /// The frame index involved: the resume cursor for
    /// disconnect/resume, the head-of-window frame for throttle, the
    /// rejected frame for door-reject, `0` for connect.
    pub frame: usize,
    /// Kind-specific extra: frames offered for connect, window occupancy
    /// for throttle, `0` otherwise.
    pub detail: u64,
}

/// Per-connection accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientReport {
    /// Client (stream) id.
    pub client: usize,
    /// Frames the camera offered.
    pub offered: usize,
    /// Frames delivered past the door.
    pub delivered: usize,
    /// Frames rejected by the door rate limiter.
    pub rejected_at_door: usize,
    /// Frames lost to in-flight corruption (never retransmitted).
    pub lost: usize,
    /// Connection drops (each followed by a resume).
    pub disconnects: usize,
    /// Throttle episodes (window-full stretches, not per-frame).
    pub throttles: usize,
    /// High-water receive-window occupancy; never exceeds the window.
    pub max_buffered: usize,
}

/// Fleet-wide ingest accounting: one [`ClientReport`] per connection.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Per-connection reports, in stream-id order.
    pub clients: Vec<ClientReport>,
    /// The configured receive window (shared by every connection).
    pub recv_window: usize,
}

impl IngestReport {
    /// Total frames offered by all cameras.
    pub fn offered(&self) -> usize {
        self.clients.iter().map(|c| c.offered).sum()
    }

    /// Total frames delivered past the door.
    pub fn delivered(&self) -> usize {
        self.clients.iter().map(|c| c.delivered).sum()
    }

    /// Total frames rejected by the door rate limiter.
    pub fn rejected_at_door(&self) -> usize {
        self.clients.iter().map(|c| c.rejected_at_door).sum()
    }

    /// Total frames lost to in-flight corruption.
    pub fn lost(&self) -> usize {
        self.clients.iter().map(|c| c.lost).sum()
    }

    /// Total connection drops.
    pub fn disconnects(&self) -> usize {
        self.clients.iter().map(|c| c.disconnects).sum()
    }

    /// Total throttle episodes.
    pub fn throttles(&self) -> usize {
        self.clients.iter().map(|c| c.throttles).sum()
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "door: {} clients | {} offered -> {} delivered \
             ({} rejected at door, {} lost in flight, {} disconnects, {} throttle events)",
            self.clients.len(),
            self.offered(),
            self.delivered(),
            self.rejected_at_door(),
            self.lost(),
            self.disconnects(),
            self.throttles(),
        )
    }
}

/// Everything the ingest pass produces.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// The streams as delivered past the door: arrival times are door
    /// drain times, frames are the survivors. Feed these to the serving
    /// layer in place of the originals.
    pub delivered: Vec<StreamSource>,
    /// Connection events, sorted by `(t_s, client)`.
    pub events: Vec<ConnEvent>,
    /// Per-client accounting.
    pub report: IngestReport,
}

struct ClientOutcome {
    stream: StreamSource,
    events: Vec<ConnEvent>,
    report: ClientReport,
}

/// Simulates every connection to completion and returns the delivered
/// streams, the event log and the report. Pure in `(sources, params)`.
pub fn run_ingest(sources: &[StreamSource], params: &NetParams) -> IngestOutcome {
    params.validate();
    let mut ex = Executor::new();
    let results: Rc<RefCell<Vec<Option<ClientOutcome>>>> =
        Rc::new(RefCell::new((0..sources.len()).map(|_| None).collect()));
    for (slot, source) in sources.iter().enumerate() {
        let source = source.clone();
        let handle = ex.handle();
        let results = Rc::clone(&results);
        let params = *params;
        ex.spawn(async move {
            let outcome = run_client(source, &params, handle).await;
            results.borrow_mut()[slot] = Some(outcome);
        });
    }
    ex.run();
    let outcomes = Rc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("ingest tasks still hold results"))
        .into_inner();
    let mut delivered = Vec::with_capacity(sources.len());
    let mut events = Vec::new();
    let mut clients = Vec::with_capacity(sources.len());
    for outcome in outcomes {
        let o = outcome.expect("every ingest task runs to completion");
        delivered.push(o.stream);
        events.extend(o.events);
        clients.push(o.report);
    }
    // Stable merge across clients: per-client order is preserved, ties
    // at one instant order by client id.
    events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s).then(a.client.cmp(&b.client)));
    IngestOutcome {
        delivered,
        events,
        report: IngestReport {
            clients,
            recv_window: params.recv_window,
        },
    }
}

/// Drains one frame past the door at its drain time: admitted frames
/// join the delivered stream, rejected ones leave a `DoorReject` event.
fn pass_door(
    idx: usize,
    drain_s: f64,
    client: usize,
    originals: &[StreamFrame],
    door: &mut DoorPolicy,
    delivered: &mut Vec<StreamFrame>,
    events: &mut Vec<ConnEvent>,
) {
    if door.admit(drain_s) {
        delivered.push(StreamFrame {
            arrival_s: drain_s,
            frame: originals[idx].frame.clone(),
        });
    } else {
        events.push(ConnEvent {
            t_s: drain_s,
            client,
            kind: ConnEventKind::DoorReject,
            frame: idx,
            detail: 0,
        });
    }
}

async fn run_client(source: StreamSource, params: &NetParams, handle: Handle) -> ClientOutcome {
    let client = source.stream_id;
    let captures: Vec<f64> = source.frames().iter().map(|f| f.arrival_s).collect();
    let offered = captures.len();
    let link = SimLink::new(params.link, mix_seed(params.seed, client));
    let mut src = CamLinkSource::new(client, captures, link, handle.clone());
    let mut door = DoorPolicy::new(params.door_rate_fps, params.door_burst);
    let mut events: Vec<ConnEvent> = Vec::new();
    let mut delivered: Vec<StreamFrame> = Vec::new();
    // The bounded receive window: `(frame index, drain time)` entries.
    let mut window: VecDeque<(usize, f64)> = VecDeque::new();
    let mut last_drain_s = f64::NEG_INFINITY;
    let mut max_buffered = 0usize;
    let mut throttles = 0usize;
    let mut throttling = false;
    let drain_period_s = 1.0 / params.drain_fps;
    loop {
        // Drain every buffered frame whose turn has come.
        while let Some(&(idx, drain_s)) = window.front() {
            if drain_s > handle.now_s() {
                break;
            }
            window.pop_front();
            throttling = false;
            pass_door(
                idx,
                drain_s,
                client,
                source.frames(),
                &mut door,
                &mut delivered,
                &mut events,
            );
        }
        // Window full: stop reading the socket until the head drains.
        // Not polling the source is the backpressure — the camera's next
        // record is scheduled from a later `now`, pushing the wire back.
        if window.len() >= params.recv_window {
            let &(idx, drain_s) = window.front().expect("window is non-empty");
            if !throttling {
                throttling = true;
                throttles += 1;
                events.push(ConnEvent {
                    t_s: handle.now_s(),
                    client,
                    kind: ConnEventKind::Throttle,
                    frame: idx,
                    detail: window.len() as u64,
                });
            }
            handle.sleep_until(drain_s).await;
            continue;
        }
        match src.next_frame().await {
            Some(f) => {
                let drain_s = (last_drain_s + drain_period_s).max(f.delivered_s);
                last_drain_s = drain_s;
                window.push_back((f.frame_index, drain_s));
                max_buffered = max_buffered.max(window.len());
            }
            None => break,
        }
    }
    // Stream over: drain what is still buffered.
    while let Some((idx, drain_s)) = window.pop_front() {
        handle.sleep_until(drain_s).await;
        pass_door(
            idx,
            drain_s,
            client,
            source.frames(),
            &mut door,
            &mut delivered,
            &mut events,
        );
    }
    for &(t_s, notice, cursor) in &src.notices {
        events.push(match notice {
            LinkNotice::Connect => ConnEvent {
                t_s,
                client,
                kind: ConnEventKind::Connect,
                frame: 0,
                detail: cursor as u64, // frames offered
            },
            LinkNotice::Disconnect => ConnEvent {
                t_s,
                client,
                kind: ConnEventKind::Disconnect,
                frame: cursor,
                detail: 0,
            },
            LinkNotice::Resume => ConnEvent {
                t_s,
                client,
                kind: ConnEventKind::Resume,
                frame: cursor,
                detail: 0,
            },
        });
    }
    events.sort_by(|a, b| {
        a.t_s
            .total_cmp(&b.t_s)
            .then(a.kind.code().cmp(&b.kind.code()))
    });
    let report = ClientReport {
        client,
        offered,
        delivered: delivered.len(),
        rejected_at_door: door.rejected,
        lost: src.frames_corrupted,
        disconnects: src.disconnects(),
        throttles,
        max_buffered,
    };
    ClientOutcome {
        stream: StreamSource::from_frames(
            client,
            source.fps,
            source.width,
            source.height,
            delivered,
        ),
        events,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catdet_data::kitti_like;

    /// `clients` streams of `frames` frames each; client `i` captures at
    /// `arrival_scale * j / 10 + i * 0.01`.
    fn workload(clients: usize, frames: usize, arrival_scale: f64) -> Vec<StreamSource> {
        let ds = kitti_like()
            .sequences(1)
            .frames_per_sequence(frames)
            .seed(9)
            .build();
        let pool = ds.sequences()[0].frames();
        (0..clients)
            .map(|i| {
                let stream_frames = (0..frames)
                    .map(|j| StreamFrame {
                        arrival_s: arrival_scale * j as f64 / 10.0 + i as f64 * 0.01,
                        frame: pool[j].clone(),
                    })
                    .collect();
                StreamSource::from_frames(i, 10.0, 1242.0, 375.0, stream_frames)
            })
            .collect()
    }

    #[test]
    fn clean_links_deliver_every_frame() {
        let sources = workload(3, 12, 1.0);
        let out = run_ingest(&sources, &NetParams::new(7));
        assert_eq!(out.report.offered(), 36);
        assert_eq!(out.report.delivered(), 36);
        assert_eq!(out.report.rejected_at_door(), 0);
        assert_eq!(out.report.lost(), 0);
        // One connect per client, nothing else.
        assert_eq!(out.events.len(), 3);
        assert!(out.events.iter().all(|e| e.kind == ConnEventKind::Connect));
        for (s, d) in sources.iter().zip(&out.delivered) {
            assert_eq!(s.len(), d.len());
            assert_eq!(s.stream_id, d.stream_id);
        }
    }

    #[test]
    fn the_whole_outcome_is_seed_deterministic() {
        let sources = workload(4, 20, 1.0);
        let mut params = NetParams::new(42);
        params.link.jitter_s = 0.004;
        params.link.disconnect_rate = 0.08;
        params.link.reorder_rate = 0.03;
        params.link.chunk_bytes = 64;
        let a = run_ingest(&sources, &params);
        let b = run_ingest(&sources, &params);
        assert_eq!(a, b);
        let mut other = params;
        other.seed = 43;
        assert_ne!(run_ingest(&sources, &other), a);
    }

    #[test]
    fn a_full_window_throttles_and_never_overflows() {
        let sources = workload(1, 40, 0.1); // 100 fps offered
        let mut params = NetParams::new(3);
        params.recv_window = 4;
        params.drain_fps = 20.0; // drains slower than frames arrive
        params.door_rate_fps = 1000.0;
        params.door_burst = 1000.0;
        let out = run_ingest(&sources, &params);
        let r = out.report.clients[0];
        assert!(r.max_buffered <= 4, "bounded window exceeded");
        assert!(r.throttles > 0, "expected throttle episodes");
        assert!(out.events.iter().any(|e| e.kind == ConnEventKind::Throttle));
        assert_eq!(r.delivered, 40, "throttling delays, never drops");
    }

    #[test]
    fn the_door_rejects_an_over_rate_client() {
        let sources = workload(1, 60, 0.05); // 200 fps offered
        let mut params = NetParams::new(3);
        params.door_rate_fps = 20.0;
        params.door_burst = 4.0;
        let out = run_ingest(&sources, &params);
        let r = out.report.clients[0];
        assert!(r.rejected_at_door > 20, "door barely engaged: {r:?}");
        assert_eq!(r.delivered + r.rejected_at_door, 60);
        assert!(out
            .events
            .iter()
            .any(|e| e.kind == ConnEventKind::DoorReject));
    }

    #[test]
    fn a_clients_outcome_ignores_other_clients() {
        let mut params = NetParams::new(11);
        params.link.jitter_s = 0.002;
        params.link.disconnect_rate = 0.05;
        let two = workload(2, 15, 1.0);
        let three = workload(3, 15, 1.0);
        let a = run_ingest(&two, &params);
        let b = run_ingest(&three, &params);
        for i in 0..2 {
            assert_eq!(a.delivered[i], b.delivered[i]);
            assert_eq!(a.report.clients[i], b.report.clients[i]);
        }
    }
}
