//! The async [`FrameSource`] abstraction and its CamLink implementation:
//! the server-side view of one camera connection, yielding decoded frames
//! as they finish arriving on the simulated wire.

use crate::codec::{encode_record, synth_payload, Decoder, FrameRecord};
use crate::rt::Handle;
use crate::sim::{SendOutcome, SimLink};
use std::future::Future;
use std::pin::Pin;

/// One frame as delivered by a source: which capture it was and when its
/// last byte arrived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourcedFrame {
    /// Index into the camera's capture sequence.
    pub frame_index: usize,
    /// When the camera captured it (wire timestamp).
    pub capture_s: f64,
    /// When its record finished arriving at the door.
    pub delivered_s: f64,
}

/// An asynchronous frame feed. `next_frame` resolves to the next
/// delivered frame — at the virtual time its last byte arrives — or
/// `None` once the stream ends.
///
/// The returned future borrows the source, so a caller drives one frame
/// at a time; *not* polling is backpressure (a throttled door simply
/// stops reading the socket, and the connection's remaining traffic is
/// scheduled later).
pub trait FrameSource {
    /// Resolves to the next delivered frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Pin<Box<dyn Future<Output = Option<SourcedFrame>> + '_>>;
}

/// Connection-lifecycle notifications a [`CamLinkSource`] emits while it
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkNotice {
    /// The camera connected (stream start or reconnect is separate).
    Connect,
    /// The connection dropped mid-record; in-flight bytes were lost.
    Disconnect,
    /// The camera reconnected and resumed sending from its cursor
    /// (the first unacknowledged frame index).
    Resume,
}

/// The server-side state of one CamLink camera connection.
///
/// Drives the whole client lifecycle when polled: waits for the capture
/// time, encodes the record, schedules its chunks on the [`SimLink`],
/// sleeps to each delivery, feeds the decoder, and handles
/// disconnect/reconnect with a resume cursor (frames are acknowledged
/// only when fully decoded-or-corrupted, so a drop mid-record
/// retransmits that frame after the reconnect delay).
pub struct CamLinkSource {
    client: usize,
    /// Capture schedule: `(capture_s)` per frame index.
    captures: Vec<f64>,
    link: SimLink,
    decoder: Decoder,
    handle: Handle,
    /// Next frame index the camera will send (the resume cursor).
    cursor: usize,
    /// Lifecycle notices with timestamps and the cursor at the time, in
    /// order of occurrence. Drained by the ingest layer.
    pub notices: Vec<(f64, LinkNotice, usize)>,
    /// Frames lost to in-flight corruption (reordered bytes).
    pub frames_corrupted: usize,
}

impl CamLinkSource {
    /// A connection for `client` whose camera captures frames at the
    /// given times. Emits the initial `Connect` notice at time zero.
    pub fn new(client: usize, captures: Vec<f64>, link: SimLink, handle: Handle) -> Self {
        let mut source = Self {
            client,
            captures,
            link,
            decoder: Decoder::new(),
            handle,
            cursor: 0,
            notices: Vec::new(),
            frames_corrupted: 0,
        };
        source
            .notices
            .push((0.0, LinkNotice::Connect, source.captures.len()));
        source
    }

    /// Total frames the camera will offer.
    pub fn frames_offered(&self) -> usize {
        self.captures.len()
    }

    /// Connection drops observed so far.
    pub fn disconnects(&self) -> usize {
        self.link.disconnects
    }

    async fn next_frame_inner(&mut self) -> Option<SourcedFrame> {
        loop {
            // A record may already be decodable from previously received
            // bytes (it never is, in practice, because sends are
            // per-record — but the decoder owns that invariant, not us).
            if let Some(r) = self.decoder.next_record() {
                return Some(sourced(&r));
            }
            if self.cursor >= self.captures.len() {
                self.decoder.finish();
                return self.decoder.next_record().map(|r| sourced(&r));
            }
            let idx = self.cursor;
            let capture_s = self.captures[idx];
            // The camera writes at capture time; the door reads no
            // earlier than *its* now — if the caller withheld polling
            // (backpressure), `now` has advanced and the record's
            // delivery schedule starts late: push-back reaches the
            // socket instead of buffering without bound.
            if self.handle.now_s() < capture_s {
                self.handle.sleep_until(capture_s).await;
            }
            let send_s = self.handle.now_s();
            let record = FrameRecord {
                stream_id: self.client as u32,
                frame_index: idx as u32,
                capture_bits: capture_s.to_bits(),
                payload: synth_payload(self.client as u32, idx as u32),
            };
            let mut bytes = Vec::with_capacity(record.encoded_len());
            encode_record(&record, &mut bytes);
            match self.link.send_record(send_s, &bytes) {
                SendOutcome::Sent(chunks) => {
                    let mut last = send_s;
                    for c in &chunks {
                        last = c.at_s;
                        self.decoder.push(&c.bytes);
                    }
                    self.handle.sleep_until(last).await;
                    // The frame is acknowledged whether or not it decoded:
                    // corruption is not detectable by the camera, so there
                    // is no retransmit — the frame is simply lost.
                    self.cursor = idx + 1;
                    match self.decoder.next_record() {
                        Some(r) => return Some(sourced(&r)),
                        None => {
                            self.frames_corrupted += 1;
                            continue;
                        }
                    }
                }
                SendOutcome::Dropped {
                    delivered,
                    dropped_at_s,
                    reconnect_at_s,
                } => {
                    // Partial bytes of this record die with the socket.
                    for c in &delivered {
                        self.decoder.push(&c.bytes);
                    }
                    self.handle.sleep_until(dropped_at_s).await;
                    self.decoder.reset();
                    self.notices
                        .push((dropped_at_s, LinkNotice::Disconnect, idx));
                    self.handle.sleep_until(reconnect_at_s).await;
                    // Resume cursor: the first unacknowledged frame — this
                    // one — is retransmitted in full.
                    self.notices.push((reconnect_at_s, LinkNotice::Resume, idx));
                    continue;
                }
            }
        }
    }
}

fn sourced(r: &FrameRecord) -> SourcedFrame {
    SourcedFrame {
        frame_index: r.frame_index as usize,
        capture_s: r.capture_s(),
        // `next_record` returns only after the last chunk's sleep, so the
        // clock *is* the delivery time; the caller reads it from the
        // frame rather than the handle to keep the value explicit.
        delivered_s: f64::NAN, // overwritten below by next_frame()
    }
}

impl FrameSource for CamLinkSource {
    fn next_frame(&mut self) -> Pin<Box<dyn Future<Output = Option<SourcedFrame>> + '_>> {
        Box::pin(async move {
            let frame = self.next_frame_inner().await;
            frame.map(|mut f| {
                f.delivered_s = self.handle.now_s();
                f
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::Executor;
    use crate::sim::{mix_seed, LinkParams};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn drive(params: LinkParams, captures: Vec<f64>, seed: u64) -> Vec<SourcedFrame> {
        let mut ex = Executor::new();
        let h = ex.handle();
        let out = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&out);
        ex.spawn(async move {
            let link = SimLink::new(params, mix_seed(seed, 0));
            let mut src = CamLinkSource::new(0, captures, link, h);
            while let Some(f) = src.next_frame().await {
                sink.borrow_mut().push(f);
            }
        });
        ex.run();
        Rc::try_unwrap(out).unwrap().into_inner()
    }

    #[test]
    fn clean_connection_delivers_every_frame_in_order() {
        let captures: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let frames = drive(LinkParams::clean(), captures.clone(), 11);
        assert_eq!(frames.len(), 10);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.frame_index, i);
            assert_eq!(f.capture_s, captures[i]);
            assert!(f.delivered_s > f.capture_s, "the wire takes time");
        }
        assert!(frames
            .windows(2)
            .all(|w| w[0].delivered_s <= w[1].delivered_s));
    }

    #[test]
    fn disconnects_retransmit_from_the_resume_cursor() {
        let params = LinkParams {
            disconnect_rate: 0.3,
            ..LinkParams::clean()
        };
        let captures: Vec<f64> = (0..30).map(|i| i as f64 * 0.05).collect();
        let frames = drive(params, captures, 5);
        // Resume-on-disconnect retransmits, so with no reordering every
        // frame still arrives, exactly once, in order.
        assert_eq!(frames.len(), 30);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.frame_index, i);
        }
    }

    #[test]
    fn delivery_timeline_is_seed_deterministic() {
        let params = LinkParams {
            jitter_s: 0.003,
            disconnect_rate: 0.1,
            reorder_rate: 0.05,
            chunk_bytes: 48,
            ..LinkParams::clean()
        };
        let captures: Vec<f64> = (0..25).map(|i| i as f64 * 0.04).collect();
        let a = drive(params, captures.clone(), 77);
        let b = drive(params, captures, 77);
        assert_eq!(a, b);
    }
}
