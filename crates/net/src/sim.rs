//! The simulated camera uplink: one `SimLink` per connection turns record
//! sends into a deterministic schedule of byte-chunk deliveries with
//! configurable latency, jitter, partial writes, in-flight reordering and
//! mid-record disconnects.
//!
//! The link is a *schedule generator*, not an I/O object: given a send
//! time and the record bytes, it returns the chunks the receiver will see
//! and when — the reactor then sleeps to those times, which is what makes
//! the whole network timeline a pure function of the seed.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Connection-level behaviour knobs. All times are virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Fixed propagation delay camera → door.
    pub base_latency_s: f64,
    /// Maximum extra per-chunk jitter (uniform in `[0, jitter_s]`).
    pub jitter_s: f64,
    /// Link throughput in bytes per virtual second.
    pub bytes_per_s: f64,
    /// Maximum bytes per write: records are split into partial writes of
    /// 1..=`chunk_bytes` random bytes each.
    pub chunk_bytes: usize,
    /// Probability that two adjacent chunks of a record swap in flight
    /// (delivering bytes out of order; the decoder sees a corrupted span
    /// and resynchronises).
    pub reorder_rate: f64,
    /// Per-record probability the connection drops mid-send.
    pub disconnect_rate: f64,
    /// How long a dropped connection stays down before the camera
    /// reconnects and resumes from its cursor.
    pub reconnect_delay_s: f64,
}

impl LinkParams {
    /// A well-behaved wired camera: 2 ms latency, no jitter, no faults.
    pub fn clean() -> Self {
        Self {
            base_latency_s: 0.002,
            jitter_s: 0.0,
            bytes_per_s: 1_000_000.0,
            chunk_bytes: 512,
            reorder_rate: 0.0,
            disconnect_rate: 0.0,
            reconnect_delay_s: 0.05,
        }
    }

    /// Panics if the parameters are unusable.
    pub fn validate(&self) {
        assert!(
            self.base_latency_s >= 0.0 && self.base_latency_s.is_finite(),
            "link latency must be finite and non-negative"
        );
        assert!(
            self.jitter_s >= 0.0 && self.jitter_s.is_finite(),
            "link jitter must be finite and non-negative"
        );
        assert!(
            self.bytes_per_s > 0.0 && self.bytes_per_s.is_finite(),
            "link throughput must be finite and positive"
        );
        assert!(self.chunk_bytes >= 1, "chunks must hold at least one byte");
        assert!(
            (0.0..=1.0).contains(&self.reorder_rate),
            "reorder rate must be a probability"
        );
        assert!(
            (0.0..1.0).contains(&self.disconnect_rate),
            "disconnect rate must be a probability below 1"
        );
        assert!(
            self.reconnect_delay_s > 0.0 && self.reconnect_delay_s.is_finite(),
            "reconnect delay must be finite and positive"
        );
    }
}

/// One byte chunk as the receiver sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkDelivery {
    /// Arrival time at the door.
    pub at_s: f64,
    /// The bytes (possibly out of original order relative to neighbours).
    pub bytes: Vec<u8>,
}

/// Outcome of sending one record.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome {
    /// Every chunk arrives; deliveries are in arrival-time order.
    Sent(Vec<ChunkDelivery>),
    /// The connection dropped mid-record: only `delivered` arrived, the
    /// rest was lost in flight, and the camera may reconnect at
    /// `reconnect_at_s`.
    Dropped {
        /// Chunks that made it out before the drop.
        delivered: Vec<ChunkDelivery>,
        /// When the drop is observed at the door.
        dropped_at_s: f64,
        /// When the camera is back up and resumes from its cursor.
        reconnect_at_s: f64,
    },
}

/// Deterministic per-connection link state. Each connection owns one,
/// seeded from `(workload seed, client id)` so client schedules are
/// independent of each other and of task interleaving.
#[derive(Debug, Clone)]
pub struct SimLink {
    params: LinkParams,
    rng: ChaCha8Rng,
    /// Time the channel frees up: in-order byte delivery cursor.
    channel_free_s: f64,
    /// Total connection drops so far.
    pub disconnects: usize,
    /// Total bytes scheduled for delivery.
    pub bytes_sent: u64,
}

impl SimLink {
    /// A fresh link; `seed` should mix the workload seed with the client
    /// id (see [`mix_seed`]).
    pub fn new(params: LinkParams, seed: u64) -> Self {
        params.validate();
        Self {
            params,
            rng: ChaCha8Rng::seed_from_u64(seed),
            channel_free_s: 0.0,
            disconnects: 0,
            bytes_sent: 0,
        }
    }

    /// Schedules one record's bytes onto the wire starting no earlier
    /// than `now_s`, returning the chunk deliveries (or a mid-record
    /// drop).
    pub fn send_record(&mut self, now_s: f64, bytes: &[u8]) -> SendOutcome {
        let p = self.params;
        // Partial writes: split into random chunks of 1..=chunk_bytes.
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            let take = self.rng.gen_range(1..=p.chunk_bytes.min(rest.len()));
            chunks.push(rest[..take].to_vec());
            rest = &rest[take..];
        }
        // In-flight reordering: adjacent chunk *contents* swap while the
        // arrival instants stay ordered — i.e. the bytes arrive out of
        // order. A swapped span fails the record checksum downstream.
        let mut k = 0;
        while k + 1 < chunks.len() {
            if self.rng.gen_bool(p.reorder_rate) {
                chunks.swap(k, k + 1);
                k += 2; // a chunk swaps at most once
            } else {
                k += 1;
            }
        }
        // Delivery schedule: serialised on the channel, each chunk paying
        // transmission time plus jitter.
        let mut deliveries = Vec::with_capacity(chunks.len());
        self.channel_free_s = self.channel_free_s.max(now_s + p.base_latency_s);
        for bytes in chunks {
            let jitter = if p.jitter_s > 0.0 {
                self.rng.gen::<f64>() * p.jitter_s
            } else {
                0.0
            };
            let at_s = self.channel_free_s + bytes.len() as f64 / p.bytes_per_s + jitter;
            self.channel_free_s = at_s;
            self.bytes_sent += bytes.len() as u64;
            deliveries.push(ChunkDelivery { at_s, bytes });
        }
        // Mid-record disconnect: the tail chunks vanish in flight.
        if self.rng.gen_bool(p.disconnect_rate) {
            let keep = self.rng.gen_range(0..deliveries.len().max(1));
            let dropped_at_s = keep
                .checked_sub(1)
                .and_then(|i| deliveries.get(i))
                .map_or(now_s + p.base_latency_s, |c| c.at_s);
            deliveries.truncate(keep);
            self.disconnects += 1;
            let reconnect_at_s = dropped_at_s + p.reconnect_delay_s;
            // A reconnect re-opens the channel from scratch.
            self.channel_free_s = reconnect_at_s;
            return SendOutcome::Dropped {
                delivered: deliveries,
                dropped_at_s,
                reconnect_at_s,
            };
        }
        SendOutcome::Sent(deliveries)
    }
}

/// Mixes the workload seed with a client id so every connection draws an
/// independent deterministic stream (SplitMix64 finaliser).
pub fn mix_seed(seed: u64, client: usize) -> u64 {
    let mut z = seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_record, synth_payload, Decoder, FrameRecord};

    fn wire(stream: u32, frame: u32) -> Vec<u8> {
        let mut out = Vec::new();
        encode_record(
            &FrameRecord {
                stream_id: stream,
                frame_index: frame,
                capture_bits: 0,
                payload: synth_payload(stream, frame),
            },
            &mut out,
        );
        out
    }

    #[test]
    fn clean_link_delivers_in_order_and_decodes() {
        let mut link = SimLink::new(LinkParams::clean(), mix_seed(7, 0));
        let bytes = wire(0, 0);
        let SendOutcome::Sent(chunks) = link.send_record(0.0, &bytes) else {
            panic!("clean link never drops");
        };
        assert!(chunks.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        let mut dec = Decoder::new();
        for c in &chunks {
            dec.push(&c.bytes);
        }
        assert!(dec.next_record().is_some());
        assert_eq!(dec.records_corrupted, 0);
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let run = |seed| {
            let mut link = SimLink::new(
                LinkParams {
                    jitter_s: 0.004,
                    reorder_rate: 0.2,
                    disconnect_rate: 0.1,
                    chunk_bytes: 32,
                    ..LinkParams::clean()
                },
                seed,
            );
            (0..20)
                .map(|i| link.send_record(i as f64 * 0.03, &wire(1, i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn reordering_corrupts_some_records_deterministically() {
        let mut link = SimLink::new(
            LinkParams {
                reorder_rate: 0.2,
                chunk_bytes: 48,
                ..LinkParams::clean()
            },
            mix_seed(2019, 3),
        );
        let mut dec = Decoder::new();
        let n = 50;
        for i in 0..n {
            if let SendOutcome::Sent(chunks) = link.send_record(i as f64 * 0.02, &wire(3, i)) {
                for c in chunks {
                    dec.push(&c.bytes);
                }
            }
        }
        dec.finish();
        let mut decoded = 0;
        while dec.next_record().is_some() {
            decoded += 1;
        }
        assert!(decoded < n as usize, "heavy reordering must corrupt some");
        assert!(decoded > 0, "resync must recover the clean ones");
        assert!(dec.records_corrupted > 0);
    }

    #[test]
    fn disconnects_truncate_and_set_a_reconnect_time() {
        let mut link = SimLink::new(
            LinkParams {
                disconnect_rate: 0.999,
                ..LinkParams::clean()
            },
            1,
        );
        let bytes = wire(0, 0);
        match link.send_record(1.0, &bytes) {
            SendOutcome::Dropped {
                delivered,
                dropped_at_s,
                reconnect_at_s,
            } => {
                let total: usize = delivered.iter().map(|c| c.bytes.len()).sum();
                assert!(total < bytes.len(), "the tail must be lost");
                assert!(reconnect_at_s > dropped_at_s);
                assert_eq!(link.disconnects, 1);
            }
            SendOutcome::Sent(_) => panic!("p=0.999 drop did not fire"),
        }
    }
}
