//! A hand-rolled single-threaded async executor on a **virtual clock** —
//! the ingest layer's reactor, with the same determinism story as the
//! serving scheduler.
//!
//! Tasks are plain `Future`s; the only event source is the timer wheel, so
//! a run is a discrete-event simulation: the executor drains every
//! runnable task, then jumps the clock to the earliest registered timer
//! and wakes it. Ready tasks run in FIFO wake order and equal-deadline
//! timers fire in registration order, so the interleaving of any set of
//! tasks is a pure function of the program — never of the host, the OS
//! scheduler, or wall-clock time.
//!
//! There is no I/O driver on purpose: "the network" is the [`SimLink`]
//! byte-schedule model (`sim` module), which turns sends into future
//! delivery *times*; sleeping until a delivery time **is** the socket
//! read. That keeps the whole front door replayable bit-for-bit.
//!
//! [`SimLink`]: crate::sim::SimLink

use std::cell::RefCell;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// One registered timer: wake `waker` once the clock reaches `at_s`.
/// Ordered as a min-heap on `(at_s, seq)` — ties fire in registration
/// order, which is what pins the interleaving.
struct Timer {
    at_s: f64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at_s.to_bits() == other.at_s.to_bits() && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest timer.
        other
            .at_s
            .total_cmp(&self.at_s)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Clock + timer wheel, shared between the executor and every [`Sleep`].
struct Inner {
    now_s: f64,
    timers: BinaryHeap<Timer>,
    timer_seq: u64,
}

impl Inner {
    fn register(&mut self, at_s: f64, waker: Waker) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Timer { at_s, seq, waker });
    }
}

/// The wake queue: task ids in FIFO wake order. Wakers must be
/// `Send + Sync` by API contract, so this one piece sits behind a mutex
/// even though the executor never leaves its thread.
struct ReadyQueue {
    queue: Mutex<VecDeque<usize>>,
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready
            .queue
            .lock()
            .expect("reactor wake queue")
            .push_back(self.id);
    }
}

/// A cloneable handle onto the reactor's clock: read [`now_s`](Handle::now_s)
/// and construct [`Sleep`] futures. Handles are cheap `Rc` clones; tasks
/// capture one each.
#[derive(Clone)]
pub struct Handle {
    inner: Rc<RefCell<Inner>>,
}

impl Handle {
    /// Current virtual time in seconds.
    pub fn now_s(&self) -> f64 {
        self.inner.borrow().now_s
    }

    /// Completes once the virtual clock reaches `at_s` (immediately if it
    /// already has).
    pub fn sleep_until(&self, at_s: f64) -> Sleep {
        Sleep {
            inner: Rc::clone(&self.inner),
            at_s,
        }
    }

    /// Completes `dt_s` virtual seconds from now.
    pub fn sleep(&self, dt_s: f64) -> Sleep {
        self.sleep_until(self.now_s() + dt_s)
    }
}

/// Future returned by [`Handle::sleep_until`] / [`Handle::sleep`].
pub struct Sleep {
    inner: Rc<RefCell<Inner>>,
    at_s: f64,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.now_s >= self.at_s {
            Poll::Ready(())
        } else {
            // A sleeping task is only ever woken by its own timer, so one
            // registration per poll is one registration total.
            inner.register(self.at_s, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// The virtual-time executor. Spawn tasks, then [`run`](Executor::run) the
/// simulation to quiescence.
pub struct Executor {
    inner: Rc<RefCell<Inner>>,
    ready: Arc<ReadyQueue>,
    tasks: Vec<Option<Pin<Box<dyn Future<Output = ()>>>>>,
}

impl Executor {
    /// An empty executor with the clock at `0.0`.
    pub fn new() -> Self {
        Executor {
            inner: Rc::new(RefCell::new(Inner {
                now_s: 0.0,
                timers: BinaryHeap::new(),
                timer_seq: 0,
            })),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
            }),
            tasks: Vec::new(),
        }
    }

    /// A handle onto the executor's clock, for tasks to capture.
    pub fn handle(&self) -> Handle {
        Handle {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Adds a task; tasks first run in spawn order.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
        let id = self.tasks.len();
        self.tasks.push(Some(Box::pin(fut)));
        self.ready
            .queue
            .lock()
            .expect("reactor wake queue")
            .push_back(id);
    }

    fn pop_ready(&self) -> Option<usize> {
        self.ready
            .queue
            .lock()
            .expect("reactor wake queue")
            .pop_front()
    }

    /// Runs the simulation until every task completed (or stalled with no
    /// timer to wake it — a deadlock, which for the ingest workloads
    /// cannot happen: every await is a sleep). Returns the final virtual
    /// time.
    pub fn run(&mut self) -> f64 {
        loop {
            while let Some(id) = self.pop_ready() {
                let Some(task) = self.tasks[id].as_mut() else {
                    continue; // stale wake of a finished task
                };
                let waker = Waker::from(Arc::new(TaskWaker {
                    id,
                    ready: Arc::clone(&self.ready),
                }));
                let mut cx = Context::from_waker(&waker);
                if task.as_mut().poll(&mut cx).is_ready() {
                    self.tasks[id] = None;
                }
            }
            // Quiescent: jump the clock to the earliest timer and wake it.
            // Equal-deadline timers wake one per pass, in registration
            // order, each getting a full drain — FIFO either way.
            let next = self.inner.borrow_mut().timers.pop();
            match next {
                Some(t) => {
                    let mut inner = self.inner.borrow_mut();
                    debug_assert!(t.at_s >= inner.now_s, "timer in the past");
                    inner.now_s = inner.now_s.max(t.at_s);
                    drop(inner);
                    t.waker.wake();
                }
                None => break,
            }
        }
        self.inner.borrow().now_s
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_cell() -> Rc<RefCell<Vec<(f64, &'static str)>>> {
        Rc::new(RefCell::new(Vec::new()))
    }

    #[test]
    fn sleeps_interleave_in_time_order() {
        let mut ex = Executor::new();
        let h = ex.handle();
        let log = log_cell();
        let (l1, l2) = (Rc::clone(&log), Rc::clone(&log));
        let (h1, h2) = (h.clone(), h.clone());
        ex.spawn(async move {
            h1.sleep_until(1.0).await;
            l1.borrow_mut().push((h1.now_s(), "a1"));
            h1.sleep_until(3.0).await;
            l1.borrow_mut().push((h1.now_s(), "a3"));
        });
        ex.spawn(async move {
            h2.sleep_until(2.0).await;
            l2.borrow_mut().push((h2.now_s(), "b2"));
        });
        let end = ex.run();
        assert_eq!(end, 3.0);
        assert_eq!(
            *log.borrow(),
            vec![(1.0, "a1"), (2.0, "b2"), (3.0, "a3")],
            "tasks must interleave purely by deadline"
        );
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let mut ex = Executor::new();
        let h = ex.handle();
        let log = log_cell();
        for name in ["first", "second", "third"] {
            let (h, log) = (h.clone(), Rc::clone(&log));
            ex.spawn(async move {
                h.sleep_until(1.0).await;
                log.borrow_mut().push((h.now_s(), name));
            });
        }
        ex.run();
        let names: Vec<&str> = log.borrow().iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn past_deadlines_complete_without_moving_the_clock_back() {
        let mut ex = Executor::new();
        let h = ex.handle();
        let log = log_cell();
        let l = Rc::clone(&log);
        let hh = h.clone();
        ex.spawn(async move {
            hh.sleep_until(5.0).await;
            hh.sleep_until(2.0).await; // already past: immediate
            l.borrow_mut().push((hh.now_s(), "done"));
        });
        assert_eq!(ex.run(), 5.0);
        assert_eq!(*log.borrow(), vec![(5.0, "done")]);
    }

    #[test]
    fn run_is_reproducible() {
        let drive = || {
            let mut ex = Executor::new();
            let h = ex.handle();
            let log = log_cell();
            for i in 0..5usize {
                let (h, log) = (h.clone(), Rc::clone(&log));
                ex.spawn(async move {
                    for k in 0..3usize {
                        h.sleep((i as f64 + 1.0) * 0.1 + k as f64 * 0.07).await;
                        log.borrow_mut()
                            .push((h.now_s(), ["t0", "t1", "t2", "t3", "t4"][i]));
                    }
                });
            }
            ex.run();
            let events = log.borrow().clone();
            events
        };
        assert_eq!(drive(), drive());
    }
}
