//! The CamLink wire format: length-prefixed frame records with a magic
//! preamble and a checksum, plus a streaming decoder that survives
//! partial writes, truncated tails, garbage prefixes and in-flight byte
//! reordering.
//!
//! ```text
//! +-------+----------+------------------------------------------+-------+
//! | magic | body_len |                 body                     |  crc  |
//! | 2 B   | u32 LE   | stream u32 | frame u32 | capture u64 |   | u32   |
//! |       |          |            payload (body_len - 16 B)     | LE    |
//! +-------+----------+------------------------------------------+-------+
//! ```
//!
//! The checksum is FNV-1a over the body. The decoder trusts nothing: a
//! header is only believed once the whole record is buffered *and* the
//! checksum matches; otherwise it skips past the magic and rescans, so a
//! corrupted or garbage-led stream loses at most the damaged records and
//! resynchronises on the next genuine preamble.

/// Record preamble. Two bytes is enough for resync in a simulator (real
/// deployments would use a longer one plus connection-level framing).
pub const MAGIC: [u8; 2] = [0xCA, 0x7D];

/// Fixed body bytes ahead of the payload: stream id, frame index,
/// capture-time bits.
pub const BODY_HEADER_BYTES: usize = 16;

/// Sanity cap on `body_len`: anything larger is treated as garbage
/// rather than waited for, bounding decoder memory against corrupt
/// headers.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One camera frame as it travels the wire. The payload stands in for
/// compressed pixel data; the serving side maps `frame_index` back to the
/// actual frame, so the bytes only have to exist (and checksum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Fleet-wide camera/stream id.
    pub stream_id: u32,
    /// Index of the frame within its camera's capture sequence.
    pub frame_index: u32,
    /// Capture timestamp, seconds, as raw bits (floats never travel as
    /// text).
    pub capture_bits: u64,
    /// Simulated compressed frame bytes.
    pub payload: Vec<u8>,
}

impl FrameRecord {
    /// Capture timestamp in seconds.
    pub fn capture_s(&self) -> f64 {
        f64::from_bits(self.capture_bits)
    }

    /// Total encoded size of this record on the wire.
    pub fn encoded_len(&self) -> usize {
        MAGIC.len() + 4 + BODY_HEADER_BYTES + self.payload.len() + 4
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Appends the record's wire encoding to `out`.
pub fn encode_record(r: &FrameRecord, out: &mut Vec<u8>) {
    let body_len = (BODY_HEADER_BYTES + r.payload.len()) as u32;
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&body_len.to_le_bytes());
    let body_start = out.len();
    out.extend_from_slice(&r.stream_id.to_le_bytes());
    out.extend_from_slice(&r.frame_index.to_le_bytes());
    out.extend_from_slice(&r.capture_bits.to_le_bytes());
    out.extend_from_slice(&r.payload);
    let crc = fnv1a(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Streaming CamLink decoder: push byte chunks in arrival order, pop
/// whole verified records.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Start of undecoded data within `buf` (compacted periodically).
    head: usize,
    /// Whether the byte stream has ended: stalled partial headers are
    /// then garbage by definition and get skipped instead of waited on.
    eof: bool,
    /// Records decoded and verified.
    pub records_decoded: usize,
    /// Records whose checksum failed (reordered/corrupted bytes).
    pub records_corrupted: usize,
    /// Bytes discarded while hunting for a preamble.
    pub bytes_skipped: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a received chunk.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Marks end-of-stream: a header still waiting for bytes that will
    /// never come is treated as garbage on the next [`next_record`] call.
    ///
    /// [`next_record`]: Decoder::next_record
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Bytes buffered but not yet decoded (a truncated in-flight record).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Drops all buffered bytes (a connection reset: in-flight partial
    /// records are gone; the resume protocol retransmits whole frames).
    pub fn reset(&mut self) {
        self.bytes_skipped += self.pending_bytes();
        self.buf.clear();
        self.head = 0;
        self.eof = false;
    }

    fn compact(&mut self) {
        if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }

    /// Skips `n` bytes of garbage.
    fn skip(&mut self, n: usize) {
        self.head += n;
        self.bytes_skipped += n;
    }

    /// Decodes the next verified record, or `None` if the buffer holds no
    /// complete one yet.
    pub fn next_record(&mut self) -> Option<FrameRecord> {
        loop {
            let avail = &self.buf[self.head..];
            // Hunt for the preamble.
            if avail.len() < MAGIC.len() {
                if self.eof && !avail.is_empty() {
                    let n = avail.len();
                    self.skip(n);
                }
                self.compact();
                return None;
            }
            if avail[..2] != MAGIC {
                // Resync byte by byte: the next genuine record's magic may
                // start anywhere.
                self.skip(1);
                continue;
            }
            if avail.len() < MAGIC.len() + 4 {
                if self.eof {
                    self.skip(1);
                    continue;
                }
                return None; // header truncated: wait for more bytes
            }
            let body_len = u32::from_le_bytes([avail[2], avail[3], avail[4], avail[5]]) as usize;
            if !(BODY_HEADER_BYTES..=MAX_BODY_BYTES).contains(&body_len) {
                // Implausible length: this "magic" was data. Skip past it.
                self.skip(MAGIC.len());
                self.records_corrupted += 1;
                continue;
            }
            let total = MAGIC.len() + 4 + body_len + 4;
            if avail.len() < total {
                if self.eof {
                    // The bytes will never arrive; the header was garbage
                    // (or the tail is truncated). Resync past the magic.
                    self.skip(MAGIC.len());
                    self.records_corrupted += 1;
                    continue;
                }
                return None; // truncated tail: wait for more bytes
            }
            let body = &avail[MAGIC.len() + 4..MAGIC.len() + 4 + body_len];
            let crc = u32::from_le_bytes([
                avail[total - 4],
                avail[total - 3],
                avail[total - 2],
                avail[total - 1],
            ]);
            if fnv1a(body) != crc {
                // Reordered/corrupted in flight. Skip the preamble and
                // rescan — a genuine record may start inside this span.
                self.skip(MAGIC.len());
                self.records_corrupted += 1;
                continue;
            }
            let record = FrameRecord {
                stream_id: u32::from_le_bytes([body[0], body[1], body[2], body[3]]),
                frame_index: u32::from_le_bytes([body[4], body[5], body[6], body[7]]),
                capture_bits: u64::from_le_bytes([
                    body[8], body[9], body[10], body[11], body[12], body[13], body[14], body[15],
                ]),
                payload: body[BODY_HEADER_BYTES..].to_vec(),
            };
            self.head += total;
            self.records_decoded += 1;
            self.compact();
            return Some(record);
        }
    }
}

/// Deterministic stand-in payload for a frame: size and bytes derived
/// from `(stream, frame)` alone, so every run sends identical traffic.
pub fn synth_payload(stream_id: u32, frame_index: u32) -> Vec<u8> {
    let mut h = (stream_id as u64) << 32 | frame_index as u64;
    // SplitMix64 to decorrelate sizes and bytes.
    let mut next = move || {
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let len = 96 + (next() % 160) as usize;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&next().to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(stream: u32, frame: u32) -> FrameRecord {
        FrameRecord {
            stream_id: stream,
            frame_index: frame,
            capture_bits: (frame as f64 * 0.033).to_bits(),
            payload: synth_payload(stream, frame),
        }
    }

    #[test]
    fn whole_records_round_trip() {
        let mut wire = Vec::new();
        let records: Vec<_> = (0..5).map(|i| record(3, i)).collect();
        for r in &records {
            encode_record(r, &mut wire);
        }
        let mut dec = Decoder::new();
        dec.push(&wire);
        for r in &records {
            assert_eq!(dec.next_record().as_ref(), Some(r));
        }
        assert_eq!(dec.next_record(), None);
        assert_eq!(dec.records_decoded, 5);
        assert_eq!(dec.bytes_skipped, 0);
    }

    #[test]
    fn byte_at_a_time_delivery_decodes() {
        let mut wire = Vec::new();
        encode_record(&record(1, 7), &mut wire);
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b));
            while let Some(r) = dec.next_record() {
                out.push(r);
            }
        }
        assert_eq!(out, vec![record(1, 7)]);
    }

    #[test]
    fn truncated_tail_waits_then_yields_on_completion() {
        let mut wire = Vec::new();
        encode_record(&record(2, 0), &mut wire);
        let split = wire.len() - 3;
        let mut dec = Decoder::new();
        dec.push(&wire[..split]);
        assert_eq!(dec.next_record(), None, "incomplete record must wait");
        assert!(dec.pending_bytes() > 0);
        dec.push(&wire[split..]);
        assert_eq!(dec.next_record(), Some(record(2, 0)));
    }

    #[test]
    fn garbage_prefix_resyncs_on_the_next_magic() {
        let mut wire = vec![0xFF, 0x00, 0xCA, 0x13, 0x7D]; // junk incl. a stray magic byte
        encode_record(&record(4, 9), &mut wire);
        let mut dec = Decoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_record(), Some(record(4, 9)));
        assert!(dec.bytes_skipped >= 5);
    }

    #[test]
    fn corrupted_record_is_skipped_and_the_stream_recovers() {
        let mut wire = Vec::new();
        encode_record(&record(0, 0), &mut wire);
        let boundary = wire.len();
        encode_record(&record(0, 1), &mut wire);
        wire[boundary + 10] ^= 0xA5; // flip a byte inside record 1's body
        encode_record(&record(0, 2), &mut wire);
        let mut dec = Decoder::new();
        dec.push(&wire);
        let mut out = Vec::new();
        while let Some(r) = dec.next_record() {
            out.push(r);
        }
        assert_eq!(out, vec![record(0, 0), record(0, 2)]);
        assert_eq!(dec.records_corrupted, 1);
    }

    #[test]
    fn eof_flushes_a_stalled_garbage_header() {
        // Garbage that happens to look like a huge (but in-cap) record:
        // without EOF the decoder waits; with EOF it resyncs to the real
        // record buffered right behind it.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&(500u32).to_le_bytes()); // claims 500 B that never come
        encode_record(&record(6, 1), &mut wire);
        let mut dec = Decoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_record(), None, "stalled on the bogus header");
        dec.finish();
        assert_eq!(dec.next_record(), Some(record(6, 1)));
    }

    #[test]
    fn reset_drops_partial_bytes() {
        let mut wire = Vec::new();
        encode_record(&record(5, 0), &mut wire);
        let mut dec = Decoder::new();
        dec.push(&wire[..wire.len() / 2]);
        dec.reset();
        assert_eq!(dec.pending_bytes(), 0);
        // A fresh record decodes cleanly after the reset.
        let mut wire2 = Vec::new();
        encode_record(&record(5, 1), &mut wire2);
        dec.push(&wire2);
        assert_eq!(dec.next_record(), Some(record(5, 1)));
    }
}
