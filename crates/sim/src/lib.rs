//! 3-D driving/street world simulator for CaTDet.
//!
//! The paper evaluates on real video (KITTI tracking, CityPersons). Neither
//! dataset — nor the trained networks that detect in them — is available to
//! this reproduction, so this crate supplies the *ground-truth generating
//! process*: a deterministic, seeded 3-D world with an ego camera driving
//! down a road among cars and pedestrians. Each simulated frame yields the
//! same annotations KITTI provides: per-object track id, class, bounding
//! box, occlusion fraction and truncation.
//!
//! What matters for reproducing the paper is not photorealism but the
//! *statistics that drive the system-level results*:
//!
//! * objects **enter** the scene small/far, truncated at the frame edge or
//!   out of occlusion — this is what the delay metric measures;
//! * object scale and position evolve **smoothly**, which is what the
//!   tracker's decay motion model exploits;
//! * **occlusion gaps** (pedestrians passing behind cars, cars behind
//!   parked cars) exercise the tracker's miss tolerance;
//! * box-size and density distributions control how hard each dataset is
//!   for a weak proposal network (KITTI vs. CityPersons).
//!
//! # Example
//!
//! ```
//! use catdet_sim::{SceneConfig, simulate_sequence};
//!
//! let cfg = SceneConfig::kitti_street();
//! let frames = simulate_sequence(&cfg, 42, 100);
//! assert_eq!(frames.len(), 100);
//! // Objects appear and carry stable track ids.
//! let n: usize = frames.iter().map(|f| f.objects.len()).sum();
//! assert!(n > 100);
//! ```

#![warn(missing_docs)]

pub mod actor;
pub mod camera;
pub mod occlusion;
pub mod world;

pub use actor::{Actor, ActorClass, Motion};
pub use camera::CameraModel;
pub use occlusion::occlusion_fractions;
pub use world::{simulate_sequence, GroundTruthObject, SceneConfig, SimFrame, WorldSim};
