//! The world: ego camera, traffic, spawning and ground-truth extraction.

use crate::actor::{Actor, ActorClass, Motion};
use crate::camera::CameraModel;
use crate::occlusion::occlusion_fractions;
use catdet_geom::Box2;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a simulated scene.
///
/// Two presets reproduce the paper's datasets:
/// [`SceneConfig::kitti_street`] (driving, 1242×375 @ 10 fps) and
/// [`SceneConfig::city_street`] (pedestrian street, 2048×1024 @ 30 fps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Camera intrinsics and mounting.
    pub camera: CameraModel,
    /// Frames per second.
    pub fps: f32,
    /// Ego speed range (m/s); one value is drawn per sequence.
    pub ego_speed: (f32, f32),
    /// Cars placed in the scene before the first frame.
    pub initial_cars: usize,
    /// Pedestrians placed in the scene before the first frame.
    pub initial_peds: usize,
    /// Expected newly spawned cars per frame.
    pub car_spawn_rate: f32,
    /// Expected newly spawned pedestrians per frame.
    pub ped_spawn_rate: f32,
    /// Fraction of cars that are parked at the roadside.
    pub parked_fraction: f32,
    /// Fraction of cars in the oncoming lane.
    pub oncoming_fraction: f32,
    /// Fraction of pedestrians crossing the road (vs. walking along it).
    pub crossing_fraction: f32,
    /// Depth range (m ahead of ego) where new actors appear.
    pub spawn_depth: (f32, f32),
    /// Overriding depth band for pedestrians (both initial placement and
    /// later spawns); `None` derives it from `spawn_depth`. CityPersons-like
    /// scenes use a distant band so persons appear at realistic pixel sizes.
    pub ped_depth: Option<(f32, f32)>,
    /// Actors farther than this are despawned.
    pub max_depth: f32,
    /// Ground-truth boxes shorter than this many pixels are not annotated.
    pub min_box_height: f32,
    /// Objects occluded beyond this fraction are not annotated
    /// (fully hidden objects produce no ground truth while hidden).
    pub max_visible_occlusion: f32,
}

impl SceneConfig {
    /// KITTI-like driving scene: 1242×375 @ 10 fps, mixed traffic.
    pub fn kitti_street() -> Self {
        Self {
            camera: CameraModel::kitti(),
            fps: 10.0,
            ego_speed: (7.0, 14.0),
            initial_cars: 7,
            initial_peds: 3,
            car_spawn_rate: 0.12,
            ped_spawn_rate: 0.06,
            parked_fraction: 0.35,
            oncoming_fraction: 0.30,
            crossing_fraction: 0.40,
            spawn_depth: (35.0, 95.0),
            ped_depth: None,
            max_depth: 130.0,
            min_box_height: 8.0,
            max_visible_occlusion: 0.97,
        }
    }

    /// CityPersons-like street scene: 2048×1024 @ 30 fps, pedestrian-heavy
    /// and crowded (CityPersons' difficulty is crowd occlusion, not pixel
    /// size), slow ego, parked cars as additional occluders.
    pub fn city_street() -> Self {
        Self {
            camera: CameraModel::cityscapes(),
            fps: 30.0,
            ego_speed: (1.0, 4.0),
            initial_cars: 7,
            initial_peds: 18,
            car_spawn_rate: 0.02,
            ped_spawn_rate: 0.15,
            parked_fraction: 0.85,
            oncoming_fraction: 0.05,
            crossing_fraction: 0.35,
            spawn_depth: (25.0, 120.0),
            ped_depth: Some((40.0, 150.0)),
            max_depth: 170.0,
            min_box_height: 10.0,
            max_visible_occlusion: 0.97,
        }
    }
}

/// One annotated object in one frame — the simulator's equivalent of a
/// KITTI label line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthObject {
    /// Stable identity across frames.
    pub track_id: u64,
    /// Object class.
    pub class: ActorClass,
    /// Bounding box clipped to the image.
    pub bbox: Box2,
    /// Bounding box before clipping (may extend past the frame).
    pub full_bbox: Box2,
    /// Fraction of the visible box covered by nearer objects, `[0, 1]`.
    pub occlusion: f32,
    /// Fraction of the full box outside the frame, `[0, 1]`.
    pub truncation: f32,
    /// Distance from the camera (m).
    pub depth: f32,
}

impl GroundTruthObject {
    /// Pixel height of the visible box.
    pub fn height_px(&self) -> f32 {
        self.bbox.height()
    }
}

/// All annotations of one simulated frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimFrame {
    /// Frame index within the sequence.
    pub index: usize,
    /// Annotated objects.
    pub objects: Vec<GroundTruthObject>,
}

/// The running world simulation.
///
/// Use [`WorldSim::step`] to obtain successive frames, or the
/// [`simulate_sequence`] convenience function.
#[derive(Debug, Clone)]
pub struct WorldSim {
    cfg: SceneConfig,
    rng: ChaCha8Rng,
    actors: Vec<Actor>,
    ego_z: f32,
    ego_x: f32,
    ego_speed: f32,
    sway_phase: f32,
    next_id: u64,
    frame_index: usize,
}

impl WorldSim {
    /// Creates a world with its initial population, fully determined by
    /// `seed`.
    pub fn new(cfg: SceneConfig, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ego_speed = rng.gen_range(cfg.ego_speed.0..=cfg.ego_speed.1);
        let mut sim = Self {
            cfg,
            rng,
            actors: Vec::new(),
            ego_z: 0.0,
            ego_x: 0.0,
            ego_speed,
            sway_phase: 0.0,
            next_id: 0,
            frame_index: 0,
        };
        for _ in 0..sim.cfg.initial_cars {
            sim.spawn_car(true);
        }
        for _ in 0..sim.cfg.initial_peds {
            sim.spawn_ped(true);
        }
        sim
    }

    /// Scene configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.cfg
    }

    /// Produces the current frame's annotations, then advances the world
    /// by one frame interval.
    pub fn step(&mut self) -> SimFrame {
        let frame = self.observe();
        self.advance();
        frame
    }

    fn advance(&mut self) {
        let dt = 1.0 / self.cfg.fps;
        self.ego_z += self.ego_speed * dt;
        self.sway_phase += dt * 0.6;
        self.ego_x = 0.18 * self.sway_phase.sin();
        for a in &mut self.actors {
            a.step(dt, &mut self.rng);
        }
        // Poisson spawning approximated by two Bernoulli draws per frame
        // (rates are well below 1).
        for _ in 0..2 {
            if self.rng.gen::<f32>() < self.cfg.car_spawn_rate / 2.0 {
                self.spawn_car(false);
            }
            if self.rng.gen::<f32>() < self.cfg.ped_spawn_rate / 2.0 {
                self.spawn_ped(false);
            }
        }
        let (ego_z, ego_x, max_depth) = (self.ego_z, self.ego_x, self.cfg.max_depth);
        self.actors.retain(|a| {
            let rel_z = a.z - ego_z;
            rel_z > 1.5 && rel_z < max_depth && (a.x - ego_x).abs() < 30.0
        });
        self.frame_index += 1;
    }

    fn observe(&self) -> SimFrame {
        let cam = &self.cfg.camera;
        let mut candidates: Vec<(&Actor, Box2, Box2, f32)> = Vec::new();
        for a in &self.actors {
            let rel_x = a.x - self.ego_x;
            let rel_z = a.z - self.ego_z;
            if let Some(full) =
                cam.project_cuboid(rel_x, rel_z, a.yaw, a.dims.0, a.dims.1, a.dims.2)
            {
                let clipped = full.clip(cam.width, cam.height);
                if clipped.is_valid() && clipped.height() >= self.cfg.min_box_height {
                    candidates.push((a, full, clipped, rel_z));
                }
            }
        }
        let occ_input: Vec<(Box2, f32)> = candidates.iter().map(|c| (c.2, c.3)).collect();
        let occ = occlusion_fractions(&occ_input);
        let objects = candidates
            .into_iter()
            .zip(occ)
            .filter(|(_, o)| *o <= self.cfg.max_visible_occlusion)
            .map(|((a, full, clipped, rel_z), occlusion)| GroundTruthObject {
                track_id: a.id,
                class: a.class,
                bbox: clipped,
                full_bbox: full,
                occlusion,
                truncation: full.truncation(cam.width, cam.height),
                depth: rel_z,
            })
            .collect();
        SimFrame {
            index: self.frame_index,
            objects,
        }
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn spawn_car(&mut self, initial: bool) {
        let id = self.alloc_id();
        let r: f32 = self.rng.gen();
        let z = if initial {
            self.ego_z + self.rng.gen_range(8.0..self.cfg.spawn_depth.1)
        } else {
            self.ego_z
                + self
                    .rng
                    .gen_range(self.cfg.spawn_depth.0..self.cfg.spawn_depth.1)
        };
        let dims = (
            self.rng.gen_range(1.6..1.95),
            self.rng.gen_range(1.35..1.7),
            self.rng.gen_range(3.6..4.8),
        );
        let actor = if r < self.cfg.parked_fraction {
            let side: f32 = if self.rng.gen() { 1.0 } else { -1.0 };
            Actor {
                id,
                class: ActorClass::Car,
                x: side * self.rng.gen_range(5.5..8.5),
                z,
                vx: 0.0,
                vz: 0.0,
                yaw: 0.0,
                dims,
                motion: Motion::Parked,
            }
        } else if r < self.cfg.parked_fraction + self.cfg.oncoming_fraction {
            Actor {
                id,
                class: ActorClass::Car,
                x: -self.rng.gen_range(3.1..3.9),
                z,
                vx: 0.0,
                vz: -self.rng.gen_range(6.0..13.0),
                yaw: std::f32::consts::PI,
                dims,
                motion: Motion::Cruise,
            }
        } else {
            let lane = if self.rng.gen::<f32>() < 0.6 {
                0.0
            } else {
                3.5
            };
            Actor {
                id,
                class: ActorClass::Car,
                x: lane + self.rng.gen_range(-0.3..0.3),
                z,
                vx: 0.0,
                vz: self.ego_speed * self.rng.gen_range(0.40..0.95),
                yaw: 0.0,
                dims,
                motion: Motion::Cruise,
            }
        };
        if self.placement_clear(&actor) {
            self.actors.push(actor);
        }
    }

    fn spawn_ped(&mut self, initial: bool) {
        let side: f32 = if self.rng.gen() { 1.0 } else { -1.0 };
        let x = side * self.rng.gen_range(3.0..8.5);
        let (lo, hi) = match self.cfg.ped_depth {
            Some(band) => band,
            None if initial => (8.0, self.cfg.spawn_depth.1 * 0.8),
            None => (self.cfg.spawn_depth.0 * 0.5, self.cfg.spawn_depth.1 * 0.8),
        };
        let z = self.ego_z + self.rng.gen_range(lo..hi);
        let (vx, vz) = if self.rng.gen::<f32>() < self.cfg.crossing_fraction {
            (
                -side * self.rng.gen_range(0.8..1.6),
                self.rng.gen_range(-0.2..0.2),
            )
        } else {
            let dir: f32 = if self.rng.gen() { 1.0 } else { -1.0 };
            (0.0, dir * self.rng.gen_range(0.8..1.6))
        };
        // Pedestrians often walk in small groups, which is what produces
        // CityPersons' characteristic crowd occlusion.
        let group = 1 + if self.rng.gen::<f32>() < 0.45 {
            self.rng.gen_range(1..3)
        } else {
            0
        };
        for k in 0..group {
            let id = self.alloc_id();
            let dims = (
                self.rng.gen_range(0.45..0.7),
                self.rng.gen_range(1.5..1.9),
                self.rng.gen_range(0.35..0.6),
            );
            let (dx, dz) = if k == 0 {
                (0.0, 0.0)
            } else {
                (self.rng.gen_range(-1.0..1.0), self.rng.gen_range(-1.4..1.4))
            };
            let actor = Actor {
                id,
                class: ActorClass::Pedestrian,
                x: x + dx,
                z: z + dz,
                vx: vx * self.rng.gen_range(0.9..1.1),
                vz: vz * self.rng.gen_range(0.9..1.1),
                yaw: vx.atan2(vz),
                dims,
                motion: Motion::Walk,
            };
            self.actors.push(actor);
        }
    }

    /// Rejects car placements that would intersect an existing car.
    fn placement_clear(&self, candidate: &Actor) -> bool {
        self.actors.iter().all(|a| {
            a.class != ActorClass::Car
                || (a.x - candidate.x).abs() > 2.2
                || (a.z - candidate.z).abs() > 7.0
        })
    }
}

/// Runs a fresh world for `frames` frames.
///
/// Deterministic: the same `(config, seed)` pair always produces identical
/// output.
pub fn simulate_sequence(cfg: &SceneConfig, seed: u64, frames: usize) -> Vec<SimFrame> {
    let mut sim = WorldSim::new(cfg.clone(), seed);
    (0..frames).map(|_| sim.step()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn kitti_frames(seed: u64, n: usize) -> Vec<SimFrame> {
        simulate_sequence(&SceneConfig::kitti_street(), seed, n)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kitti_frames(11, 50);
        let b = kitti_frames(11, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = kitti_frames(1, 30);
        let b = kitti_frames(2, 30);
        assert_ne!(a, b);
    }

    #[test]
    fn frames_are_indexed_sequentially() {
        let frames = kitti_frames(3, 20);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i);
        }
    }

    #[test]
    fn scene_density_is_plausible() {
        let frames = kitti_frames(5, 200);
        let mean = frames.iter().map(|f| f.objects.len()).sum::<usize>() as f64 / 200.0;
        assert!(
            (2.0..15.0).contains(&mean),
            "mean objects per frame = {mean}"
        );
    }

    #[test]
    fn all_annotations_within_frame_and_valid() {
        let cfg = SceneConfig::kitti_street();
        for f in kitti_frames(7, 150) {
            for o in &f.objects {
                assert!(o.bbox.is_valid());
                assert!(o.bbox.x1 >= 0.0 && o.bbox.x2 <= cfg.camera.width);
                assert!(o.bbox.y1 >= 0.0 && o.bbox.y2 <= cfg.camera.height);
                assert!((0.0..=1.0).contains(&o.occlusion));
                assert!((0.0..=1.0).contains(&o.truncation));
                assert!(o.depth > 0.0);
                assert!(o.height_px() >= cfg.min_box_height);
            }
        }
    }

    #[test]
    fn track_ids_are_unique_within_frame() {
        for f in kitti_frames(9, 100) {
            let ids: HashSet<u64> = f.objects.iter().map(|o| o.track_id).collect();
            assert_eq!(ids.len(), f.objects.len());
        }
    }

    #[test]
    fn tracks_move_smoothly() {
        // Median IoU of the same track between consecutive frames should be
        // high; this is the temporal locality CaTDet exploits.
        let frames = kitti_frames(13, 150);
        let mut ious = Vec::new();
        for pair in frames.windows(2) {
            let prev: HashMap<u64, Box2> = pair[0]
                .objects
                .iter()
                .map(|o| (o.track_id, o.bbox))
                .collect();
            for o in &pair[1].objects {
                if let Some(pb) = prev.get(&o.track_id) {
                    ious.push(pb.iou(&o.bbox));
                }
            }
        }
        assert!(ious.len() > 100);
        ious.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ious[ious.len() / 2];
        assert!(median > 0.6, "median consecutive-frame IoU = {median}");
    }

    #[test]
    fn new_tracks_keep_appearing() {
        // Entry events are the raw material of the delay metric.
        let frames = kitti_frames(17, 300);
        let first: HashSet<u64> = frames[0].objects.iter().map(|o| o.track_id).collect();
        let mut later = HashSet::new();
        for f in &frames[1..] {
            for o in &f.objects {
                if !first.contains(&o.track_id) {
                    later.insert(o.track_id);
                }
            }
        }
        assert!(later.len() >= 5, "only {} new tracks appeared", later.len());
    }

    #[test]
    fn both_classes_appear() {
        let frames = kitti_frames(19, 200);
        let mut has = HashSet::new();
        for f in &frames {
            for o in &f.objects {
                has.insert(o.class);
            }
        }
        assert!(has.contains(&ActorClass::Car));
        assert!(has.contains(&ActorClass::Pedestrian));
    }

    #[test]
    fn some_objects_get_occluded() {
        let frames = kitti_frames(23, 300);
        let occluded = frames
            .iter()
            .flat_map(|f| &f.objects)
            .filter(|o| o.occlusion > 0.3)
            .count();
        assert!(occluded > 10, "only {occluded} occluded annotations");
    }

    #[test]
    fn some_objects_are_truncated() {
        let frames = kitti_frames(29, 300);
        let truncated = frames
            .iter()
            .flat_map(|f| &f.objects)
            .filter(|o| o.truncation > 0.2)
            .count();
        assert!(truncated > 10, "only {truncated} truncated annotations");
    }

    #[test]
    fn city_scene_is_pedestrian_heavy() {
        let frames = simulate_sequence(&SceneConfig::city_street(), 31, 60);
        let peds = frames
            .iter()
            .flat_map(|f| &f.objects)
            .filter(|o| o.class == ActorClass::Pedestrian)
            .count();
        let cars = frames
            .iter()
            .flat_map(|f| &f.objects)
            .filter(|o| o.class == ActorClass::Car)
            .count();
        assert!(peds > cars, "peds {peds} vs cars {cars}");
    }

    #[test]
    fn size_distribution_spans_difficulties() {
        // We need small (hard) and large (easy) boxes for the difficulty
        // filters to be meaningful.
        let frames = kitti_frames(37, 400);
        let heights: Vec<f32> = frames
            .iter()
            .flat_map(|f| &f.objects)
            .map(|o| o.height_px())
            .collect();
        let small = heights.iter().filter(|&&h| h < 25.0).count();
        let large = heights.iter().filter(|&&h| h >= 40.0).count();
        assert!(small > 20, "small: {small}");
        assert!(large > 20, "large: {large}");
    }
}
