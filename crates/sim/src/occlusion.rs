//! Depth-ordered occlusion estimation.
//!
//! KITTI annotates each object with an occlusion level; our difficulty
//! filters and detector accuracy models need the same signal. For every
//! object we estimate the fraction of its (in-image) bounding box covered
//! by the boxes of strictly nearer objects, by sampling a regular grid of
//! points inside the box. A fixed 12×12 grid gives ≈0.7% resolution, far
//! finer than the 3-level quantisation KITTI itself uses.

use catdet_geom::Box2;

/// Samples per axis when estimating coverage.
const GRID: usize = 12;
/// Depth margin (m): an occluder must be at least this much nearer.
const DEPTH_MARGIN: f32 = 0.5;

/// Computes the occlusion fraction of every box given its depth.
///
/// `items` is a list of `(bounding box, depth)` pairs; for each entry the
/// returned value is the fraction (in `[0, 1]`) of its box area covered by
/// the union of boxes at least half a metre (`DEPTH_MARGIN`) nearer.
/// Degenerate boxes
/// report zero occlusion.
///
/// # Example
///
/// ```
/// use catdet_geom::Box2;
/// use catdet_sim::occlusion_fractions;
///
/// let far = (Box2::new(0.0, 0.0, 10.0, 10.0), 30.0);
/// let near = (Box2::new(0.0, 0.0, 5.0, 10.0), 10.0); // covers far's left half
/// let occ = occlusion_fractions(&[far, near]);
/// assert!((occ[0] - 0.5).abs() < 0.1);
/// assert_eq!(occ[1], 0.0);
/// ```
pub fn occlusion_fractions(items: &[(Box2, f32)]) -> Vec<f32> {
    items
        .iter()
        .map(|&(b, depth)| {
            if !b.is_valid() {
                return 0.0;
            }
            let occluders: Vec<&Box2> = items
                .iter()
                .filter(|&&(_, d)| d + DEPTH_MARGIN < depth)
                .map(|(ob, _)| ob)
                .collect();
            if occluders.is_empty() {
                return 0.0;
            }
            let mut covered = 0usize;
            let dx = b.width() / GRID as f32;
            let dy = b.height() / GRID as f32;
            for iy in 0..GRID {
                let y = b.y1 + (iy as f32 + 0.5) * dy;
                for ix in 0..GRID {
                    let x = b.x1 + (ix as f32 + 0.5) * dx;
                    if occluders.iter().any(|o| o.contains_point(x, y)) {
                        covered += 1;
                    }
                }
            }
            covered as f32 / (GRID * GRID) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        assert!(occlusion_fractions(&[]).is_empty());
    }

    #[test]
    fn single_object_unoccluded() {
        let occ = occlusion_fractions(&[(Box2::new(0.0, 0.0, 10.0, 10.0), 20.0)]);
        assert_eq!(occ, vec![0.0]);
    }

    #[test]
    fn nearer_object_occludes_farther_not_vice_versa() {
        let far = (Box2::new(0.0, 0.0, 10.0, 10.0), 30.0);
        let near = (Box2::new(0.0, 0.0, 10.0, 10.0), 10.0);
        let occ = occlusion_fractions(&[far, near]);
        assert!(occ[0] > 0.95);
        assert_eq!(occ[1], 0.0);
    }

    #[test]
    fn half_cover_is_about_half() {
        let far = (Box2::new(0.0, 0.0, 10.0, 10.0), 30.0);
        let near = (Box2::new(5.0, 0.0, 15.0, 10.0), 10.0);
        let occ = occlusion_fractions(&[far, near]);
        assert!((occ[0] - 0.5).abs() < 0.1, "{}", occ[0]);
    }

    #[test]
    fn similar_depth_does_not_occlude() {
        // Within the depth margin: treated as side-by-side, not occluding.
        let a = (Box2::new(0.0, 0.0, 10.0, 10.0), 20.0);
        let b = (Box2::new(0.0, 0.0, 10.0, 10.0), 20.2);
        let occ = occlusion_fractions(&[a, b]);
        assert_eq!(occ, vec![0.0, 0.0]);
    }

    #[test]
    fn union_of_two_occluders() {
        let far = (Box2::new(0.0, 0.0, 10.0, 10.0), 40.0);
        let left = (Box2::new(0.0, 0.0, 5.0, 10.0), 10.0);
        let right = (Box2::new(5.0, 0.0, 10.0, 10.0), 12.0);
        let occ = occlusion_fractions(&[far, left, right]);
        assert!(occ[0] > 0.95);
    }

    #[test]
    fn overlapping_occluders_not_double_counted() {
        let far = (Box2::new(0.0, 0.0, 10.0, 10.0), 40.0);
        let a = (Box2::new(0.0, 0.0, 6.0, 10.0), 10.0);
        let b = (Box2::new(0.0, 0.0, 6.0, 10.0), 11.0);
        let occ = occlusion_fractions(&[far, a, b]);
        assert!((occ[0] - 0.6).abs() < 0.1);
    }

    #[test]
    fn degenerate_box_reports_zero() {
        let bad = (Box2::new(5.0, 5.0, 5.0, 5.0), 30.0);
        let near = (Box2::new(0.0, 0.0, 10.0, 10.0), 10.0);
        let occ = occlusion_fractions(&[bad, near]);
        assert_eq!(occ[0], 0.0);
    }

    proptest! {
        #[test]
        fn prop_fractions_in_unit_interval(
            items in proptest::collection::vec(
                (0.0f32..100.0, 0.0f32..100.0, 1.0f32..40.0, 1.0f32..40.0, 1.0f32..80.0),
                0..12),
        ) {
            let boxes: Vec<(Box2, f32)> = items
                .iter()
                .map(|&(x, y, w, h, d)| (Box2::from_xywh(x, y, w, h), d))
                .collect();
            for f in occlusion_fractions(&boxes) {
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }

        #[test]
        fn prop_nearest_object_is_never_occluded(
            items in proptest::collection::vec(
                (0.0f32..100.0, 0.0f32..100.0, 1.0f32..40.0, 1.0f32..40.0, 1.0f32..80.0),
                1..12),
        ) {
            let boxes: Vec<(Box2, f32)> = items
                .iter()
                .map(|&(x, y, w, h, d)| (Box2::from_xywh(x, y, w, h), d))
                .collect();
            let occ = occlusion_fractions(&boxes);
            let nearest = boxes
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            prop_assert_eq!(occ[nearest], 0.0);
        }

        #[test]
        fn prop_adding_occluder_monotone(
            x in 0.0f32..50.0, y in 0.0f32..50.0,
            ox in 0.0f32..50.0, oy in 0.0f32..50.0,
        ) {
            let target = (Box2::from_xywh(x, y, 20.0, 20.0), 50.0);
            let occluder = (Box2::from_xywh(ox, oy, 15.0, 15.0), 10.0);
            let without = occlusion_fractions(&[target])[0];
            let with = occlusion_fractions(&[target, occluder])[0];
            prop_assert!(with >= without);
        }
    }
}
