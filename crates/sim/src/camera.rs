//! Pinhole camera model and cuboid projection.
//!
//! Coordinates follow the usual camera convention: `x` right, `y` down,
//! `z` forward (depth), all in metres. The ground plane sits at
//! `y = height_above_ground` (positive, because y points down). Actors are
//! modelled as upright cuboids standing on the ground; projecting the eight
//! cuboid corners and taking their 2-D bounds produces bounding boxes with
//! realistic perspective behaviour (aspect change while turning, width
//! inflation for close oncoming cars, and so on).

use catdet_geom::Box2;
use serde::{Deserialize, Serialize};

/// A pinhole camera with KITTI-style intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraModel {
    /// Horizontal focal length in pixels.
    pub fx: f32,
    /// Vertical focal length in pixels.
    pub fy: f32,
    /// Principal point x.
    pub cx: f32,
    /// Principal point y.
    pub cy: f32,
    /// Image width in pixels.
    pub width: f32,
    /// Image height in pixels.
    pub height: f32,
    /// Camera height above the ground plane in metres.
    pub height_above_ground: f32,
}

impl CameraModel {
    /// The KITTI colour-camera setup: 1242×375 at f ≈ 721 px, mounted
    /// 1.65 m above the road.
    pub fn kitti() -> Self {
        Self {
            fx: 721.5,
            fy: 721.5,
            cx: 609.6,
            cy: 172.9,
            width: 1242.0,
            height: 375.0,
            height_above_ground: 1.65,
        }
    }

    /// The CityScapes/CityPersons setup: 2048×1024 at f ≈ 2262 px,
    /// mounted 1.22 m above the street.
    pub fn cityscapes() -> Self {
        Self {
            fx: 2262.5,
            fy: 2262.5,
            cx: 1096.9,
            cy: 513.1,
            width: 2048.0,
            height: 1024.0,
            height_above_ground: 1.22,
        }
    }

    /// Projects a camera-space point; returns `None` when at or behind the
    /// image plane (z below 0.1 m).
    pub fn project_point(&self, x: f32, y: f32, z: f32) -> Option<(f32, f32)> {
        if z < 0.1 {
            return None;
        }
        Some((self.cx + self.fx * x / z, self.cy + self.fy * y / z))
    }

    /// Projects an upright cuboid standing on the ground.
    ///
    /// The cuboid has its footprint centre at camera-space `(x, z)`, yaw
    /// `yaw` (radians, 0 = facing away along +z), and metric dimensions
    /// `(w, h, l)` = (lateral width, height, length). Returns the 2-D
    /// bounds of the eight projected corners, **unclipped** — callers clip
    /// to the frame and derive truncation from the difference. Returns
    /// `None` if any corner is behind the near plane (the object is partly
    /// behind the camera; KITTI would not annotate it either).
    pub fn project_cuboid(&self, x: f32, z: f32, yaw: f32, w: f32, h: f32, l: f32) -> Option<Box2> {
        let (hw, hl) = (w / 2.0, l / 2.0);
        let (s, c) = yaw.sin_cos();
        let y_bottom = self.height_above_ground;
        let y_top = self.height_above_ground - h;
        let mut min_u = f32::INFINITY;
        let mut max_u = f32::NEG_INFINITY;
        let mut min_v = f32::INFINITY;
        let mut max_v = f32::NEG_INFINITY;
        for &ox in &[-hw, hw] {
            for &oz in &[-hl, hl] {
                let dx = ox * c - oz * s;
                let dz = ox * s + oz * c;
                for &y in &[y_top, y_bottom] {
                    let (u, v) = self.project_point(x + dx, y, z + dz)?;
                    min_u = min_u.min(u);
                    max_u = max_u.max(u);
                    min_v = min_v.min(v);
                    max_v = max_v.max(v);
                }
            }
        }
        Some(Box2::new(min_u, min_v, max_u, max_v))
    }

    /// Returns `true` if the (unclipped) box overlaps the frame at all.
    pub fn in_frame(&self, b: &Box2) -> bool {
        b.clip(self.width, self.height).is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_on_axis_projects_to_principal_point() {
        let cam = CameraModel::kitti();
        let (u, v) = cam.project_point(0.0, 0.0, 10.0).unwrap();
        assert!((u - cam.cx).abs() < 1e-4);
        assert!((v - cam.cy).abs() < 1e-4);
    }

    #[test]
    fn behind_camera_is_none() {
        let cam = CameraModel::kitti();
        assert!(cam.project_point(0.0, 0.0, -5.0).is_none());
        assert!(cam.project_point(0.0, 0.0, 0.0).is_none());
    }

    #[test]
    fn projected_height_follows_pinhole_law() {
        let cam = CameraModel::kitti();
        // A 1.8m-tall pedestrian at 20m: expected pixel height fy*h/z.
        let b = cam.project_cuboid(0.0, 20.0, 0.0, 0.6, 1.8, 0.5).unwrap();
        let expected = cam.fy * 1.8 / 20.0;
        // Corners at z = 20 +- 0.25 give slightly different heights.
        assert!((b.height() - expected).abs() / expected < 0.05);
    }

    #[test]
    fn size_shrinks_with_distance() {
        let cam = CameraModel::kitti();
        let near = cam.project_cuboid(0.0, 10.0, 0.0, 1.8, 1.5, 4.2).unwrap();
        let far = cam.project_cuboid(0.0, 60.0, 0.0, 1.8, 1.5, 4.2).unwrap();
        assert!(near.area() > 20.0 * far.area());
    }

    #[test]
    fn lateral_offset_moves_box_horizontally() {
        let cam = CameraModel::kitti();
        let left = cam.project_cuboid(-4.0, 20.0, 0.0, 1.8, 1.5, 4.2).unwrap();
        let right = cam.project_cuboid(4.0, 20.0, 0.0, 1.8, 1.5, 4.2).unwrap();
        assert!(left.center().0 < cam.cx);
        assert!(right.center().0 > cam.cx);
    }

    #[test]
    fn yawed_car_is_wider_than_head_on() {
        let cam = CameraModel::kitti();
        let head_on = cam.project_cuboid(0.0, 25.0, 0.0, 1.8, 1.5, 4.2).unwrap();
        let sideways = cam
            .project_cuboid(0.0, 25.0, std::f32::consts::FRAC_PI_2, 1.8, 1.5, 4.2)
            .unwrap();
        assert!(sideways.width() > 1.5 * head_on.width());
    }

    #[test]
    fn object_straddling_near_plane_is_rejected() {
        let cam = CameraModel::kitti();
        // Footprint centre at 2m but 4.2m long: rear corner behind camera.
        assert!(cam.project_cuboid(0.0, 2.0, 0.0, 1.8, 1.5, 4.2).is_none());
    }

    #[test]
    fn ground_objects_sit_below_horizon() {
        let cam = CameraModel::kitti();
        // The horizon line is at v = cy; grounded objects are below it.
        let b = cam.project_cuboid(0.0, 30.0, 0.0, 1.8, 1.5, 4.2).unwrap();
        assert!(b.y2 > cam.cy);
    }

    #[test]
    fn cityscapes_camera_has_higher_resolution() {
        let c = CameraModel::cityscapes();
        assert_eq!((c.width, c.height), (2048.0, 1024.0));
        // Same pedestrian at the same distance looks ~3x taller than KITTI.
        let k = CameraModel::kitti();
        let bc = c.project_cuboid(0.0, 20.0, 0.0, 0.6, 1.8, 0.5).unwrap();
        let bk = k.project_cuboid(0.0, 20.0, 0.0, 0.6, 1.8, 0.5).unwrap();
        assert!(bc.height() > 2.5 * bk.height());
    }

    proptest! {
        #[test]
        fn prop_projection_monotone_in_depth(
            x in -10.0f32..10.0,
            z1 in 5.0f32..50.0,
            dz in 1.0f32..50.0,
        ) {
            let cam = CameraModel::kitti();
            let near = cam.project_cuboid(x, z1, 0.0, 1.8, 1.5, 4.2);
            let far = cam.project_cuboid(x, z1 + dz, 0.0, 1.8, 1.5, 4.2);
            if let (Some(n), Some(f)) = (near, far) {
                prop_assert!(n.height() > f.height());
            }
        }

        #[test]
        fn prop_boxes_have_positive_extent(
            x in -20.0f32..20.0,
            z in 5.0f32..120.0,
            yaw in -3.2f32..3.2,
            w in 0.3f32..2.5,
            h in 0.5f32..2.5,
            l in 0.3f32..5.0,
        ) {
            let cam = CameraModel::kitti();
            if let Some(b) = cam.project_cuboid(x, z, yaw, w, h, l) {
                prop_assert!(b.is_valid());
            }
        }

        #[test]
        fn prop_bottom_edge_on_ground_row(
            x in -5.0f32..5.0,
            z in 8.0f32..100.0,
        ) {
            // For an object facing the camera dead-on, the bottom edge is
            // the projection of the nearest ground corner.
            let cam = CameraModel::kitti();
            if let Some(b) = cam.project_cuboid(x, z, 0.0, 1.8, 1.5, 4.2) {
                let (_, v) = cam
                    .project_point(x, cam.height_above_ground, z - 2.1)
                    .unwrap();
                prop_assert!((b.y2 - v).abs() < 1.0);
            }
        }
    }
}
