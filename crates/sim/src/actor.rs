//! Actors: cars and pedestrians with simple kinematics.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Object classes the simulator produces (the two classes KITTI's tracking
/// benchmark evaluates; CityPersons' "Person" maps onto [`Pedestrian`]).
///
/// [`Pedestrian`]: ActorClass::Pedestrian
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ActorClass {
    /// Passenger car.
    Car,
    /// Pedestrian / person.
    Pedestrian,
}

impl ActorClass {
    /// KITTI-style class name.
    pub fn name(&self) -> &'static str {
        match self {
            ActorClass::Car => "Car",
            ActorClass::Pedestrian => "Pedestrian",
        }
    }

    /// All classes, in a stable order.
    pub const ALL: [ActorClass; 2] = [ActorClass::Car, ActorClass::Pedestrian];
}

impl std::fmt::Display for ActorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How an actor moves; controls both kinematics and the noise applied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Motion {
    /// Driving along the road at roughly constant speed (cars).
    Cruise,
    /// Stationary at the roadside (parked cars).
    Parked,
    /// Walking; pedestrians wander slightly in direction.
    Walk,
}

/// A single object in the world.
///
/// Positions are in world coordinates: `x` lateral (right of the road
/// centreline), `z` longitudinal (direction of travel), metres. The ego
/// camera moves along `z`; the projection step subtracts the ego pose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    /// Stable track identity.
    pub id: u64,
    /// Object class.
    pub class: ActorClass,
    /// Lateral position (m).
    pub x: f32,
    /// Longitudinal position (m).
    pub z: f32,
    /// Lateral velocity (m/s).
    pub vx: f32,
    /// Longitudinal velocity (m/s).
    pub vz: f32,
    /// Heading (radians, 0 = facing +z).
    pub yaw: f32,
    /// Metric size (width, height, length).
    pub dims: (f32, f32, f32),
    /// Motion regime.
    pub motion: Motion,
}

impl Actor {
    /// Advances the actor by `dt` seconds, applying motion noise from `rng`.
    ///
    /// Cars receive small longitudinal acceleration noise; pedestrians
    /// wander in direction. Parked actors never move. Heading follows the
    /// velocity vector for moving actors.
    pub fn step<R: Rng>(&mut self, dt: f32, rng: &mut R) {
        match self.motion {
            Motion::Parked => return,
            Motion::Cruise => {
                // Gentle speed changes, no lane changes.
                self.vz += rng.gen_range(-0.4..0.4) * dt;
                self.vx *= 0.9; // damp any residual lateral motion
            }
            Motion::Walk => {
                // Direction wander with speed roughly preserved.
                let speed = (self.vx * self.vx + self.vz * self.vz).sqrt();
                if speed > 1e-3 {
                    let angle = self.vz.atan2(self.vx) + rng.gen_range(-0.25..0.25) * dt * 10.0;
                    let new_speed = (speed + rng.gen_range(-0.3..0.3) * dt).clamp(0.3, 2.2);
                    self.vx = new_speed * angle.cos();
                    self.vz = new_speed * angle.sin();
                }
            }
        }
        self.x += self.vx * dt;
        self.z += self.vz * dt;
        if self.vx.abs() + self.vz.abs() > 0.05 {
            self.yaw = self.vx.atan2(self.vz);
        }
    }

    /// Ground speed in m/s.
    pub fn speed(&self) -> f32 {
        (self.vx * self.vx + self.vz * self.vz).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn car() -> Actor {
        Actor {
            id: 1,
            class: ActorClass::Car,
            x: 0.0,
            z: 30.0,
            vx: 0.0,
            vz: 8.0,
            yaw: 0.0,
            dims: (1.8, 1.5, 4.2),
            motion: Motion::Cruise,
        }
    }

    #[test]
    fn parked_actor_never_moves() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut a = car();
        a.motion = Motion::Parked;
        a.vz = 0.0;
        let before = (a.x, a.z, a.yaw);
        for _ in 0..100 {
            a.step(0.1, &mut rng);
        }
        assert_eq!((a.x, a.z, a.yaw), before);
    }

    #[test]
    fn cruising_car_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut a = car();
        for _ in 0..10 {
            a.step(0.1, &mut rng);
        }
        assert!((a.z - 38.0).abs() < 1.0, "z = {}", a.z);
        assert!(a.x.abs() < 0.1);
    }

    #[test]
    fn walker_speed_stays_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut a = Actor {
            id: 2,
            class: ActorClass::Pedestrian,
            x: 5.0,
            z: 20.0,
            vx: -1.2,
            vz: 0.2,
            yaw: 0.0,
            dims: (0.6, 1.75, 0.5),
            motion: Motion::Walk,
        };
        for _ in 0..300 {
            a.step(0.1, &mut rng);
            assert!(a.speed() <= 2.2 + 1e-4);
            assert!(a.speed() >= 0.3 - 1e-4);
        }
    }

    #[test]
    fn heading_follows_velocity() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut a = car();
        a.vx = 0.0;
        a.vz = 10.0;
        a.step(0.1, &mut rng);
        assert!(a.yaw.abs() < 0.05);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = car();
        let mut b = car();
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..50 {
            a.step(0.1, &mut r1);
            b.step(0.1, &mut r2);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn class_names() {
        assert_eq!(ActorClass::Car.name(), "Car");
        assert_eq!(ActorClass::Pedestrian.to_string(), "Pedestrian");
        assert_eq!(ActorClass::ALL.len(), 2);
    }
}
